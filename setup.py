"""Legacy setup shim.

The execution environment has no `wheel` package and no network access, so
PEP 517/660 editable installs (which need bdist_wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
