"""Regenerates the paper's **Figure 8**: protocol-processing latency

overhead vs number of packet-type filters.

Paper's findings (§7):
  * overhead grows **linearly** with the filter count — the engine scans
    the filter table linearly for the exact match;
  * adding 25 triggered actions per match increases it further;
  * turning on the Reliable Link Layer increases it again;
  * the total stays around/below ~7% of the baseline UDP echo RTT.

Every benchmark below regenerates one curve of the figure and asserts its
qualitative shape; the rendered figure is saved to
benchmarks/results/fig8.txt.
"""

import pytest

from conftest import (
    campaign_header,
    record_frames_trajectory,
    save_table,
    sweep_backend,
)
from repro.bench.fig8 import (
    MODES,
    Fig8Point,
    fig8_campaign,
    measure_baseline,
    measure_point,
    render_table,
)
from repro.core.engine import EngineConfig
from repro.sweep import run_sweep

FILTER_COUNTS = (2, 5, 10, 15, 20, 25)
PROBES = 40


@pytest.fixture(scope="module")
def baseline_rtt():
    return measure_baseline(probes=PROBES, seed=0)


@pytest.fixture(scope="module")
def figure(baseline_rtt):
    """All 18 cells of the figure as one sweep campaign: each cell's
    script compiled once in the parent, cells fanned out over the
    configured backend, rows merged in task order."""
    backend, workers = sweep_backend()
    outcome = run_sweep(
        fig8_campaign(
            baseline_rtt,
            filter_counts=FILTER_COUNTS,
            modes=MODES,
            probes=PROBES,
            seed=0,
        ),
        backend=backend,
        workers=workers,
    )
    assert outcome.passed, outcome.render()
    points = [
        Fig8Point(
            mode=row.payload["mode"],
            n_filters=row.payload["n_filters"],
            mean_rtt_ns=row.payload["mean_rtt_ns"],
            baseline_rtt_ns=row.payload["baseline_rtt_ns"],
        )
        for row in outcome.rows
    ]
    save_table("fig8", campaign_header(outcome) + "\n" + render_table(points))
    record_frames_trajectory(outcome, "fig8")
    return points


def _curve(points, mode):
    return sorted(
        (p for p in points if p.mode == mode), key=lambda p: p.n_filters
    )


class TestFig8Shape:
    def test_overhead_grows_with_filter_count(self, benchmark, figure):
        curve = benchmark.pedantic(
            lambda: _curve(figure, "filters"), rounds=1, iterations=1
        )
        overheads = [p.overhead_percent for p in curve]
        assert overheads[-1] > overheads[0], "linear scan must cost more at 25"
        # Monotone growth (within measurement noise of the discrete sim).
        assert all(b >= a - 0.2 for a, b in zip(overheads, overheads[1:]))

    def test_actions_add_overhead_over_filters(self, benchmark, figure):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for count in FILTER_COUNTS:
            filters_only = next(
                p for p in figure if p.mode == "filters" and p.n_filters == count
            )
            with_actions = next(
                p for p in figure if p.mode == "actions" and p.n_filters == count
            )
            assert with_actions.overhead_percent > filters_only.overhead_percent

    def test_rll_adds_overhead_over_actions(self, benchmark, figure):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        at25 = {
            p.mode: p.overhead_percent
            for p in figure
            if p.n_filters == max(FILTER_COUNTS)
        }
        assert at25["actions+rll"] > at25["actions"] > at25["filters"]

    def test_total_overhead_within_paper_envelope(self, benchmark, figure):
        """Paper: 'the additional packet processing overhead never goes

        beyond 7% of the normal round-trip time' (we allow 10% slack on
        the calibration: <9%).
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        worst = max(p.overhead_percent for p in figure)
        assert worst < 9.0, f"worst-case overhead {worst:.2f}% escapes the envelope"

    def test_linear_not_quadratic(self, benchmark, figure):
        """The scan is linear: overhead(25)/overhead(10) for filters-only

        should be ~2.5x, nowhere near the 6.25x a quadratic scan gives.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        curve = {p.n_filters: p.overhead_percent for p in _curve(figure, "filters")}
        ratio = curve[25] / max(curve[10], 0.01)
        assert ratio < 4.0


class TestClassifierParity:
    def test_virtual_time_curve_identical_under_indexed_classifier(
        self, benchmark, baseline_rtt
    ):
        """The indexed fast path must leave Fig 8 untouched: the cost model

        charges the linear-equivalent scan count either way, so the
        virtual-time RTT of any figure cell is *exactly* equal under both
        classifier implementations.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for n_filters in (5, 25):
            by_kind = {
                kind: measure_point(
                    "filters",
                    n_filters,
                    baseline_rtt,
                    probes=PROBES,
                    seed=0,
                    engine_config=EngineConfig(classifier=kind),
                )
                for kind in ("linear", "indexed")
            }
            assert (
                by_kind["indexed"].mean_rtt_ns == by_kind["linear"].mean_rtt_ns
            ), f"classifier choice leaked into virtual time at {n_filters} filters"


class TestFig8Microbench:
    def test_single_point_cost(self, benchmark, baseline_rtt):
        """Wall-clock cost of regenerating one figure cell (25 filters,

        actions+RLL): the heaviest configuration.
        """
        point = benchmark.pedantic(
            lambda: measure_point(
                "actions+rll", 25, baseline_rtt, probes=PROBES, seed=0
            ),
            rounds=1,
            iterations=1,
        )
        assert point.overhead_percent > 0
