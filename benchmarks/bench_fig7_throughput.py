"""Regenerates the paper's **Figure 7**: TCP throughput vs offered load

with the Fault Injection Layer (25 filters, 25 actions/match) and the
Reliable Link Layer inserted.

Paper's findings (§7):
  * throughput tracks the offered pumping rate through most of the range;
  * there is a noticeable drop beyond ~90 Mbps — the RLL encapsulates both
    TCP data and TCP acks, and its own acknowledgements contend with data
    on the shared segment;
  * the loss stays within 10% of the baseline.

The rendered figure (both curves) is saved to benchmarks/results/fig7.txt.
"""

import pytest

from conftest import (
    campaign_header,
    record_frames_trajectory,
    save_table,
    sweep_backend,
)
from repro.bench.fig7 import Fig7Point, fig7_campaign, measure_point, render_table
from repro.sweep import run_sweep

OFFERED_RATES = (10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100)
DURATION_NS = 200_000_000  # 0.2 s of virtual pumping per point


@pytest.fixture(scope="module")
def figure():
    """All 22 cells as one sweep campaign (script compiled once, fanned
    out over the configured backend, rows merged in task order)."""
    backend, workers = sweep_backend()
    outcome = run_sweep(
        fig7_campaign(OFFERED_RATES, duration_ns=DURATION_NS, seed=0),
        backend=backend,
        workers=workers,
    )
    assert outcome.passed, outcome.render()
    points = [
        Fig7Point(
            offered_mbps=row.payload["offered_mbps"],
            with_virtualwire=row.payload["with_virtualwire"],
            goodput_mbps=row.payload["goodput_mbps"],
            retransmissions=row.payload["retransmissions"],
        )
        for row in outcome.rows
    ]
    save_table("fig7", campaign_header(outcome) + "\n" + render_table(points))
    record_frames_trajectory(outcome, "fig7")
    return points


def _curve(points, with_vw):
    return {
        p.offered_mbps: p.goodput_mbps
        for p in points
        if p.with_virtualwire == with_vw
    }


class TestFig7Shape:
    def test_throughput_tracks_offered_rate_below_saturation(self, benchmark, figure):
        vw = benchmark.pedantic(lambda: _curve(figure, True), rounds=1, iterations=1)
        for rate in (10, 20, 30, 40, 50, 60, 70, 80):
            assert vw[rate] == pytest.approx(rate, rel=0.05), (
                f"goodput {vw[rate]:.1f} should track offered {rate} Mbps"
            )

    def test_noticeable_drop_beyond_90(self, benchmark, figure):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        baseline = _curve(figure, False)
        vw = _curve(figure, True)
        # Below the knee both configurations are indistinguishable...
        assert vw[80] == pytest.approx(baseline[80], rel=0.02)
        # ...beyond it the VirtualWire+RLL curve visibly falls behind.
        assert vw[95] < baseline[95]
        assert vw[100] < baseline[100]

    def test_loss_within_ten_percent(self, benchmark, figure):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        baseline = _curve(figure, False)
        vw = _curve(figure, True)
        for rate in OFFERED_RATES:
            loss = (baseline[rate] - vw[rate]) / max(baseline[rate], 1e-9)
            assert loss <= 0.10, (
                f"at {rate} Mbps offered, loss {loss:.1%} exceeds the paper's 10%"
            )

    def test_saturation_plateau(self, benchmark, figure):
        """Past the knee the curve flattens: offered 95 and 100 deliver

        essentially the same goodput.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        vw = _curve(figure, True)
        assert vw[100] == pytest.approx(vw[95], rel=0.05)


class TestFig7Microbench:
    def test_single_point_cost(self, benchmark):
        """Wall-clock cost of one overload measurement (the worst cell)."""
        point = benchmark.pedantic(
            lambda: measure_point(100, True, duration_ns=DURATION_NS, seed=0),
            rounds=1,
            iterations=1,
        )
        assert point.goodput_mbps > 50
