"""Sweep-engine scaling: serial vs process pool vs the tcp fleet backend.

A 16-task fig5 campaign (one 64 KiB TCP transfer per seed) is run on the
serial reference, the 4-worker process pool, and a loopback 2-worker tcp
fleet (2 slots each).  The merged rows must be byte-identical and every
task's *virtual* time unchanged — parallelism may only buy wall-clock.
A separate trivial-task campaign isolates the tcp protocol's dispatch
overhead per cell (frame encode + loopback round-trip + pool submit).

Tables land in benchmarks/results/; the tcp measurements also append to
the repo-root BENCH_SWEEP.json trajectory (one entry per PR-era run, the
same pattern as BENCH_FRAMES.json).

``slow``-marked: spawns process pools.  Deselect with ``-m "not slow"``.
"""

import os
import pathlib
import platform
import threading
from datetime import datetime, timezone

import pytest

from conftest import save_table
from repro.scripts import canonical_node_table, tcp_congestion_script
from repro.sweep import (
    SweepSpec,
    WorkerServer,
    run_script_task,
    run_sweep,
    sleep_task,
)

N_TASKS = 16
WORKERS = 4
N_DISPATCH_TASKS = 64

BENCH_SWEEP = pathlib.Path(__file__).parent.parent / "BENCH_SWEEP.json"


def _sweep_entry(bench: str, note: str = "", **fields) -> dict:
    """A BENCH_SWEEP.json trajectory entry: measurement + provenance."""
    entry = {
        "utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": platform.node(),
        "python": platform.python_version(),
        "bench": bench,
        "cores": os.cpu_count() or 1,
        **fields,
    }
    if note:
        entry["note"] = note
    return entry


#: The bench fleet runs authenticated, like a production fleet would —
#: the handshake HMACs are part of the dispatch overhead being measured.
FLEET_SECRET = "bench-sweep-scaling"


class _Fleet:
    """A loopback worker fleet of in-process servers (real process slots)."""

    def __init__(self, n_workers: int, slots: int):
        self.servers = [
            WorkerServer(slots=slots, secret=FLEET_SECRET)
            for _ in range(n_workers)
        ]
        self.threads = [
            threading.Thread(target=server.serve_forever, daemon=True)
            for server in self.servers
        ]
        for thread in self.threads:
            thread.start()
        self.hosts = [(server.host, server.port) for server in self.servers]

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        for server in self.servers:
            server.stop()


def scaling_campaign() -> SweepSpec:
    spec = SweepSpec("sweep_scaling", base_seed=0)
    spec.add_grid(
        run_script_task,
        axes={"seed": list(range(N_TASKS))},
        script=tcp_congestion_script(canonical_node_table(2)),
        workload={"kind": "tcp_bulk", "bytes": 64 * 1024},
    )
    return spec


@pytest.mark.slow
class TestSweepScaling:
    def test_parallel_speedup_with_identical_results(self, benchmark):
        spec = scaling_campaign()
        serial = run_sweep(spec, backend="serial")
        parallel = benchmark.pedantic(
            lambda: run_sweep(spec, backend="parallel", workers=WORKERS),
            rounds=1,
            iterations=1,
        )
        assert serial.passed, serial.render()
        assert serial.canonical_bytes() == parallel.canonical_bytes()
        per_task_virtual = [row.virtual_ns for row in serial.rows]
        assert per_task_virtual == [row.virtual_ns for row in parallel.rows]

        cores = os.cpu_count() or 1
        speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
        lines = [
            f"sweep scaling: {N_TASKS}-task fig5 campaign "
            f"(64 KiB tcp_bulk per cell, seeds 0..{N_TASKS - 1})",
            f"host: {cores} cpu core(s)",
            f"{'serial(1w)':<16} {serial.wall_seconds:>8.2f}s wall",
            f"{'parallel(' + str(WORKERS) + 'w)':<16} "
            f"{parallel.wall_seconds:>8.2f}s wall   speedup {speedup:.2f}x",
            "merged rows byte-identical across backends: yes",
            "per-task virtual time identical across backends: yes "
            f"(campaign total {sum(per_task_virtual) / 1e9:.6f}s virtual)",
            "note: each task is one CPU-bound simulation, so the speedup is",
            "bounded by physical cores; a 1-core host can only pay the pool's",
            "process overhead.  The >=2x target at 4 workers needs >=4 cores.",
        ]
        save_table("sweep_scaling", "\n".join(lines))
        # The scaling claim is only physically satisfiable with the cores
        # to back it; on starved hosts the differential identity above is
        # the meaningful assertion.
        if cores >= 4:
            assert speedup >= 2.0, f"expected >=2x on {cores} cores, got {speedup:.2f}x"
        assert parallel.workers == WORKERS

    def test_tcp_dispatch_overhead_and_loopback_scaling(self, benchmark):
        """The distributed tier's two honest numbers: protocol dispatch
        overhead per cell (trivial tasks, 1 worker x 1 slot) and loopback
        fleet scaling on the real fig5 campaign (2 workers x 2 slots).
        Both merged row sets must stay byte-identical to serial; the >=2x
        fleet speedup claim is only asserted with >=4 cores to back it."""
        from repro.bench.frames import append_entry

        cores = os.cpu_count() or 1

        # --- dispatch overhead: trivial cells isolate the protocol cost
        trivial = SweepSpec("tcp_dispatch", base_seed=1)
        for i in range(N_DISPATCH_TASKS):
            trivial.add(f"noop{i}", sleep_task, sleep_s=0.0)
        trivial_serial = run_sweep(trivial, backend="serial")
        with _Fleet(n_workers=1, slots=1) as fleet:
            trivial_tcp = run_sweep(
                trivial, backend="tcp", hosts=fleet.hosts, secret=FLEET_SECRET
            )
        assert trivial_serial.canonical_bytes() == trivial_tcp.canonical_bytes()
        overhead_ms = (
            (trivial_tcp.wall_seconds - trivial_serial.wall_seconds)
            / N_DISPATCH_TASKS
            * 1000.0
        )
        # Pathology guard, not a performance claim: a loopback round-trip
        # plus a pool submit must not cost a visible fraction of a second.
        assert overhead_ms < 100.0, f"dispatch overhead {overhead_ms:.1f}ms/task"

        # --- loopback fleet scaling on the real campaign
        spec = scaling_campaign()
        serial = run_sweep(spec, backend="serial")
        with _Fleet(n_workers=2, slots=2) as fleet:
            tcp = benchmark.pedantic(
                lambda: run_sweep(
                    spec, backend="tcp", hosts=fleet.hosts, secret=FLEET_SECRET
                ),
                rounds=1,
                iterations=1,
            )
        assert serial.passed, serial.render()
        assert serial.canonical_bytes() == tcp.canonical_bytes()
        assert tcp.workers == 4  # 2 workers x 2 slots advertised
        speedup = serial.wall_seconds / max(tcp.wall_seconds, 1e-9)

        note = (
            "tcp backend: loopback fleet, HMAC-authenticated handshake, "
            "content-addressed program push"
        )
        append_entry(
            BENCH_SWEEP,
            _sweep_entry(
                "sweep_dispatch",
                note=note,
                backend="tcp",
                tasks=N_DISPATCH_TASKS,
                wall_s=round(trivial_tcp.wall_seconds, 4),
                serial_wall_s=round(trivial_serial.wall_seconds, 4),
                dispatch_overhead_ms_per_task=round(overhead_ms, 3),
            ),
        )
        append_entry(
            BENCH_SWEEP,
            _sweep_entry(
                "sweep_loopback_scaling",
                note=note,
                backend="tcp",
                tasks=N_TASKS,
                workers=2,
                slots_total=tcp.workers,
                wall_s=round(tcp.wall_seconds, 2),
                serial_wall_s=round(serial.wall_seconds, 2),
                speedup=round(speedup, 2),
            ),
        )

        lines = [
            f"tcp backend: {N_TASKS}-task fig5 campaign over a loopback "
            f"fleet (2 workers x 2 slots)",
            f"host: {cores} cpu core(s)",
            f"{'serial(1w)':<16} {serial.wall_seconds:>8.2f}s wall",
            f"{'tcp(4 slots)':<16} {tcp.wall_seconds:>8.2f}s wall   "
            f"speedup {speedup:.2f}x",
            f"dispatch overhead: {overhead_ms:.2f}ms per task "
            f"({N_DISPATCH_TASKS} trivial cells, 1 worker x 1 slot)",
            "merged rows byte-identical to serial: yes",
            "note: loopback slots are real processes on this host, so the",
            "speedup is bounded by physical cores exactly like the pool",
            "backend; the >=2x target at 4 slots needs >=4 cores.  On a",
            "real multi-host fleet the bound is the sum of remote cores.",
        ]
        save_table("sweep_scaling_tcp", "\n".join(lines))
        if cores >= 4:
            assert speedup >= 2.0, (
                f"expected >=2x on {cores} cores, got {speedup:.2f}x"
            )
