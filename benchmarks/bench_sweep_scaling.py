"""Sweep-engine scaling: serial reference vs the 4-worker process pool.

A 16-task fig5 campaign (one 64 KiB TCP transfer per seed) is run on both
backends.  The merged rows must be byte-identical and every task's
*virtual* time unchanged — parallelism may only buy wall-clock.  The
measured numbers, including the host's core count (the hard bound on any
speedup), land in benchmarks/results/sweep_scaling.txt.

``slow``-marked: spawns process pools.  Deselect with ``-m "not slow"``.
"""

import os

import pytest

from conftest import save_table
from repro.scripts import canonical_node_table, tcp_congestion_script
from repro.sweep import SweepSpec, run_script_task, run_sweep

N_TASKS = 16
WORKERS = 4


def scaling_campaign() -> SweepSpec:
    spec = SweepSpec("sweep_scaling", base_seed=0)
    spec.add_grid(
        run_script_task,
        axes={"seed": list(range(N_TASKS))},
        script=tcp_congestion_script(canonical_node_table(2)),
        workload={"kind": "tcp_bulk", "bytes": 64 * 1024},
    )
    return spec


@pytest.mark.slow
class TestSweepScaling:
    def test_parallel_speedup_with_identical_results(self, benchmark):
        spec = scaling_campaign()
        serial = run_sweep(spec, backend="serial")
        parallel = benchmark.pedantic(
            lambda: run_sweep(spec, backend="parallel", workers=WORKERS),
            rounds=1,
            iterations=1,
        )
        assert serial.passed, serial.render()
        assert serial.canonical_bytes() == parallel.canonical_bytes()
        per_task_virtual = [row.virtual_ns for row in serial.rows]
        assert per_task_virtual == [row.virtual_ns for row in parallel.rows]

        cores = os.cpu_count() or 1
        speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
        lines = [
            f"sweep scaling: {N_TASKS}-task fig5 campaign "
            f"(64 KiB tcp_bulk per cell, seeds 0..{N_TASKS - 1})",
            f"host: {cores} cpu core(s)",
            f"{'serial(1w)':<16} {serial.wall_seconds:>8.2f}s wall",
            f"{'parallel(' + str(WORKERS) + 'w)':<16} "
            f"{parallel.wall_seconds:>8.2f}s wall   speedup {speedup:.2f}x",
            "merged rows byte-identical across backends: yes",
            "per-task virtual time identical across backends: yes "
            f"(campaign total {sum(per_task_virtual) / 1e9:.6f}s virtual)",
            "note: each task is one CPU-bound simulation, so the speedup is",
            "bounded by physical cores; a 1-core host can only pay the pool's",
            "process overhead.  The >=2x target at 4 workers needs >=4 cores.",
        ]
        save_table("sweep_scaling", "\n".join(lines))
        # The scaling claim is only physically satisfiable with the cores
        # to back it; on starved hosts the differential identity above is
        # the meaningful assertion.
        if cores >= 4:
            assert speedup >= 2.0, f"expected >=2x on {cores} cores, got {speedup:.2f}x"
        assert parallel.workers == WORKERS
