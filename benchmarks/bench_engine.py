"""Micro-benchmarks of the FIE/FAE hot path.

Isolates the per-packet work of Fig 4(b) — classify, counter update, term
evaluation, condition settlement, armed-fault lookup — without a network
around it, so regressions in the engine core show up independently of the
simulator.
"""

import pytest

from repro.core.classify import Classifier
from repro.core.fsl import compile_text
from repro.core.runtime import NodeRuntime
from repro.core.tables import Direction
from repro.net import FLAG_ACK, TcpSegment, build_tcp_frame
from tests.core.test_runtime import RecordingHooks

HEADER = """
FILTER_TABLE
  pkt: (12 2 0x0800)
END
NODE_TABLE
  node1 02:00:00:00:00:01 192.168.1.1
  node2 02:00:00:00:00:02 192.168.1.2
END
"""


def runtime_for(body: str) -> NodeRuntime:
    program = compile_text(HEADER + f"SCENARIO bench {body} END")
    runtime = NodeRuntime("node1", program, RecordingHooks())
    runtime.start()
    return runtime


class TestRuntimeHotPath:
    def test_counter_update_no_rules(self, benchmark):
        runtime = runtime_for("A: (pkt, node2, node1, RECV)")
        benchmark(
            lambda: runtime.on_classified_packet(
                "pkt", "node2", "node1", Direction.RECV
            )
        )

    def test_counter_update_with_rearming_rule(self, benchmark):
        runtime = runtime_for(
            """
            A: (pkt, node2, node1, RECV)
            ((A = 1)) >> RESET_CNTR( A );
            """
        )
        benchmark(
            lambda: runtime.on_classified_packet(
                "pkt", "node2", "node1", Direction.RECV
            )
        )

    def test_25_action_cascade(self, benchmark):
        body = ["A: (pkt, node2, node1, RECV)", "X: (node1)"]
        actions = ["RESET_CNTR( A )"] + ["INCR_CNTR( X, 1 )"] * 24
        body.append("((A = 1)) >> " + "; ".join(actions) + ";")
        runtime = runtime_for("\n".join(body))
        benchmark(
            lambda: runtime.on_classified_packet(
                "pkt", "node2", "node1", Direction.RECV
            )
        )

    def test_armed_fault_lookup(self, benchmark):
        runtime = runtime_for(
            """
            A: (pkt, node2, node1, RECV)
            ((A >= 0)) >> DROP pkt, node2, node1, RECV;
            """
        )
        runtime.on_classified_packet("pkt", "node2", "node1", Direction.RECV)
        result = benchmark(
            lambda: runtime.armed_faults("pkt", "node2", "node1", Direction.RECV)
        )
        assert result


class TestClassifierHotPath:
    def test_classify_25_filters_worst_case(self, benchmark):
        entries = []
        lines = ["FILTER_TABLE"]
        for i in range(24):
            lines.append(f"  d{i}: (12 2 0x9{i % 10}0{i // 10})")
        lines.append("  live: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)")
        lines.append("END")
        lines.append(HEADER.split("FILTER_TABLE")[0] + """
NODE_TABLE
  node1 02:00:00:00:00:01 192.168.1.1
  node2 02:00:00:00:00:02 192.168.1.2
END
SCENARIO s
""")
        for i in range(24):
            lines.append(f"  C{i}: (d{i}, node1, node2, RECV)")
        lines.append("  L: (live, node1, node2, RECV)")
        lines.append("END")
        program = compile_text("\n".join(lines))
        classifier = Classifier(program.filters)
        seg = TcpSegment(0x6000, 0x4000, 1, 2, FLAG_ACK, 512, bytes(64))
        packet = build_tcp_frame(
            "02:00:00:00:00:01",
            "02:00:00:00:00:02",
            "10.0.0.1",
            "10.0.0.2",
            seg,
        ).to_bytes()
        name, scanned = benchmark(lambda: classifier.classify(packet))
        assert name == "live" and scanned == 25
