"""Ablation: the Reliable Link Layer's cost and benefit (§3.3).

Two questions the paper's design raises:

1. **Benefit** — on a noisy wire, how many TCP-level retransmissions does
   the RLL prevent?  (It should prevent all of them: the controlled-
   environment guarantee.)
2. **Cost** — on a clean wire, what throughput does its encapsulation and
   acknowledgement traffic give up?

Results land in benchmarks/results/rll_ablation.txt.
"""

import pytest

from conftest import save_table
from repro.core.testbed import Testbed
from repro.sim import NS_PER_SEC, seconds
from repro.workloads import BulkReceiver, BulkSender

TRANSFER = 512 * 1024


def run_transfer(rll: bool, bit_error_rate: float, seed: int = 13):
    tb = Testbed(seed=seed)
    node1 = tb.add_host("node1")
    node2 = tb.add_host("node2")
    tb.add_link("l0", bit_error_rate=bit_error_rate, queue_frames=256)
    tb.connect("l0", node1, node2)
    if rll:
        from repro.rll import RllLayer

        for host in (node1, node2):
            layer = RllLayer(tb.sim)
            host.chain.splice_above_driver(layer)
            tb.rll_layers[host.name] = layer
    receiver = BulkReceiver(node2, 0x4000)
    sender = BulkSender(node1, node2.ip, 0x4000, TRANSFER, local_port=0x6000)
    tb.sim.run_until(seconds(30))
    return {
        "goodput_mbps": receiver.goodput_bps() / 1e6,
        "tcp_rtx": sender.connection.retransmissions,
        "rll_rtx": sum(l.retransmissions for l in tb.rll_layers.values()),
        "fcs_drops": node1.nic.fcs_drops + node2.nic.fcs_drops,
        "complete": receiver.bytes_received == TRANSFER,
    }


@pytest.fixture(scope="module")
def results():
    # ~1.7% frame-loss probability for a 1078-byte frame: noisy enough to
    # visibly hurt Tahoe, mild enough that both configurations finish.
    noisy_ber = 2e-6
    cells = {
        ("clean", False): run_transfer(False, 0.0),
        ("clean", True): run_transfer(True, 0.0),
        ("noisy", False): run_transfer(False, noisy_ber),
        ("noisy", True): run_transfer(True, noisy_ber),
    }
    lines = [f"{'wire':>6} {'rll':>5} {'goodput':>9} {'tcp rtx':>8} {'rll rtx':>8} {'fcs drops':>10}"]
    for (wire, rll), cell in cells.items():
        lines.append(
            f"{wire:>6} {str(rll):>5} {cell['goodput_mbps']:>8.1f}M "
            f"{cell['tcp_rtx']:>8} {cell['rll_rtx']:>8} {cell['fcs_drops']:>10}"
        )
    save_table("rll_ablation", "\n".join(lines))
    return cells


class TestRllAblation:
    def test_noisy_wire_without_rll_hurts_tcp(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        cell = results[("noisy", False)]
        assert cell["fcs_drops"] > 0
        assert cell["tcp_rtx"] > 0  # the protocol under test saw the noise

    def test_noisy_wire_with_rll_fully_masked(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        cell = results[("noisy", True)]
        assert cell["fcs_drops"] > 0  # the noise happened...
        assert cell["tcp_rtx"] == 0  # ...but TCP never saw it
        assert cell["rll_rtx"] > 0  # because the RLL absorbed it
        assert cell["complete"]

    def test_clean_wire_rll_cost_is_modest(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        plain = results[("clean", False)]["goodput_mbps"]
        with_rll = results[("clean", True)]["goodput_mbps"]
        loss = (plain - with_rll) / plain
        assert 0 <= loss < 0.15, f"RLL costs {loss:.1%} goodput on a clean wire"

    def test_all_transfers_complete(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert all(cell["complete"] for cell in results.values())
