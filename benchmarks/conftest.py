"""Shared benchmark utilities: result-table persistence."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, text: str) -> None:
    """Persist a rendered result table and echo it to stdout.

    Tables land in benchmarks/results/ so EXPERIMENTS.md can reference the
    latest regeneration of each figure.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
