"""Shared benchmark utilities: result-table persistence and sweep knobs."""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def sweep_backend():
    """(backend, workers) for campaign fixtures, from the environment.

    ``REPRO_SWEEP_BACKEND`` selects serial/parallel (default parallel).
    Workers stay ``None``: ``run_sweep`` itself now honours
    ``REPRO_SWEEP_WORKERS`` (precedence: explicit arg > env > up to 4
    cores), so the knob no longer needs re-reading here.  Either backend
    yields byte-identical figures — that is the sweep engine's contract —
    so this only trades wall-clock.
    """
    return os.environ.get("REPRO_SWEEP_BACKEND", "parallel"), None


def campaign_header(outcome) -> str:
    """One-line wall-clock provenance for a saved figure table.

    Records the campaign's actual wall time next to the serial-equivalent
    cost (the sum of per-task wall times), so each refreshed results file
    carries its own before/after.
    """
    return (
        f"# campaign: {len(outcome.rows)} tasks via {outcome.backend}"
        f"({outcome.workers}w), {outcome.wall_seconds:.2f}s wall "
        f"(serial-equivalent task sum {outcome.total_task_wall_seconds:.2f}s)"
    )


def record_frames_trajectory(outcome, campaign: str) -> None:
    """Append fresh frame hot-path entries to the repo-root BENCH_FRAMES.json.

    After a figure campaign completes, replay the fig7 hot-path bench under
    both codecs and append the two measurements, tagged with the campaign's
    wall time — so every benchmark run extends the per-PR frames/sec
    trajectory (see repro.bench.frames).
    """
    from repro.bench.frames import (
        append_entry,
        capture_fig7_stream,
        measure_hotpath_point,
        trajectory_entry,
    )

    path = pathlib.Path(__file__).parent.parent / "BENCH_FRAMES.json"
    stream, program = capture_fig7_stream()
    note = (
        f"{campaign} campaign: {len(outcome.rows)} tasks, "
        f"{outcome.wall_seconds:.2f}s wall via {outcome.backend}"
    )
    for codec in ("reference", "fast"):
        result = measure_hotpath_point(
            frame_codec=codec, stream=stream, program=program
        )
        append_entry(path, trajectory_entry(result, note=note))
        print(
            f"[frames] {result.bench}[{codec}]: "
            f"{result.frames_per_sec:,.0f} frames/s ({note})"
        )


def save_table(name: str, text: str) -> None:
    """Persist a rendered result table and echo it to stdout.

    Tables land in benchmarks/results/ so EXPERIMENTS.md can reference the
    latest regeneration of each figure.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
