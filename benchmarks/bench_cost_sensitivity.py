"""Ablation: sensitivity of Figure 8 to the CPU cost calibration.

Our virtual cost model was calibrated once so the 25-filter overhead lands
in the paper's few-percent envelope (see EXPERIMENTS.md).  This benchmark
checks that the figure's *structural* claims — linear growth in the filter
count, the filters < +actions < +RLL ordering — hold when every engine
cost is scaled by 0.5x, 1x and 2x, i.e. that the reproduced shape is a
property of the design and not of the calibration point.

Results land in benchmarks/results/cost_sensitivity.txt.
"""

import pytest

from conftest import save_table
from repro.bench.fig8 import build_script
from repro.sim import ms, seconds
from repro.stack.costs import CostModel
from repro.workloads.echo import EchoClient, EchoServer
from tests.conftest import make_testbed  # reused builder; engine via Testbed

from repro.core.testbed import Testbed

PROBES = 30
FACTORS = (0.5, 1.0, 2.0)
FILTER_COUNTS = (2, 25)


def scaled_engine_costs(factor: float) -> CostModel:
    """Scale only the engine-side costs; the baseline stack stays fixed so

    overhead percentages remain comparable across factors.
    """
    base = CostModel()
    return CostModel(
        driver_tx_ns=base.driver_tx_ns,
        driver_rx_ns=base.driver_rx_ns,
        ip_ns=base.ip_ns,
        udp_ns=base.udp_ns,
        tcp_ns=base.tcp_ns,
        engine_base_ns=int(base.engine_base_ns * factor),
        filter_match_ns=int(base.filter_match_ns * factor),
        action_ns=int(base.action_ns * factor),
        table_touch_ns=int(base.table_touch_ns * factor),
        rll_frame_ns=int(base.rll_frame_ns * factor),
    )


def measure(costs: CostModel, n_filters: int, with_vw: bool, seed=0) -> float:
    tb = Testbed(seed=seed, costs=costs)
    node1 = tb.add_host("node1")
    node2 = tb.add_host("node2")
    tb.add_switch("sw0")
    tb.connect("sw0", node1, node2)
    server = EchoServer(node2)
    if not with_vw:
        client = EchoClient(node1, node2.ip, probes=PROBES, payload_size=1000)
        client.start()
        tb.sim.run_until(seconds(30))
        return client.mean_rtt_ns
    tb.install_virtualwire(control="node1")
    script = build_script(tb.node_table_fsl(), n_filters, with_actions=False)
    state = {}

    def workload():
        client = EchoClient(node1, node2.ip, probes=PROBES, payload_size=1000)
        state["client"] = client
        client.start()

    tb.run_scenario(script, workload=workload, max_time=seconds(60), inactivity_ns=ms(300))
    return state["client"].mean_rtt_ns


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    for factor in FACTORS:
        costs = scaled_engine_costs(factor)
        baseline = measure(costs, 2, with_vw=False)
        overheads = {}
        for count in FILTER_COUNTS:
            rtt = measure(costs, count, with_vw=True)
            overheads[count] = (rtt - baseline) * 100.0 / baseline
        rows[factor] = overheads
    lines = [f"{'engine-cost x':>14} {'2 filters':>11} {'25 filters':>11}"]
    for factor, overheads in rows.items():
        lines.append(
            f"{factor:>13.1f}x {overheads[2]:>10.2f}% {overheads[25]:>10.2f}%"
        )
    save_table("cost_sensitivity", "\n".join(lines))
    return rows


class TestCostSensitivity:
    def test_growth_with_filters_survives_scaling(self, benchmark, sweep):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for factor, overheads in sweep.items():
            assert overheads[25] > overheads[2], (
                f"at {factor}x engine cost, 25 filters should exceed 2"
            )

    def test_overhead_scales_roughly_linearly_with_cost(self, benchmark, sweep):
        """Doubling the per-entry cost should roughly double the marginal

        (25 vs 2 filter) overhead — the linear-scan term dominates.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        margin = {
            factor: overheads[25] - overheads[2]
            for factor, overheads in sweep.items()
        }
        assert margin[2.0] > 1.5 * margin[1.0]
        assert margin[0.5] < 0.75 * margin[1.0]

    def test_half_cost_still_measurable(self, benchmark, sweep):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert sweep[0.5][25] > 0
