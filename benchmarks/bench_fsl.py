"""Front-end performance: FSL parse and compile cost (§5.1).

The paper's workflow recompiles a script per test-case run, so the
front-end must stay trivially cheap next to the scenario itself.  We
measure the paper's own scripts plus a synthetically large scenario.
"""

import pytest

from conftest import save_table
from repro.core.fsl import compile_text, parse_script
from repro.scripts import rether_failover_script, tcp_congestion_script

NODES_2 = """
NODE_TABLE
  node1 02:00:00:00:00:01 192.168.1.1
  node2 02:00:00:00:00:02 192.168.1.2
END
"""

NODES_4 = """
NODE_TABLE
  node1 02:00:00:00:00:01 192.168.1.1
  node2 02:00:00:00:00:02 192.168.1.2
  node3 02:00:00:00:00:03 192.168.1.3
  node4 02:00:00:00:00:04 192.168.1.4
END
"""


def synthetic_script(n_rules: int) -> str:
    lines = ["FILTER_TABLE"]
    for i in range(25):
        lines.append(f"  f{i}: (12 2 0x9{i % 10}0{i // 10}), (14 2 {i})")
    lines.append("END")
    lines.append(NODES_4)
    lines.append("SCENARIO big 1sec")
    for i in range(n_rules):
        lines.append(f"  C{i}: (f{i % 25}, node1, node2, RECV)")
    for i in range(n_rules):
        lines.append(
            f"  ((C{i} > {i}) && (C{(i + 1) % n_rules} <= {i + 5})) >> "
            f"INCR_CNTR( C{i}, 1 ); RESET_CNTR( C{(i + 2) % n_rules} );"
        )
    lines.append("END")
    return "\n".join(lines)


class TestFrontEndCost:
    def test_parse_fig5(self, benchmark):
        script = tcp_congestion_script(NODES_2)
        ast = benchmark(lambda: parse_script(script))
        assert ast.scenarios

    def test_compile_fig5(self, benchmark):
        script = tcp_congestion_script(NODES_2)
        program = benchmark(lambda: compile_text(script))
        assert program.table_sizes()["conditions"] == 8

    def test_compile_fig6(self, benchmark):
        script = rether_failover_script(NODES_4)
        program = benchmark(lambda: compile_text(script))
        assert program.timeout_ns == 10**9

    def test_compile_large_scenario(self, benchmark):
        script = synthetic_script(100)
        program = benchmark(lambda: compile_text(script))
        assert program.table_sizes()["conditions"] == 100

    def test_scaling_summary(self, benchmark):
        import time

        rows = []
        for n_rules in (10, 50, 100, 200):
            script = synthetic_script(n_rules)
            t0 = time.perf_counter()
            for _ in range(20):
                compile_text(script)
            elapsed = (time.perf_counter() - t0) / 20
            rows.append(f"{n_rules:>6} rules: {elapsed * 1000:>7.2f} ms/compile")
        save_table("fsl_compile", "\n".join(rows))
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
