"""Ablation: linear reference vs the production indexed classifier.

The paper attributes Fig 8's linear latency growth to the engine searching
"linearly through the packet type definitions for the exact match" (§7).
This benchmark quantifies that design choice: it measures the linear
reference classifier against the production :class:`IndexedClassifier`
(promoted from the prototype that used to live here) over growing filter
tables, and differentially checks that the two stay observationally
identical on a mixed packet workload.

Real (wall-clock) classification cost is what the index flattens; the
*virtual-time* cost model still charges the paper's linear scan — see
docs/CLASSIFIER.md and the parity test in bench_fig8_latency.py.

Quick mode (``BENCH_CLASSIFY_QUICK=1`` in the environment) shrinks the
sweep so the differential section doubles as a tier-1 smoke test; results
land in benchmarks/results/classify_ablation.txt.
"""

import os
import time
from typing import List, Tuple

import pytest

from conftest import save_table
from repro.core.classify import Classifier, IndexedClassifier
from repro.core.tables import FilterEntry, FilterTable, FilterTuple, VarRef
from repro.net import FLAG_ACK, TcpSegment, build_tcp_frame

QUICK = os.environ.get("BENCH_CLASSIFY_QUICK", "0") == "1"
TABLE_SIZES = (5, 50) if QUICK else (5, 25, 100, 400)
PACKETS_PER_ROUND = 200 if QUICK else 2_000
#: acceptance bar: production index vs linear reference at the largest
#: table (400 entries in the full sweep).
MIN_SPEEDUP = 5.0


def build_table(n_entries: int) -> FilterTable:
    """A table whose live TCP entry is last, behind n-1 decoys."""
    entries = [
        FilterEntry(
            f"decoy{i}",
            (FilterTuple(12, 2, 0x9000 + i), FilterTuple(14, 2, i & 0xFFFF)),
        )
        for i in range(n_entries - 1)
    ]
    entries.append(
        FilterEntry(
            "tcp_data",
            (
                FilterTuple(34, 2, 0x6000),
                FilterTuple(36, 2, 0x4000),
                FilterTuple(47, 1, 0x10, mask=0x10),
            ),
        )
    )
    return FilterTable(entries)


def sample_packet() -> bytes:
    seg = TcpSegment(0x6000, 0x4000, 1, 2, FLAG_ACK, 512, bytes(64))
    return build_tcp_frame(
        "02:00:00:00:00:01",
        "02:00:00:00:00:02",
        "10.0.0.1",
        "10.0.0.2",
        seg,
    ).to_bytes()


def decoy_packet(index: int) -> bytes:
    frame = bytearray(60)
    frame[12:14] = (0x9000 + index).to_bytes(2, "big")
    frame[14:16] = (index & 0xFFFF).to_bytes(2, "big")
    return bytes(frame)


def unmatched_packet() -> bytes:
    frame = bytearray(60)
    frame[12:14] = (0x1234).to_bytes(2, "big")
    return bytes(frame)


def mixed_workload(size: int) -> List[bytes]:
    """Matching, decoy-hitting, unmatched and truncated frames."""
    packets = [sample_packet(), unmatched_packet(), sample_packet()[:30], b""]
    packets += [decoy_packet(i) for i in range(0, max(size - 1, 1), 7)]
    return packets


@pytest.fixture(scope="module")
def results() -> List[Tuple[int, float, float]]:
    packet = sample_packet()
    rows = []
    for size in TABLE_SIZES:
        table = build_table(size)
        linear = Classifier(table)
        indexed = IndexedClassifier(table)
        t0 = time.perf_counter()
        for _ in range(PACKETS_PER_ROUND):
            linear.classify(packet)
        linear_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(PACKETS_PER_ROUND):
            indexed.classify(packet)
        indexed_s = time.perf_counter() - t0
        rows.append((size, linear_s, indexed_s))
    lines = [
        f"{'entries':>8} {'linear us/pkt':>14} {'indexed us/pkt':>15} {'speedup':>8}"
    ]
    for size, linear_s, indexed_s in rows:
        lines.append(
            f"{size:>8} {linear_s / PACKETS_PER_ROUND * 1e6:>14.2f} "
            f"{indexed_s / PACKETS_PER_ROUND * 1e6:>15.2f} "
            f"{linear_s / max(indexed_s, 1e-12):>7.1f}x"
        )
    save_table("classify_ablation", "\n".join(lines))
    return rows


class TestClassifyAblation:
    def test_linear_cost_grows_with_table(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        small = results[0][1]
        large = results[-1][1]
        assert large > small * 2  # the linear term is visible in the sweep

    def test_indexed_cost_stays_flat(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        small = results[0][2]
        large = results[-1][2]
        assert large < small * 5  # bucketing removes the linear term

    def test_production_speedup_at_largest_table(self, benchmark, results):
        """Acceptance bar: the production index is ≥5× faster than the

        linear reference at the largest table of the sweep (400 entries
        in the full run).
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        size, linear_s, indexed_s = results[-1]
        speedup = linear_s / max(indexed_s, 1e-12)
        assert speedup >= MIN_SPEEDUP, (
            f"indexed classifier only {speedup:.1f}x faster than linear "
            f"at {size} entries (need {MIN_SPEEDUP}x)"
        )

    def test_index_does_less_real_work(self, benchmark):
        """The result/cost split made explicit: identical charged scans,

        far fewer entries actually examined.
        """
        table = build_table(max(TABLE_SIZES))
        packet = sample_packet()
        benchmark.pedantic(
            lambda: IndexedClassifier(table).classify(packet), rounds=1, iterations=1
        )
        linear = Classifier(table)
        indexed = IndexedClassifier(table)
        for _ in range(50):
            linear.classify(packet)
            indexed.classify(packet)
        assert indexed.entries_scanned_total == linear.entries_scanned_total
        assert indexed.entries_examined_total * 10 < linear.entries_examined_total

    def test_linear_throughput(self, benchmark):
        """Raw packets/second through the linear reference at the paper's

        25-entry table size.
        """
        table = build_table(25)
        classifier = Classifier(table)
        packet = sample_packet()
        benchmark(lambda: classifier.classify(packet))

    def test_indexed_throughput(self, benchmark):
        """Raw packets/second through the production classifier at the

        paper's 25-entry table size.
        """
        table = build_table(25)
        classifier = IndexedClassifier(table)
        packet = sample_packet()
        benchmark(lambda: classifier.classify(packet))


class TestDifferentialSmoke:
    """Deterministic differential sweep (the quick-mode smoke test)."""

    def test_equivalence_on_mixed_workload(self, benchmark):
        def sweep():
            for size in TABLE_SIZES:
                table = build_table(size)
                linear = Classifier(table)
                indexed = IndexedClassifier(table)
                for packet in mixed_workload(size):
                    assert indexed.classify(packet) == linear.classify(packet)
                assert indexed.packets_classified == linear.packets_classified
                assert indexed.packets_unmatched == linear.packets_unmatched
                assert (
                    indexed.entries_scanned_total == linear.entries_scanned_total
                )
            return True

        assert benchmark.pedantic(sweep, rounds=1, iterations=1)

    def test_equivalence_with_var_entries(self, benchmark):
        table = FilterTable(
            [
                FilterEntry(
                    "rt",
                    (
                        FilterTuple(34, 2, 0x6000),
                        FilterTuple(38, 4, VarRef("Seq")),
                        FilterTuple(47, 1, 0x10, mask=0x10),
                    ),
                ),
                FilterEntry(
                    "data",
                    (FilterTuple(34, 2, 0x6000), FilterTuple(47, 1, 0x10, mask=0x10)),
                ),
            ]
        )
        linear = Classifier(table)
        indexed = IndexedClassifier(table)
        packet = sample_packet()
        result = benchmark.pedantic(
            lambda: indexed.classify(packet), rounds=1, iterations=1
        )
        assert result == linear.classify(packet)
        assert indexed.vars.snapshot() == linear.vars.snapshot()
