"""Ablation: linear vs indexed packet classification.

The paper attributes Fig 8's linear latency growth to the engine searching
"linearly through the packet type definitions for the exact match" (§7).
This benchmark quantifies that design choice: it measures the production
linear classifier against an indexed prototype that buckets filter entries
by their EtherType tuple, over growing filter tables.

The indexed variant demonstrates the flat-cost alternative the paper left
as an optimisation; results land in benchmarks/results/classify.txt.
"""

from typing import Dict, List, Optional, Tuple

import pytest

from conftest import save_table
from repro.core.classify import Classifier, _read_field
from repro.core.tables import FilterEntry, FilterTable, FilterTuple
from repro.net import FLAG_ACK, TcpSegment, build_tcp_frame

TABLE_SIZES = (5, 25, 100, 400)
PACKETS_PER_ROUND = 2_000


def build_table(n_entries: int) -> FilterTable:
    """A table whose live TCP entry is last, behind n-1 decoys."""
    entries = [
        FilterEntry(
            f"decoy{i}",
            (FilterTuple(12, 2, 0x9000 + i), FilterTuple(14, 2, i & 0xFFFF)),
        )
        for i in range(n_entries - 1)
    ]
    entries.append(
        FilterEntry(
            "tcp_data",
            (
                FilterTuple(34, 2, 0x6000),
                FilterTuple(36, 2, 0x4000),
                FilterTuple(47, 1, 0x10, mask=0x10),
            ),
        )
    )
    return FilterTable(entries)


def sample_packet() -> bytes:
    seg = TcpSegment(0x6000, 0x4000, 1, 2, FLAG_ACK, 512, bytes(64))
    return build_tcp_frame(
        "02:00:00:00:00:01",
        "02:00:00:00:00:02",
        "10.0.0.1",
        "10.0.0.2",
        seg,
    ).to_bytes()


class IndexedClassifier:
    """Prototype: entries bucketed by their (12, 2) EtherType tuple value.

    Entries without an EtherType tuple fall into a catch-all bucket that
    is always scanned, preserving first-match semantics within and across
    buckets by keeping original positions.
    """

    def __init__(self, table: FilterTable) -> None:
        self.table = table
        self._buckets: Dict[Optional[int], List[Tuple[int, FilterEntry]]] = {}
        for position, entry in enumerate(table.entries):
            key = self._ethertype_key(entry)
            self._buckets.setdefault(key, []).append((position, entry))
        self._linear = Classifier(table)  # reuse tuple matching

    @staticmethod
    def _ethertype_key(entry: FilterEntry) -> Optional[int]:
        for tup in entry.tuples:
            if (
                tup.offset == 12
                and tup.nbytes == 2
                and tup.mask is None
                and isinstance(tup.pattern, int)
            ):
                return tup.pattern
        return None

    def classify(self, data: bytes) -> Optional[str]:
        ethertype = _read_field(data, FilterTuple(12, 2, 0))
        candidates = list(self._buckets.get(ethertype, []))
        candidates += self._buckets.get(None, [])
        candidates.sort(key=lambda item: item[0])
        for _, entry in candidates:
            if self._linear._match(entry, data) is not None:
                return entry.name
        return None


@pytest.fixture(scope="module")
def results():
    import time

    packet = sample_packet()
    rows = []
    for size in TABLE_SIZES:
        table = build_table(size)
        linear = Classifier(table)
        indexed = IndexedClassifier(table)
        t0 = time.perf_counter()
        for _ in range(PACKETS_PER_ROUND):
            linear.classify(packet)
        linear_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(PACKETS_PER_ROUND):
            indexed.classify(packet)
        indexed_s = time.perf_counter() - t0
        rows.append((size, linear_s, indexed_s))
    lines = [f"{'entries':>8} {'linear us/pkt':>14} {'indexed us/pkt':>15}"]
    for size, linear_s, indexed_s in rows:
        lines.append(
            f"{size:>8} {linear_s / PACKETS_PER_ROUND * 1e6:>14.2f} "
            f"{indexed_s / PACKETS_PER_ROUND * 1e6:>15.2f}"
        )
    save_table("classify_ablation", "\n".join(lines))
    return rows


class TestClassifyAblation:
    def test_linear_cost_grows_with_table(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        small = results[0][1]
        large = results[-1][1]
        assert large > small * 5  # 5->400 entries: cost clearly grows

    def test_indexed_cost_stays_flat(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        small = results[0][2]
        large = results[-1][2]
        assert large < small * 5  # bucketing removes the linear term

    def test_equivalence(self, benchmark):
        """The optimisation must not change classification results."""
        table = build_table(50)
        packet = sample_packet()
        linear = Classifier(table)
        indexed = IndexedClassifier(table)
        name = benchmark.pedantic(
            lambda: indexed.classify(packet), rounds=1, iterations=1
        )
        assert name == linear.classify(packet)[0] == "tcp_data"

    def test_linear_throughput(self, benchmark):
        """Raw packets/second through the production classifier at the

        paper's 25-entry table size.
        """
        table = build_table(25)
        classifier = Classifier(table)
        packet = sample_packet()
        benchmark(lambda: classifier.classify(packet))
