"""Ablation: control-plane traffic vs rule distribution (§5.2).

The paper's two-tier evaluation strategy — counter-vs-constant terms
evaluated at the counter's home with only *status changes* broadcast,
counter-vs-counter terms mirrored by *value* — exists to keep control
traffic down.  This benchmark measures the state-exchange frames
(COUNTER_UPDATE + TERM_STATUS, orchestration excluded) generated per
observed packet under four rule placements:

* local         — condition and action on the counter's own node (zero);
* status-stable — remote action, counter-vs-const term that flips once;
* status-flappy — same, but the rule body resets the counter, so the term
                  status flips twice per packet (the worst case for the
                  status-broadcast tier);
* mirror        — remote counter-vs-counter term (one value per change).

Results land in benchmarks/results/control_plane.txt.
"""

import pytest

from conftest import save_table
from repro.core.testbed import Testbed
from repro.sim import ms, seconds

HEADER = """
FILTER_TABLE
  probe: (12 2 0x0800), (23 1 0x11), (36 2 0x0007)
END
{nodes}
"""

RULES = {
    "local": """
SCENARIO local
  P: (probe, node1, node2, RECV)
  X: (node2)
  ((P = 1)) >> RESET_CNTR( P ); INCR_CNTR( X, 1 );
END
""",
    "status-stable": """
SCENARIO status_stable
  P: (probe, node1, node2, RECV)
  X: (node3)
  ((P >= 10)) >> INCR_CNTR( X, 1 );
END
""",
    "status-flappy": """
SCENARIO status_flappy
  P: (probe, node1, node2, RECV)
  X: (node3)
  ((P = 1)) >> RESET_CNTR( P ); INCR_CNTR( X, 1 );
END
""",
    "mirror": """
SCENARIO mirror
  P: (probe, node1, node2, RECV)
  Q: (probe, node1, node3, RECV)
  /* Rule home is Q's node (node3): P's every change must be mirrored
     there.  The condition is true at start; we tolerate its one error. */
  ((Q >= P)) >> FLAG_ERROR;
END
""",
}

N_PACKETS = 50


def run(kind: str, seed=23):
    tb = Testbed(seed=seed)
    hosts = [tb.add_host(f"node{i}") for i in range(1, 4)]
    tb.add_switch("sw0")
    tb.connect("sw0", *hosts)
    tb.install_virtualwire(control="node1")
    script = HEADER.format(nodes=tb.node_table_fsl()) + RULES[kind]

    def workload():
        hosts[1].udp.bind(7)
        sender = hosts[0].udp.bind(0)
        for i in range(N_PACKETS):
            tb.sim.after(
                (i + 1) * ms(1), lambda: sender.sendto(bytes(30), hosts[1].ip, 7)
            )

    report = tb.run_scenario(
        script, workload=workload, max_time=seconds(30), inactivity_ns=ms(200)
    )
    state_frames = sum(
        stats["state_frames_sent"] for stats in report.engine_stats.values()
    )
    return state_frames / N_PACKETS


@pytest.fixture(scope="module")
def results():
    rows = {kind: run(kind) for kind in RULES}
    lines = [f"{'placement':>14} {'state frames / packet':>23}"]
    for kind, per_packet in rows.items():
        lines.append(f"{kind:>14} {per_packet:>23.2f}")
    save_table("control_plane", "\n".join(lines))
    return rows


class TestControlPlaneAblation:
    def test_local_rules_generate_no_state_traffic(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert results["local"] == 0.0

    def test_stable_status_broadcast_is_nearly_free(self, benchmark, results):
        """The paper's optimisation at its best: one flip, one frame."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert results["status-stable"] <= 2 / N_PACKETS

    def test_mirror_traffic_tracks_counter_changes(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert 0.9 <= results["mirror"] <= 1.2

    def test_flappy_rules_are_the_worst_case(self, benchmark, results):
        """A self-resetting remote rule flips its term twice per packet:

        dearer than value mirroring — placement matters, which is why the
        compiler keeps counter actions on the counter's home node.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert results["status-flappy"] >= results["mirror"]
