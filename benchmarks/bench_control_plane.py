"""Ablation: control-plane traffic vs rule distribution (§5.2).

The paper's two-tier evaluation strategy — counter-vs-constant terms
evaluated at the counter's home with only *status changes* broadcast,
counter-vs-counter terms mirrored by *value* — exists to keep control
traffic down.  This benchmark measures the state-exchange frames
(COUNTER_UPDATE + TERM_STATUS, orchestration excluded) generated per
observed packet under four rule placements:

* local         — condition and action on the counter's own node (zero);
* status-stable — remote action, counter-vs-const term that flips once;
* status-flappy — same, but the rule body resets the counter, so the term
                  status flips twice per packet (the worst case for the
                  status-broadcast tier);
* mirror        — remote counter-vs-counter term (one value per change).

A second (``slow``-marked) sweep measures the reliable channel's overhead
under control-frame loss: total control frames on the wire per observed
packet at 0% / 5% / 20% loss, with the retransmit and duplicate counters
that explain the growth.  Deselect with ``-m "not slow"``.

Results land in benchmarks/results/control_plane.txt and
benchmarks/results/control_plane_loss.txt.
"""

import pytest

from conftest import campaign_header, save_table, sweep_backend
from repro.core.testbed import Testbed
from repro.scripts import canonical_node_table
from repro.sim import ms, seconds
from repro.sweep import SweepSpec, run_script_task, run_sweep

HEADER = """
FILTER_TABLE
  probe: (12 2 0x0800), (23 1 0x11), (36 2 0x0007)
END
{nodes}
"""

RULES = {
    "local": """
SCENARIO local
  P: (probe, node1, node2, RECV)
  X: (node2)
  ((P = 1)) >> RESET_CNTR( P ); INCR_CNTR( X, 1 );
END
""",
    "status-stable": """
SCENARIO status_stable
  P: (probe, node1, node2, RECV)
  X: (node3)
  ((P >= 10)) >> INCR_CNTR( X, 1 );
END
""",
    "status-flappy": """
SCENARIO status_flappy
  P: (probe, node1, node2, RECV)
  X: (node3)
  ((P = 1)) >> RESET_CNTR( P ); INCR_CNTR( X, 1 );
END
""",
    "mirror": """
SCENARIO mirror
  P: (probe, node1, node2, RECV)
  Q: (probe, node1, node3, RECV)
  /* Rule home is Q's node (node3): P's every change must be mirrored
     there.  The condition is true at start; we tolerate its one error. */
  ((Q >= P)) >> FLAG_ERROR;
END
""",
}

N_PACKETS = 50


def run(kind: str, seed=23):
    tb = Testbed(seed=seed)
    hosts = [tb.add_host(f"node{i}") for i in range(1, 4)]
    tb.add_switch("sw0")
    tb.connect("sw0", *hosts)
    tb.install_virtualwire(control="node1")
    script = HEADER.format(nodes=tb.node_table_fsl()) + RULES[kind]

    def workload():
        hosts[1].udp.bind(7)
        sender = hosts[0].udp.bind(0)
        for i in range(N_PACKETS):
            tb.sim.after(
                (i + 1) * ms(1), lambda: sender.sendto(bytes(30), hosts[1].ip, 7)
            )

    report = tb.run_scenario(
        script, workload=workload, max_time=seconds(30), inactivity_ns=ms(200)
    )
    state_frames = sum(
        stats["state_frames_sent"] for stats in report.engine_stats.values()
    )
    return state_frames / N_PACKETS


@pytest.fixture(scope="module")
def results():
    rows = {kind: run(kind) for kind in RULES}
    lines = [f"{'placement':>14} {'state frames / packet':>23}"]
    for kind, per_packet in rows.items():
        lines.append(f"{kind:>14} {per_packet:>23.2f}")
    save_table("control_plane", "\n".join(lines))
    return rows


LOSS_RATES = (0.0, 0.05, 0.20)


def loss_campaign(kind: str = "mirror", seed: int = 23) -> SweepSpec:
    """The loss ablation as a sweep: one task per control-loss rate.

    The three-node recipe matches the ad-hoc :func:`run` testbed exactly —
    ``canonical_node_table(3)`` reproduces the auto-assigned addresses —
    but each rate is now an independent picklable task, compiled once in
    the parent and runnable on either backend.
    """
    script = HEADER.format(nodes=canonical_node_table(3)) + RULES[kind]
    spec = SweepSpec("control_plane_loss", base_seed=seed)
    for rate in LOSS_RATES:
        spec.add(
            f"{kind}@{rate:.0%}",
            run_script_task,
            script=script,
            seed=seed,
            control_loss={"node3": rate} if rate else {},
            workload={
                "kind": "udp_probes",
                "count": N_PACKETS,
                "interval_ns": ms(1),
                "port": 7,
                "bytes": 30,
                "receiver": "node2",
            },
            max_time_ns=seconds(30),
            inactivity_ns=ms(200),
        )
    return spec


def _loss_totals(payload):
    totals = {
        key: sum(stats[key] for stats in payload["engine_stats"].values())
        for key in (
            "control_frames_sent",
            "control_retransmits",
            "control_duplicates_dropped",
        )
    }
    totals["frames_per_packet"] = totals["control_frames_sent"] / N_PACKETS
    totals["degraded"] = payload["degraded"]
    return totals


@pytest.fixture(scope="module")
def loss_results():
    backend, workers = sweep_backend()
    outcome = run_sweep(loss_campaign(), backend=backend, workers=workers)
    assert all(row.ok for row in outcome.rows), outcome.render()
    rows = {
        rate: _loss_totals(row.payload)
        for rate, row in zip(LOSS_RATES, outcome.rows)
    }
    lines = [
        campaign_header(outcome),
        f"{'loss':>6} {'frames / packet':>16} {'retransmits':>12} {'dups dropped':>13}",
    ]
    for rate, row in rows.items():
        lines.append(
            f"{rate:>6.0%} {row['frames_per_packet']:>16.2f} "
            f"{row['control_retransmits']:>12} {row['control_duplicates_dropped']:>13}"
        )
    save_table("control_plane_loss", "\n".join(lines))
    return rows


class TestControlPlaneAblation:
    def test_local_rules_generate_no_state_traffic(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert results["local"] == 0.0

    def test_stable_status_broadcast_is_nearly_free(self, benchmark, results):
        """The paper's optimisation at its best: one flip, one frame."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert results["status-stable"] <= 2 / N_PACKETS

    def test_mirror_traffic_tracks_counter_changes(self, benchmark, results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert 0.9 <= results["mirror"] <= 1.2

    def test_flappy_rules_are_the_worst_case(self, benchmark, results):
        """A self-resetting remote rule flips its term twice per packet:

        dearer than value mirroring — placement matters, which is why the
        compiler keeps counter actions on the counter's home node.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert results["status-flappy"] >= results["mirror"]


@pytest.mark.slow
class TestControlLossSweep:
    """ARQ overhead under 0/5/20% control-frame loss (robustness ablation)."""

    def test_lossless_run_never_retransmits(self, benchmark, loss_results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        clean = loss_results[0.0]
        assert clean["control_retransmits"] == 0
        assert clean["control_duplicates_dropped"] == 0

    def test_no_loss_rate_degrades_the_run(self, benchmark, loss_results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert not any(row["degraded"] for row in loss_results.values())

    def test_overhead_grows_with_loss(self, benchmark, loss_results):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        frames = [loss_results[rate]["frames_per_packet"] for rate in LOSS_RATES]
        assert frames == sorted(frames)
        assert loss_results[0.20]["control_retransmits"] > 0

    def test_overhead_stays_proportionate(self, benchmark, loss_results):
        """Retransmission must roughly track the loss rate, not blow up:

        at 20% loss the wire carries well under 2x the lossless frames.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        clean = loss_results[0.0]["frames_per_packet"]
        worst = loss_results[0.20]["frames_per_packet"]
        assert worst <= 2.0 * clean
