"""The TCP connection state machine.

A from-scratch TCP sufficient to exercise everything the paper's case study
tests from the wire: three-way handshake with SYN retransmission, ack-per-
segment data transfer, Tahoe congestion control (slow start / congestion
avoidance exactly as §6.1 describes), timeout and fast retransmission with
Karn-sampled RTO, in-order reassembly of out-of-order arrivals (needed when
a REORDER or DROP fault is injected), and the full FIN teardown including
TIME_WAIT.

Segment pacing is ACK-clocked: every received segment is acknowledged
immediately (no delayed ACKs), because the paper's Fig 5 analysis script
counts one ACK per data packet.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from ..errors import TcpError
from ..net.tcp_segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from ..net.addresses import IpAddress
from ..sim import NS_PER_SEC, Simulator
from .buffers import SendBuffer
from .congestion import CongestionControl
from .rto import RttEstimator
from .seqmath import seq_add, seq_diff, seq_gt, seq_le, seq_lt

#: Default maximum segment size, chosen so 64 KB of ssthresh is 64 segments.
DEFAULT_MSS = 1024
#: Advertised receive window (bytes); the app consumes data immediately.
DEFAULT_RCV_WND = 0xFFFF
#: How long TIME_WAIT lingers (shortened 2*MSL; configurable per connection).
DEFAULT_TIME_WAIT_NS = 1 * NS_PER_SEC
#: Server-side SYNACK retransmission period (Linux spaces SYNACK retries
#: more coarsely than the client's SYN timer; 3 s keeps the client's SYN
#: retransmission the recovery path, as in the paper's §6.1 narrative).
DEFAULT_SYNACK_RTO_NS = 3 * NS_PER_SEC
#: Duplicate-ACK threshold for fast retransmit.
DUPACK_THRESHOLD = 3
#: Cap on buffered out-of-order segments before new ones are dropped.
MAX_OOO_SEGMENTS = 256


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


class _SentSegment:
    """Bookkeeping for one transmitted, not-yet-acknowledged segment."""

    __slots__ = ("seq", "payload", "flags", "sent_at", "retransmitted")

    def __init__(self, seq: int, payload: bytes, flags: int, sent_at: int) -> None:
        self.seq = seq
        self.payload = payload
        self.flags = flags
        self.sent_at = sent_at
        self.retransmitted = False

    @property
    def seq_space(self) -> int:
        phantom = (1 if self.flags & FLAG_SYN else 0) + (1 if self.flags & FLAG_FIN else 0)
        return len(self.payload) + phantom

    @property
    def end_seq(self) -> int:
        return seq_add(self.seq, self.seq_space)


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(
        self,
        layer,
        local_port: int,
        remote_ip: IpAddress,
        remote_port: int,
        congestion: Optional[CongestionControl] = None,
        mss: int = DEFAULT_MSS,
        iss: int = 0,
        time_wait_ns: int = DEFAULT_TIME_WAIT_NS,
    ) -> None:
        self.layer = layer
        self.sim: Simulator = layer.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.congestion = congestion if congestion is not None else CongestionControl()
        self.mss = mss
        self.time_wait_ns = time_wait_ns
        self.state = TcpState.CLOSED

        # Send side.
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.peer_window = DEFAULT_RCV_WND
        self._send_buffer = SendBuffer()
        self._unacked: List[_SentSegment] = []
        self._fin_queued = False
        self._fin_sent = False
        self._dup_acks = 0

        # Receive side.
        self.irs = 0
        self.rcv_nxt = 0
        self.rcv_wnd = DEFAULT_RCV_WND
        self._out_of_order: Dict[int, TcpSegment] = {}
        self._remote_fin_seen = False

        # Timers.
        self.estimator = RttEstimator()
        self._rtx_timer = None
        self._synack_timer = None
        self._time_wait_timer = None

        # Callbacks the application installs.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_remote_close: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None
        self.on_reset: Optional[Callable[[], None]] = None

        # Statistics.
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.timeout_retransmits = 0
        self.duplicate_segments = 0

        # Metric handles (repro.analysis); None keeps the hot path free.
        metrics = getattr(getattr(layer, "host", None), "metrics", None)
        self._m_rtt = metrics.histogram("tcp", "rtt_ns") if metrics is not None else None
        self._m_timeout_rtx = (
            metrics.counter("tcp", "timeout_retransmits") if metrics is not None else None
        )
        self._m_fast_rtx = (
            metrics.counter("tcp", "fast_retransmits") if metrics is not None else None
        )
        self._m_cwnd = metrics.gauge("tcp", "cwnd") if metrics is not None else None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def open_active(self) -> None:
        """Client side: send SYN and enter SYN_SENT."""
        if self.state is not TcpState.CLOSED:
            raise TcpError(f"open_active in state {self.state.name}")
        self.state = TcpState.SYN_SENT
        self._transmit(self.snd_nxt, b"", FLAG_SYN, track=True)
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._arm_rtx_timer()

    def open_passive(self, syn: TcpSegment) -> None:
        """Server side: a listener received *syn* for us; answer SYN+ACK."""
        if self.state is not TcpState.CLOSED:
            raise TcpError(f"open_passive in state {self.state.name}")
        self.irs = syn.seq
        self.rcv_nxt = seq_add(syn.seq, 1)
        self.peer_window = syn.window
        self.state = TcpState.SYN_RCVD
        self._send_synack()

    def send(self, data: bytes) -> None:
        """Queue application *data* for transmission."""
        if self.state not in (
            TcpState.ESTABLISHED,
            TcpState.SYN_SENT,
            TcpState.SYN_RCVD,
            TcpState.CLOSE_WAIT,
        ):
            raise TcpError(f"send in state {self.state.name}")
        if self._fin_queued:
            raise TcpError("send after close")
        self._send_buffer.append(data)
        self._try_send()

    def close(self) -> None:
        """Graceful close: FIN goes out once queued data has been sent."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT, TcpState.LAST_ACK):
            return
        if self.state is TcpState.SYN_SENT:
            self._enter_closed(notify=True)
            return
        self._fin_queued = True
        self._try_send()

    def abort(self) -> None:
        """Hard close: send RST and drop all state."""
        if self.state not in (TcpState.CLOSED, TcpState.LISTEN):
            self._emit(
                TcpSegment(
                    self.local_port,
                    self.remote_port,
                    self.snd_nxt,
                    self.rcv_nxt,
                    FLAG_RST | FLAG_ACK,
                    0,
                )
            )
        self._enter_closed(notify=True)

    def destroy(self) -> None:
        """Host crash: drop all state silently — no RST, no callbacks."""
        self._enter_closed(notify=False)

    @property
    def is_established(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    @property
    def in_flight_bytes(self) -> int:
        return seq_diff(self.snd_nxt, self.snd_una)

    @property
    def send_queue_bytes(self) -> int:
        return len(self._send_buffer)

    # ------------------------------------------------------------------
    # Segment input
    # ------------------------------------------------------------------

    def handle_segment(self, seg: TcpSegment) -> None:
        """Entry point from the TCP layer for every segment addressed to us."""
        self.segments_received += 1
        if seg.is_rst:
            self._handle_rst(seg)
            return
        handler = {
            TcpState.SYN_SENT: self._segment_in_syn_sent,
            TcpState.SYN_RCVD: self._segment_in_syn_rcvd,
            TcpState.ESTABLISHED: self._segment_in_established,
            TcpState.FIN_WAIT_1: self._segment_in_established,
            TcpState.FIN_WAIT_2: self._segment_in_established,
            TcpState.CLOSE_WAIT: self._segment_in_established,
            TcpState.CLOSING: self._segment_in_established,
            TcpState.LAST_ACK: self._segment_in_established,
            TcpState.TIME_WAIT: self._segment_in_time_wait,
        }.get(self.state)
        if handler is not None:
            handler(seg)

    def _handle_rst(self, seg: TcpSegment) -> None:
        # Accept the reset only if it is plausibly in-window.
        if self.state is TcpState.SYN_SENT or seq_le(self.rcv_nxt, seg.seq):
            was_open = self.state not in (TcpState.CLOSED,)
            self._enter_closed(notify=False)
            if was_open and self.on_reset is not None:
                self.on_reset()

    def _segment_in_syn_sent(self, seg: TcpSegment) -> None:
        if not (seg.is_syn and seg.is_ack):
            return
        if seg.ack != seq_add(self.iss, 1):
            return  # bogus SYNACK
        self.irs = seg.seq
        self.rcv_nxt = seq_add(seg.seq, 1)
        self.peer_window = seg.window
        self._ack_unacked_through(seg.ack)
        self.snd_una = seg.ack
        self._cancel_rtx_timer()
        self.state = TcpState.ESTABLISHED
        self._send_ack()
        if self.on_established is not None:
            self.on_established()
        self._try_send()

    def _segment_in_syn_rcvd(self, seg: TcpSegment) -> None:
        if seg.is_syn and not seg.is_ack:
            # Duplicate SYN: the client never saw our SYNACK — resend it.
            self._send_synack(retransmission=True)
            return
        if seg.is_ack and seg.ack == seq_add(self.iss, 1):
            self.snd_una = seg.ack
            self._ack_unacked_through(seg.ack)
            self.peer_window = seg.window
            self._cancel_synack_timer()
            self._cancel_rtx_timer()
            self.state = TcpState.ESTABLISHED
            if self.on_established is not None:
                self.on_established()
            # The handshake ACK may carry data.
            if seg.payload or seg.is_fin:
                self._segment_in_established(seg)
            self._try_send()

    def _segment_in_established(self, seg: TcpSegment) -> None:
        if seg.is_syn:
            # Stale duplicate SYN/SYNACK from the handshake: re-ack it.
            self._send_ack()
            return
        if seg.is_ack:
            self._process_ack(seg)
        if seg.payload or seg.is_fin:
            self._process_receive(seg)

    def _segment_in_time_wait(self, seg: TcpSegment) -> None:
        # Re-ack a retransmitted FIN so the peer can leave LAST_ACK.
        if seg.is_fin:
            self._send_ack()

    # ------------------------------------------------------------------
    # ACK processing (send side)
    # ------------------------------------------------------------------

    def _process_ack(self, seg: TcpSegment) -> None:
        ack = seg.ack
        if seq_gt(ack, self.snd_una) and seq_le(ack, self.snd_nxt):
            self._ack_unacked_through(ack)
            self.snd_una = ack
            self.peer_window = seg.window
            self._dup_acks = 0
            self.congestion.on_new_ack()
            if self._m_cwnd is not None:
                self._m_cwnd.set(self.congestion.cwnd)
            if self._unacked:
                self._arm_rtx_timer(restart=True)
            else:
                self._cancel_rtx_timer()
            self._maybe_finish_close()
            self._try_send()
        elif (
            ack == self.snd_una
            and self._unacked
            and not seg.payload
            and not seg.is_fin
        ):
            self._dup_acks += 1
            self.congestion.on_duplicate_ack(self._dup_acks)
            if self._dup_acks == DUPACK_THRESHOLD:
                self._fast_retransmit()
        # Acks below snd_una are stale duplicates: ignored.

    def _ack_unacked_through(self, ack: int) -> None:
        """Drop fully-acked segments; feed the RTT estimator (Karn's rule)."""
        now = self.sim.now
        kept: List[_SentSegment] = []
        sampled = False
        for entry in self._unacked:
            if seq_le(entry.end_seq, ack):
                if not entry.retransmitted and not sampled:
                    self.estimator.on_measurement(now - entry.sent_at)
                    if self._m_rtt is not None:
                        self._m_rtt.observe(now - entry.sent_at)
                    sampled = True
            else:
                kept.append(entry)
        self._unacked = kept

    def _fast_retransmit(self) -> None:
        if not self._unacked:
            return
        self.fast_retransmits += 1
        if self._m_fast_rtx is not None:
            self._m_fast_rtx.inc()
        self._retransmit_head()
        self.congestion.on_fast_retransmit()
        if self._m_cwnd is not None:
            self._m_cwnd.set(self.congestion.cwnd)
        self._arm_rtx_timer(restart=True)

    # ------------------------------------------------------------------
    # Receive processing
    # ------------------------------------------------------------------

    def _process_receive(self, seg: TcpSegment) -> None:
        if seg.seq == self.rcv_nxt:
            self._accept_in_order(seg)
            self._drain_out_of_order()
        elif seq_gt(seg.seq, self.rcv_nxt):
            if len(self._out_of_order) < MAX_OOO_SEGMENTS:
                self._out_of_order.setdefault(seg.seq, seg)
        else:
            self.duplicate_segments += 1
        # Ack every received segment (in order, out of order, or duplicate).
        self._send_ack()

    def _accept_in_order(self, seg: TcpSegment) -> None:
        if seg.payload:
            self.rcv_nxt = seq_add(self.rcv_nxt, len(seg.payload))
            self.bytes_delivered += len(seg.payload)
            if self.on_data is not None:
                self.on_data(seg.payload)
        if seg.is_fin and not self._remote_fin_seen:
            self._remote_fin_seen = True
            self.rcv_nxt = seq_add(self.rcv_nxt, 1)
            self._on_fin_received()

    def _drain_out_of_order(self) -> None:
        while self.rcv_nxt in self._out_of_order:
            seg = self._out_of_order.pop(self.rcv_nxt)
            self._accept_in_order(seg)

    def _on_fin_received(self) -> None:
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            if self.on_remote_close is not None:
                self.on_remote_close()
        elif self.state is TcpState.FIN_WAIT_1:
            # Our FIN is still unacked: simultaneous close.
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------

    def _window_bytes(self) -> int:
        return min(self.congestion.window_segments() * self.mss, self.peer_window)

    def _try_send(self) -> None:
        if self.state not in (
            TcpState.ESTABLISHED,
            TcpState.CLOSE_WAIT,
            TcpState.FIN_WAIT_1,
            TcpState.CLOSING,
            TcpState.LAST_ACK,
        ):
            return
        sent_any = False
        while len(self._send_buffer) > 0:
            budget = self._window_bytes() - self.in_flight_bytes
            if budget < min(self.mss, len(self._send_buffer)):
                break
            chunk = self._send_buffer.pop(min(self.mss, len(self._send_buffer)))
            self._transmit(self.snd_nxt, chunk, FLAG_ACK | FLAG_PSH, track=True)
            self.snd_nxt = seq_add(self.snd_nxt, len(chunk))
            self.bytes_sent += len(chunk)
            sent_any = True
        if (
            self._fin_queued
            and not self._fin_sent
            and len(self._send_buffer) == 0
        ):
            self._send_fin()
            sent_any = True
        if sent_any:
            self._arm_rtx_timer()

    def _send_fin(self) -> None:
        self._fin_sent = True
        self._transmit(self.snd_nxt, b"", FLAG_FIN | FLAG_ACK, track=True)
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK

    def _maybe_finish_close(self) -> None:
        """State transitions that fire once our FIN is acknowledged."""
        if not self._fin_sent or self._unacked:
            return
        fin_acked = self.snd_una == self.snd_nxt
        if not fin_acked:
            return
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
            if self._remote_fin_seen:
                self._enter_time_wait()
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            self._enter_closed(notify=True)

    def _send_ack(self) -> None:
        self._emit(
            TcpSegment(
                self.local_port,
                self.remote_port,
                self.snd_nxt,
                self.rcv_nxt,
                FLAG_ACK,
                self.rcv_wnd,
            )
        )

    def _send_synack(self, retransmission: bool = False) -> None:
        flags = FLAG_SYN | FLAG_ACK
        if retransmission:
            self.retransmissions += 1
            seg = TcpSegment(
                self.local_port, self.remote_port, self.iss, self.rcv_nxt, flags, self.rcv_wnd
            )
            self._emit(seg)
        else:
            self._transmit(self.snd_nxt, b"", flags, track=True)
            self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._arm_synack_timer()

    def _transmit(self, seq: int, payload: bytes, flags: int, track: bool) -> None:
        ack = self.rcv_nxt if flags & FLAG_ACK else 0
        seg = TcpSegment(
            self.local_port, self.remote_port, seq, ack, flags, self.rcv_wnd, payload
        )
        if track:
            self._unacked.append(_SentSegment(seq, payload, flags, self.sim.now))
        self._emit(seg)

    def _emit(self, seg: TcpSegment) -> None:
        self.segments_sent += 1
        self.layer.send_segment(self, seg)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _arm_rtx_timer(self, restart: bool = False) -> None:
        if self._rtx_timer is not None:
            if not restart:
                return
            self._rtx_timer.cancel()
        self._rtx_timer = self.sim.after(
            self.estimator.rto_ns, self._on_rtx_timeout, f"tcp:{self.local_port}:rtx"
        )

    def _cancel_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_rtx_timeout(self) -> None:
        self._rtx_timer = None
        if not self._unacked:
            return
        self.timeout_retransmits += 1
        if self._m_timeout_rtx is not None:
            self._m_timeout_rtx.inc()
        self.estimator.on_timeout()
        self._retransmit_head()
        self.congestion.on_retransmit()
        if self._m_cwnd is not None:
            self._m_cwnd.set(self.congestion.cwnd)
        self._arm_rtx_timer()

    def _retransmit_head(self) -> None:
        entry = min(self._unacked, key=lambda e: seq_diff(e.seq, self.snd_una))
        entry.retransmitted = True
        self.retransmissions += 1
        ack = self.rcv_nxt if entry.flags & FLAG_ACK else 0
        self._emit(
            TcpSegment(
                self.local_port,
                self.remote_port,
                entry.seq,
                ack,
                entry.flags,
                self.rcv_wnd,
                entry.payload,
            )
        )

    def _arm_synack_timer(self) -> None:
        self._cancel_synack_timer()
        self._synack_timer = self.sim.after(
            DEFAULT_SYNACK_RTO_NS, self._on_synack_timeout, "tcp:synack-rtx"
        )

    def _cancel_synack_timer(self) -> None:
        if self._synack_timer is not None:
            self._synack_timer.cancel()
            self._synack_timer = None

    def _on_synack_timeout(self) -> None:
        self._synack_timer = None
        if self.state is TcpState.SYN_RCVD:
            self._send_synack(retransmission=True)

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._cancel_rtx_timer()
        if self._time_wait_timer is not None:
            self._time_wait_timer.cancel()
        self._time_wait_timer = self.sim.after(
            self.time_wait_ns, lambda: self._enter_closed(notify=True), "tcp:time-wait"
        )

    def _enter_closed(self, notify: bool) -> None:
        already_closed = self.state is TcpState.CLOSED
        self.state = TcpState.CLOSED
        self._cancel_rtx_timer()
        self._cancel_synack_timer()
        if self._time_wait_timer is not None:
            self._time_wait_timer.cancel()
            self._time_wait_timer = None
        self._unacked.clear()
        self._send_buffer.clear()
        self.layer.forget(self)
        if notify and not already_closed and self.on_closed is not None:
            self.on_closed()

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"TcpConnection({self.local_port} <-> {self.remote_ip}:{self.remote_port}, "
            f"{self.state.name}, una={self.snd_una}, nxt={self.snd_nxt}, "
            f"{self.congestion!r})"
        )
