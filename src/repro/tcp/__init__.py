"""A from-scratch TCP implementation.

Covers everything the paper's case studies exercise from the wire: the
three-way handshake with retransmission, Tahoe congestion control (slow
start / congestion avoidance exactly as §6.1 describes it), RTO estimation
with Karn's rule and exponential backoff, fast retransmit, out-of-order
reassembly, and graceful teardown.  :mod:`repro.tcp.variants` holds the
deliberately-buggy congestion modules that the unchanged FSL scripts must
flag.
"""

from .buffers import SendBuffer
from .congestion import (
    CongestionControl,
    DEFAULT_INITIAL_SSTHRESH,
    MIN_SSTHRESH,
    RenoCongestionControl,
)
from .connection import (
    DEFAULT_MSS,
    DUPACK_THRESHOLD,
    TcpConnection,
    TcpState,
)
from .layer import TcpLayer, TcpListener
from .rto import RttEstimator
from .seqmath import seq_add, seq_diff, seq_ge, seq_gt, seq_le, seq_lt
from .variants import (
    VARIANTS,
    AggressiveSlowStart,
    EagerCongestionAvoidance,
    FrozenWindow,
    IgnoresSsthreshReset,
    NoCongestionAvoidance,
)

__all__ = [
    "AggressiveSlowStart",
    "CongestionControl",
    "DEFAULT_INITIAL_SSTHRESH",
    "DEFAULT_MSS",
    "DUPACK_THRESHOLD",
    "EagerCongestionAvoidance",
    "FrozenWindow",
    "IgnoresSsthreshReset",
    "MIN_SSTHRESH",
    "NoCongestionAvoidance",
    "RenoCongestionControl",
    "RttEstimator",
    "SendBuffer",
    "TcpConnection",
    "TcpLayer",
    "TcpListener",
    "TcpState",
    "VARIANTS",
    "seq_add",
    "seq_diff",
    "seq_ge",
    "seq_gt",
    "seq_le",
    "seq_lt",
]
