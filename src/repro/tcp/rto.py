"""Retransmission-timeout estimation (Jacobson/Karels, RFC 6298 style).

The estimator works in integer nanoseconds of virtual time and quantises
the resulting RTO up to the 10 ms jiffy, since the paper's platform (Linux
2.4) arms retransmission timers on the jiffy clock.
"""

from __future__ import annotations

from ..sim import JIFFY_NS, NS_PER_MS, NS_PER_SEC

#: Linux 2.4 bounds: TCP_RTO_MIN = 200 ms, TCP_RTO_MAX = 120 s.
MIN_RTO_NS = 200 * NS_PER_MS
MAX_RTO_NS = 120 * NS_PER_SEC
#: Initial RTO before any sample exists.
INITIAL_RTO_NS = 1 * NS_PER_SEC


def _quantize(rto: int) -> int:
    whole, rem = divmod(rto, JIFFY_NS)
    return (whole + (1 if rem else 0)) * JIFFY_NS


class RttEstimator:
    """SRTT/RTTVAR tracking with exponential backoff on timeouts."""

    def __init__(self, initial_rto_ns: int = INITIAL_RTO_NS) -> None:
        self._srtt = 0
        self._rttvar = 0
        self._has_sample = False
        self._base_rto = initial_rto_ns
        self._backoff = 1
        self.samples = 0
        self.timeouts = 0

    @property
    def srtt_ns(self) -> int:
        return self._srtt

    @property
    def rto_ns(self) -> int:
        """Current retransmission timeout, backed off and jiffy-quantised."""
        rto = self._base_rto * self._backoff
        rto = max(MIN_RTO_NS, min(MAX_RTO_NS, rto))
        return _quantize(rto)

    def on_measurement(self, rtt_ns: int) -> None:
        """Fold in an RTT sample from a segment that was never retransmitted

        (Karn's algorithm: retransmitted segments are never sampled).
        """
        if rtt_ns < 0:
            raise ValueError(f"negative RTT sample: {rtt_ns}")
        self.samples += 1
        if not self._has_sample:
            self._srtt = rtt_ns
            self._rttvar = rtt_ns // 2
            self._has_sample = True
        else:
            err = abs(self._srtt - rtt_ns)
            self._rttvar = (3 * self._rttvar + err) // 4
            self._srtt = (7 * self._srtt + rtt_ns) // 8
        self._base_rto = self._srtt + max(4 * self._rttvar, JIFFY_NS)
        self._backoff = 1  # a fresh sample clears any backoff

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self.timeouts += 1
        if self.rto_ns < MAX_RTO_NS:
            self._backoff *= 2

    def __repr__(self) -> str:
        return (
            f"RttEstimator(srtt={self._srtt / NS_PER_MS:.1f}ms, "
            f"rto={self.rto_ns / NS_PER_MS:.0f}ms, backoff=x{self._backoff})"
        )
