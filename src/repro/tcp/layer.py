"""The host-level TCP layer: demultiplexing, listeners, segment I/O."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import ChecksumError, PacketError, SocketError
from ..net.addresses import IpAddress
from ..net.fastpath import encode_tcp_segment, parse_tcp_segment
from ..net.ip import PROTO_TCP, Ipv4Packet
from ..net.tcp_segment import FLAG_ACK, FLAG_RST, TcpSegment
from ..sim import Simulator
from .congestion import CongestionControl
from .connection import TcpConnection, TcpState

#: Factory the layer calls to build a congestion module per connection.
CongestionFactory = Callable[[], CongestionControl]

_EPHEMERAL_BASE = 32768
_ConnKey = Tuple[int, str, int]


class TcpListener:
    """A passive socket accepting connections on a port."""

    def __init__(
        self,
        layer: "TcpLayer",
        port: int,
        on_accept: Optional[Callable[[TcpConnection], None]] = None,
        congestion_factory: Optional[CongestionFactory] = None,
    ) -> None:
        self.layer = layer
        self.port = port
        self.on_accept = on_accept
        self.congestion_factory = congestion_factory
        self.accepted = 0
        self.closed = False

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.layer._listeners.pop(self.port, None)

    def _incoming_syn(self, packet: Ipv4Packet, seg: TcpSegment) -> TcpConnection:
        factory = self.congestion_factory or self.layer.congestion_factory
        conn = self.layer._create_connection(
            local_port=self.port,
            remote_ip=packet.src,
            remote_port=seg.src_port,
            congestion=factory(),
        )
        conn.open_passive(seg)
        self.accepted += 1
        if self.on_accept is not None:
            self.on_accept(conn)
        return conn


class TcpLayer:
    """Registers with the IP layer and owns all TCP state on a host."""

    def __init__(self, sim: Simulator, host, costs) -> None:
        self.sim = sim
        self.host = host
        self.costs = costs
        self.congestion_factory: CongestionFactory = CongestionControl
        self._connections: Dict[_ConnKey, TcpConnection] = {}
        self._listeners: Dict[int, TcpListener] = {}
        self._next_ephemeral = _EPHEMERAL_BASE
        self._iss_stream = sim.random.stream(f"tcp:iss:{host.name}")
        self._fast = host.ip_layer._fast
        self.checksum_drops = 0
        self.resets_sent = 0
        self.orphan_segments = 0
        host.ip_layer.register_protocol(PROTO_TCP, self._receive)

    # -- public API --------------------------------------------------------

    def connect(
        self,
        remote_ip: Union[str, IpAddress],
        remote_port: int,
        local_port: int = 0,
        congestion: Optional[CongestionControl] = None,
        on_established: Optional[Callable[[], None]] = None,
    ) -> TcpConnection:
        """Open an active connection; returns immediately with the

        connection object while the handshake proceeds in virtual time.
        """
        remote_ip = IpAddress(remote_ip)
        if local_port == 0:
            local_port = self._pick_ephemeral(remote_ip, remote_port)
        conn = self._create_connection(
            local_port=local_port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            congestion=congestion or self.congestion_factory(),
        )
        if on_established is not None:
            conn.on_established = on_established
        conn.open_active()
        return conn

    def listen(
        self,
        port: int,
        on_accept: Optional[Callable[[TcpConnection], None]] = None,
        congestion_factory: Optional[CongestionFactory] = None,
    ) -> TcpListener:
        """Start accepting connections on *port*."""
        if port in self._listeners:
            raise SocketError(f"TCP port {port} is already listening")
        listener = TcpListener(self, port, on_accept, congestion_factory)
        self._listeners[port] = listener
        return listener

    def connections(self):
        """Snapshot of live connections (order is deterministic)."""
        return list(self._connections.values())

    # -- plumbing used by TcpConnection -------------------------------------

    def send_segment(self, conn: TcpConnection, seg: TcpSegment) -> None:
        """Serialise and hand a segment to IP, charging the TCP CPU cost."""
        if self._fast:
            wire = encode_tcp_segment(seg, self.host.ip_layer.local_ip, conn.remote_ip)
        else:
            wire = seg.to_bytes(self.host.ip_layer.local_ip, conn.remote_ip)

        def down() -> None:
            self.host.ip_layer.send(conn.remote_ip, PROTO_TCP, wire)

        if self.costs.tcp_ns > 0:
            self.sim.after(self.costs.tcp_ns, down, "tcp:tx", pooled=True)
        else:
            down()

    def forget(self, conn: TcpConnection) -> None:
        """Remove a closed connection from the demux table."""
        self._connections.pop(self._key(conn.local_port, conn.remote_ip, conn.remote_port), None)

    def crash(self) -> None:
        """Host crash: destroy every connection and listener in place.

        No FINs, no RSTs, no callbacks — the memory holding this state is
        simply gone.  Peers discover the death organically: their
        retransmissions go unanswered, and anything sent after a reboot
        hits the fresh layer's orphan-segment RST path.
        """
        for conn in list(self._connections.values()):
            conn.destroy()
        self._connections.clear()
        self._listeners.clear()

    # -- internals ------------------------------------------------------------

    def _create_connection(
        self,
        local_port: int,
        remote_ip: IpAddress,
        remote_port: int,
        congestion: CongestionControl,
    ) -> TcpConnection:
        key = self._key(local_port, remote_ip, remote_port)
        if key in self._connections:
            raise SocketError(f"connection {key} already exists")
        conn = TcpConnection(
            layer=self,
            local_port=local_port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            congestion=congestion,
            iss=self._iss_stream.randint(0, (1 << 31) - 1),
        )
        self._connections[key] = conn
        return conn

    def _pick_ephemeral(self, remote_ip: IpAddress, remote_port: int) -> int:
        for _ in range(0xFFFF - _EPHEMERAL_BASE):
            candidate = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 0xFFFF:
                self._next_ephemeral = _EPHEMERAL_BASE
            if self._key(candidate, remote_ip, remote_port) not in self._connections:
                return candidate
        raise SocketError("ephemeral TCP port space exhausted")

    @staticmethod
    def _key(local_port: int, remote_ip: IpAddress, remote_port: int) -> _ConnKey:
        return (local_port, str(remote_ip), remote_port)

    def _receive(self, packet: Ipv4Packet) -> None:
        try:
            if self._fast:
                seg = parse_tcp_segment(packet.payload, packet.src, packet.dst)
            else:
                seg = TcpSegment.from_bytes(
                    packet.payload, packet.src, packet.dst, verify=True
                )
        except (ChecksumError, PacketError):
            self.checksum_drops += 1
            return

        def up() -> None:
            self._dispatch(packet, seg)

        if self.costs.tcp_ns > 0:
            self.sim.after(self.costs.tcp_ns, up, "tcp:rx", pooled=True)
        else:
            up()

    def _dispatch(self, packet: Ipv4Packet, seg: TcpSegment) -> None:
        conn = self._connections.get(self._key(seg.dst_port, packet.src, seg.src_port))
        if conn is not None and conn.state is not TcpState.CLOSED:
            conn.handle_segment(seg)
            return
        listener = self._listeners.get(seg.dst_port)
        if listener is not None and seg.is_syn and not seg.is_ack:
            listener._incoming_syn(packet, seg)
            return
        self.orphan_segments += 1
        if not seg.is_rst:
            self._send_reset(packet, seg)

    def _send_reset(self, packet: Ipv4Packet, seg: TcpSegment) -> None:
        self.resets_sent += 1
        rst_seq = seg.ack if seg.is_ack else 0
        rst = TcpSegment(
            seg.dst_port,
            seg.src_port,
            rst_seq,
            (seg.seq + seg.seq_space) & 0xFFFFFFFF,
            FLAG_RST | FLAG_ACK,
            0,
        )
        if self._fast:
            wire = encode_tcp_segment(rst, self.host.ip_layer.local_ip, packet.src)
        else:
            wire = rst.to_bytes(self.host.ip_layer.local_ip, packet.src)
        self.host.ip_layer.send(packet.src, PROTO_TCP, wire)
