"""Deliberately-buggy congestion-control variants.

The paper's headline claim is that one unchanged FSL script can regression-
test multiple versions of a protocol implementation (§1, §8).  These
variants are the "broken versions": each perturbs exactly one rule of the
correct algorithm, and the Fig 5 analysis script — written once, against
the *specification* — must flag every variant whose bug makes the sender
overshoot its window model, without any knowledge of this code.
"""

from __future__ import annotations

from .congestion import CongestionControl, RenoCongestionControl


class NoCongestionAvoidance(CongestionControl):
    """Never leaves slow start: cwnd grows by 1 on every ACK forever.

    This is the failure mode the Fig 5 scenario exists to catch — an
    implementation that does not "detect the crossing of the ssthresh
    value and trigger the congestion avoidance".
    """

    name = "bug-no-congestion-avoidance"

    def on_new_ack(self) -> None:
        self.acks_seen += 1
        self.cwnd += 1


class IgnoresSsthreshReset(CongestionControl):
    """Forgets to lower ssthresh after a retransmission.

    cwnd still resets to 1, but with ssthresh stuck at its initial 64
    segments the sender slow-starts far past the point where the correct
    algorithm would have gone linear.
    """

    name = "bug-ignores-ssthresh-reset"

    def on_retransmit(self) -> None:
        self.retransmit_events += 1
        self.cwnd = 1
        self._ca_acks = 0  # ssthresh untouched: the bug


class AggressiveSlowStart(CongestionControl):
    """Grows cwnd by 2 segments per ACK during slow start."""

    name = "bug-aggressive-slow-start"

    def on_new_ack(self) -> None:
        self.acks_seen += 1
        if self.in_slow_start:
            self.cwnd += 2
            self._ca_acks = 0
        else:
            self._ca_acks += 1
            if self._ca_acks > self.cwnd:
                self.cwnd += 1
                self._ca_acks = 0


class EagerCongestionAvoidance(CongestionControl):
    """Congestion avoidance grows cwnd after every other ACK instead of

    after ``cwnd + 1`` ACKs — a plausible arithmetic slip (using a constant
    where the window should appear).
    """

    name = "bug-eager-congestion-avoidance"

    def on_new_ack(self) -> None:
        self.acks_seen += 1
        if self.in_slow_start:
            self.cwnd += 1
            self._ca_acks = 0
        else:
            self._ca_acks += 1
            if self._ca_acks >= 2:
                self.cwnd += 1
                self._ca_acks = 0


class FrozenWindow(CongestionControl):
    """cwnd never grows at all.

    Overly *conservative* rather than aggressive: it never violates the
    window invariant, so the Fig 5 script must NOT flag it — the tests use
    it to demonstrate that the FAE checks what the script says and nothing
    more (no false positives), while a throughput-oriented analysis script
    can still catch it.
    """

    name = "bug-frozen-window"

    def on_new_ack(self) -> None:
        self.acks_seen += 1


#: Registry used by example/regression drivers: name -> factory.
VARIANTS = {
    variant.name: variant
    for variant in (
        CongestionControl,
        RenoCongestionControl,
        NoCongestionAvoidance,
        IgnoresSsthreshReset,
        AggressiveSlowStart,
        EagerCongestionAvoidance,
        FrozenWindow,
    )
}
