"""Modulo-2^32 sequence-number arithmetic (RFC 793 style)."""

from __future__ import annotations

MOD = 1 << 32
_HALF = 1 << 31


def seq_add(seq: int, delta: int) -> int:
    """Advance *seq* by *delta*, wrapping modulo 2^32."""
    return (seq + delta) % MOD


def seq_diff(a: int, b: int) -> int:
    """Signed distance from *b* to *a* (positive when a is 'after' b)."""
    delta = (a - b) % MOD
    return delta - MOD if delta >= _HALF else delta


def seq_lt(a: int, b: int) -> bool:
    """True when *a* precedes *b* in sequence space."""
    return seq_diff(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_diff(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_diff(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    return seq_diff(a, b) >= 0


def seq_between(low: int, value: int, high: int) -> bool:
    """True when ``low < value <= high`` in wrapped sequence space."""
    return seq_lt(low, value) and seq_le(value, high)
