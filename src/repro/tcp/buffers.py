"""Send-side byte buffering for TCP.

A queue of byte chunks with an offset into the head chunk, so appending and
popping both run in amortised O(chunk) regardless of how much data the
application has queued (a plain bytearray would cost O(n^2) over a long
bulk transfer).
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class SendBuffer:
    """FIFO byte stream with efficient front removal."""

    def __init__(self) -> None:
        self._chunks: Deque[bytes] = deque()
        self._head_offset = 0
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def append(self, data: bytes) -> None:
        """Queue *data* for transmission."""
        if data:
            self._chunks.append(bytes(data))
            self._length += len(data)

    def pop(self, nbytes: int) -> bytes:
        """Remove and return up to *nbytes* from the front."""
        if nbytes <= 0 or self._length == 0:
            return b""
        parts = []
        need = min(nbytes, self._length)
        while need > 0:
            head = self._chunks[0]
            available = len(head) - self._head_offset
            take = min(available, need)
            parts.append(head[self._head_offset : self._head_offset + take])
            need -= take
            self._length -= take
            self._head_offset += take
            if self._head_offset == len(head):
                self._chunks.popleft()
                self._head_offset = 0
        return b"".join(parts)

    def clear(self) -> None:
        self._chunks.clear()
        self._head_offset = 0
        self._length = 0
