"""Congestion control: slow start and congestion avoidance.

This implements exactly the algorithm the paper describes in §6.1 (after
RFC 2001/ W. Stevens):

* the window is counted in segments;
* ``cwnd`` starts at 1, 2 or 4 segments; ``ssthresh`` starts at 64 KB
  (64 segments at the default 1 KB MSS);
* **slow start** while ``cwnd <= ssthresh``: each ACK of new data grows
  ``cwnd`` by one segment;
* **congestion avoidance** once ``cwnd > ssthresh``: an internal ack
  counter grows and ``cwnd`` increases by one segment after ``cwnd + 1``
  ACKs — the exact counting scheme the paper's Fig 5 analysis script
  models with its CCNT counter (``CCNT > CWND``);
* on **any retransmission** (timeout or fast retransmit), ``ssthresh``
  drops to half of ``cwnd`` but never below 2 segments, and ``cwnd``
  resets to 1 (Tahoe behaviour, as described in the paper).

The class is deliberately small and stateless beyond three integers so the
deliberately-buggy variants in :mod:`repro.tcp.variants` can subclass it and
perturb one rule at a time.
"""

from __future__ import annotations

#: Default initial slow-start threshold, in segments: 64 KB at 1 KB MSS.
DEFAULT_INITIAL_SSTHRESH = 64
#: Lower bound on ssthresh after a retransmission, in segments ("not less
#: than 2 MSS", paper §6.1).
MIN_SSTHRESH = 2


class CongestionControl:
    """Tahoe-style slow start + congestion avoidance, counted in segments."""

    name = "tahoe"

    def __init__(
        self,
        initial_cwnd: int = 1,
        initial_ssthresh: int = DEFAULT_INITIAL_SSTHRESH,
    ) -> None:
        if initial_cwnd not in (1, 2, 4):
            raise ValueError(
                f"initial cwnd must be 1, 2 or 4 segments, got {initial_cwnd}"
            )
        self.initial_cwnd = initial_cwnd
        self.cwnd = initial_cwnd
        self.ssthresh = initial_ssthresh
        self._ca_acks = 0
        # Observability for tests and ablations.
        self.retransmit_events = 0
        self.acks_seen = 0

    # -- queries --------------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd <= self.ssthresh

    def window_segments(self) -> int:
        """Segments the congestion window currently allows in flight."""
        return self.cwnd

    # -- events ---------------------------------------------------------------

    def on_new_ack(self) -> None:
        """An ACK advancing ``snd_una`` arrived."""
        self.acks_seen += 1
        if self.in_slow_start:
            self.cwnd += 1
            self._ca_acks = 0
        else:
            self._ca_acks += 1
            if self._ca_acks > self.cwnd:
                self.cwnd += 1
                self._ca_acks = 0

    def on_retransmit(self) -> None:
        """A segment was retransmitted (timeout or fast retransmit)."""
        self.retransmit_events += 1
        self.ssthresh = max(self.cwnd // 2, MIN_SSTHRESH)
        self.cwnd = 1
        self._ca_acks = 0

    def on_fast_retransmit(self) -> None:
        """A fast retransmit fired.  Tahoe treats it like a timeout;

        Reno-style variants override this with fast recovery.
        """
        self.on_retransmit()

    def on_duplicate_ack(self, count: int) -> None:
        """A duplicate ACK arrived (*count* consecutive so far).  No-op for

        Tahoe; hooks exist so variants can misbehave here.
        """

    def __repr__(self) -> str:
        phase = "slow-start" if self.in_slow_start else "cong-avoid"
        return (
            f"{type(self).__name__}(cwnd={self.cwnd}, "
            f"ssthresh={self.ssthresh}, {phase})"
        )


class RenoCongestionControl(CongestionControl):
    """Reno-style fast recovery: a conforming *alternative* version.

    On a fast retransmit the window halves to ssthresh instead of
    collapsing to one segment (window inflation during recovery is not
    modelled — the bulk senders here refill instantly, so the difference
    is unobservable).  Timeouts still reset to 1 segment, as in every
    Reno.  Both Tahoe and Reno satisfy the paper's Fig 5 scenario, which
    exercises the loss-free slow-start/congestion-avoidance switch — a
    second demonstration that one script spans conforming versions.
    """

    name = "reno"

    def on_fast_retransmit(self) -> None:
        self.retransmit_events += 1
        self.ssthresh = max(self.cwnd // 2, MIN_SSTHRESH)
        self.cwnd = self.ssthresh
        self._ca_acks = 0
