"""Incremental result cache: content-addressed campaign rows.

Re-running a 10k-cell grid after editing one scenario should re-execute
one cell, not 10k.  :class:`ResultCache` stores each completed ``OK`` row
under its cell's :func:`~repro.sweep.spec.task_fingerprint` — SHA-256 of
``(program content hash, task fn name, canonical knobs, seed, cell
identity)`` — so a warm re-run serves every clean cell from disk and
executes exactly the dirty ones.  Cached rows re-enter the deterministic
task-order merge untouched: a warm outcome's ``canonical_bytes()`` is
byte-identical to a cold full run (asserted in
``tests/sweep/test_cache.py``).

Policy:

* only ``OK`` rows are cached.  ``FAILED`` rows may be environmental
  (dead worker, resource exhaustion) and ``TIMEOUT`` rows are a property
  of the machine's wall clock — both must re-execute on the next run;
* entries are CRC-checked journal-style records written atomically
  (temp file + ``os.replace``), so a crash mid-write can never serve a
  torn row; a corrupt entry is treated as a miss and deleted;
* the store is content-addressed and append-only by nature — no
  invalidation protocol.  Editing a script changes its program content
  hash, which changes the fingerprint, which is simply a different key.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from .journal import JournalError, decode_record, encode_record
from .spec import SweepResult, SweepTask, task_fingerprint


class ResultCache:
    """A directory of content-addressed campaign rows."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry_path(self, key: str) -> str:
        # Two-level fan-out keeps directories small at 10k-cell scale.
        return os.path.join(self.root, key[:2], key + ".json")

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(
        self, task: SweepTask, fingerprint: Optional[str] = None
    ) -> Optional[SweepResult]:
        """The cached row for *task*, or ``None``.

        A hit is returned with ``cached=True`` and the task's own
        ``index``/``name``/``seed`` (they are part of the key, so they
        always match — this is a belt-and-braces normalisation).
        """
        key = fingerprint if fingerprint is not None else task_fingerprint(task)
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = decode_record(handle.read().strip())
            row = SweepResult.from_record(record)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (JournalError, OSError):
            # Torn or corrupt entry: drop it and re-execute the cell.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        row.index, row.name, row.seed = task.index, task.name, task.seed
        row.cached = True
        return row

    def put(
        self,
        task: SweepTask,
        row: SweepResult,
        fingerprint: Optional[str] = None,
    ) -> bool:
        """Store *row* under *task*'s fingerprint; returns whether it was
        cached (only ``OK`` rows are)."""
        if row.status != SweepResult.OK:
            return False
        key = fingerprint if fingerprint is not None else task_fingerprint(task)
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = row.to_record()
        record["cached"] = False  # a replayed hit sets its own flag
        descriptor, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(encode_record(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        self.stores += 1
        return True


__all__ = ["ResultCache"]
