"""Campaign execution backends: serial reference and process pool.

``backend="serial"`` runs every task in the calling process, in task
order — the reference implementation the differential test compares
against.  ``backend="parallel"`` fans tasks out over a
:class:`concurrent.futures.ProcessPoolExecutor`; because each task is an
independent seeded simulation, the merged rows are byte-identical to the
serial backend's (asserted in ``tests/sweep/test_runner.py``).

Crash policy: a Python exception inside a task is caught **in the worker**
and becomes a deterministic ``FAILED`` row (same row either backend).  A
worker process that *dies* (hard crash, ``os._exit``) breaks the pool;
every task still in flight is retried — once, each in its own fresh
single-worker pool so one poisoned task cannot re-kill its neighbours —
and a task that dies again is recorded as ``FAILED`` with the crash note
instead of sinking the campaign.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional

from .spec import (
    SweepError,
    SweepOutcome,
    SweepResult,
    SweepTask,
    coerce_jsonable,
    spec_meta,
    tasks_of,
)

#: Bounded retry budget for pool-breaking worker deaths.
DEFAULT_RETRIES = 1


def default_workers() -> int:
    """Worker-count default: every core up to 4 (campaigns are CPU-bound)."""
    return max(1, min(4, os.cpu_count() or 1))


def _pool_context():
    """Prefer ``fork`` (cheap, inherits compiled programs' modules); fall
    back to the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def execute_task(task: SweepTask) -> SweepResult:
    """Run one task to a result row.  Never raises: exceptions become
    deterministic ``FAILED`` rows (identical under either backend)."""
    started = time.perf_counter()
    try:
        payload = task.fn(task)
        if payload is None:
            payload = {}
        payload = coerce_jsonable(dict(payload))
        status, error, detail = SweepResult.OK, "", ""
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        payload = {}
        status = SweepResult.FAILED
        error = f"{type(exc).__name__}: {exc}"
        detail = traceback.format_exc()
    return SweepResult(
        index=task.index,
        name=task.name,
        seed=task.seed,
        status=status,
        payload=payload,
        error=error,
        error_detail=detail,
        wall_seconds=time.perf_counter() - started,
    )


def _crash_row(task: SweepTask, exc: BaseException, attempts: int) -> SweepResult:
    return SweepResult(
        index=task.index,
        name=task.name,
        seed=task.seed,
        status=SweepResult.FAILED,
        error=f"worker died: {type(exc).__name__}",
        error_detail=(
            f"worker process executing task {task.index} ({task.name!r}) "
            f"died after {attempts} attempt(s): {exc!r}"
        ),
        attempts=attempts,
    )


def _is_failure(row: SweepResult) -> bool:
    """The fail-fast trigger: a crashed task or a failed scenario verdict."""
    return not row.ok or row.payload.get("passed") is False


def _run_serial(
    tasks: List[SweepTask], workers: int, retries: int, fail_fast: bool
) -> List[SweepResult]:
    rows: List[SweepResult] = []
    for task in tasks:
        row = execute_task(task)
        rows.append(row)
        if fail_fast and _is_failure(row):
            break  # stop enumerating: later tasks are never started
    return rows


def _run_parallel(
    tasks: List[SweepTask], workers: int, retries: int, fail_fast: bool
) -> List[SweepResult]:
    rows: Dict[int, SweepResult] = {}
    casualties: List[tuple] = []  # (task, exc) pairs from a broken pool
    aborting = False
    ctx = _pool_context()
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        futures = {pool.submit(execute_task, task): task for task in tasks}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task = futures[future]
                if future.cancelled():
                    continue  # fail-fast revoked it before it started
                try:
                    row = future.result()
                except BaseException as exc:  # worker death broke the pool
                    casualties.append((task, exc))
                    continue
                rows[task.index] = row
                if fail_fast and _is_failure(row):
                    aborting = True
            if aborting and pending:
                # Cancel everything not yet started; tasks already running
                # finish and keep their rows (a row, once begun, is never
                # half-reported).
                for future in pending:
                    future.cancel()
    # Bounded retry, one task per fresh single-worker pool: the genuine
    # crasher dies alone; innocent casualties of the shared pool complete.
    # An aborting campaign skips the retries — it is already being torn
    # down — and records the crash rows as-is.
    for task, first_exc in sorted(casualties, key=lambda pair: pair[0].index):
        attempts = 1
        row: Optional[SweepResult] = None
        while not aborting and attempts <= retries:
            attempts += 1
            try:
                with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as solo:
                    row = solo.submit(execute_task, task).result()
                break
            except BaseException as exc:  # noqa: BLE001
                first_exc = exc
        if row is None:
            row = _crash_row(task, first_exc, attempts)
        else:
            row.attempts = attempts
        rows[task.index] = row
    return [rows[task.index] for task in tasks if task.index in rows]


BACKENDS = {
    "serial": _run_serial,
    "parallel": _run_parallel,
}


def run_sweep(
    spec_or_tasks: Any,
    backend: str = "parallel",
    workers: Optional[int] = None,
    retries: int = DEFAULT_RETRIES,
    fail_fast: bool = False,
) -> SweepOutcome:
    """Execute a campaign and merge its rows deterministically.

    *spec_or_tasks* is a :class:`SweepSpec` (compiled to tasks here, in the
    parent) or a prepared task list.  Rows always come back in task order;
    with healthy tasks the merged outcome's :meth:`canonical_bytes` is
    identical across backends, worker counts and completion orders.

    *fail_fast* stops the campaign at the first failed row: the serial
    backend stops enumerating, the pool backend cancels every task not yet
    started (in-flight tasks finish and keep their rows).  A fail-fast
    outcome with ``aborted=True`` covers only a subset of the grid, so the
    cross-backend byte-identity guarantee applies to full runs only.
    """
    try:
        run = BACKENDS[backend]
    except KeyError:
        raise SweepError(
            f"unknown sweep backend {backend!r} (expected one of {sorted(BACKENDS)})"
        ) from None
    tasks = tasks_of(spec_or_tasks)
    if backend == "serial":
        effective_workers = 1
    else:
        effective_workers = default_workers() if workers is None else workers
    if effective_workers < 1:
        raise SweepError(f"workers must be >= 1, got {effective_workers}")
    meta = spec_meta(spec_or_tasks)
    started = time.perf_counter()
    rows = run(tasks, effective_workers, retries, fail_fast)
    return SweepOutcome(
        spec_name=meta["name"],
        base_seed=meta["base_seed"],
        backend=backend,
        workers=effective_workers,
        rows=rows,
        wall_seconds=time.perf_counter() - started,
        aborted=fail_fast and len(rows) < len(tasks),
    )
