"""Campaign execution backends: a pluggable executor registry.

Backends are :class:`SweepExecutor` implementations looked up by name in
a registry (:func:`register_backend` / :func:`resolve_backend`), so new
execution tiers plug in without touching :func:`run_sweep`:

* ``backend="serial"`` runs every task in the calling process, in task
  order — the reference implementation the differential tests compare
  against;
* ``backend="parallel"`` fans tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* ``backend="tcp"`` (:mod:`repro.sweep.remote`, registered lazily by
  entry-point string) dispatches tasks to a fleet of ``repro worker``
  processes over a length-prefixed, CRC-framed TCP job protocol.

Because each task is an independent seeded simulation and rows always
merge in task order, the merged rows are byte-identical across every
backend (asserted in ``tests/sweep/test_runner.py`` and
``tests/sweep/test_remote.py``).

Crash policy: a Python exception inside a task is caught **in the worker**
and becomes a deterministic ``FAILED`` row (same row either backend).  A
worker process that *dies* (hard crash, ``os._exit``) breaks the pool;
every task still in flight is retried — once, each in its own fresh
single-worker pool so one poisoned task cannot re-kill its neighbours —
and a task that dies again is recorded as ``FAILED`` with the crash note
instead of sinking the campaign.

Durability (docs/SWEEP.md, "Durable campaigns"): ``run_sweep`` can journal
every row to an append-only CRC-checked file as it lands
(:mod:`repro.sweep.journal`), resume an interrupted campaign from that
journal, and serve clean cells from a content-addressed result cache
(:mod:`repro.sweep.cache`).  A per-task wall-clock watchdog turns hung
tasks into deterministic ``TIMEOUT`` rows after bounded retry-with-backoff
instead of stalling the campaign, and SIGINT aborts gracefully: the
journal is already flushed per-row, and the outcome truthfully reports
``aborted``/``interrupted`` covering exactly the journaled rows.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .spec import (
    SweepError,
    SweepOutcome,
    SweepResult,
    SweepTask,
    coerce_jsonable,
    spec_meta,
    task_fingerprint,
    tasks_of,
)

#: Bounded retry budget for pool-breaking worker deaths.
DEFAULT_RETRIES = 1

#: Bounded retry budget for watchdog deadline hits.
DEFAULT_TIMEOUT_RETRIES = 1

#: Base of the exponential backoff between watchdog retries, in seconds.
DEFAULT_TIMEOUT_BACKOFF = 0.05

#: Environment knob for the pool size; an explicit ``workers=`` argument
#: always wins (precedence: argument > env > core-count default).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment knob for the backend; an explicit ``backend=`` argument
#: always wins (precedence: argument > env > ``"parallel"``).
BACKEND_ENV = "REPRO_SWEEP_BACKEND"


def default_workers() -> int:
    """Worker-count default: ``REPRO_SWEEP_WORKERS`` when set, else every
    core up to 4 (campaigns are CPU-bound)."""
    env = os.environ.get(WORKERS_ENV)
    if env is not None and env != "":
        try:
            value = int(env)
        except ValueError:
            raise SweepError(
                f"{WORKERS_ENV} must be an integer >= 1, got {env!r}"
            ) from None
        if value < 1:
            raise SweepError(f"{WORKERS_ENV} must be an integer >= 1, got {env!r}")
        return value
    return max(1, min(4, os.cpu_count() or 1))


def default_backend() -> str:
    """Backend default: ``REPRO_SWEEP_BACKEND`` when set (validated
    against the registry — a typo'd env value is a :class:`SweepError`,
    not a silent fallback), else ``"parallel"``."""
    env = os.environ.get(BACKEND_ENV)
    if env is not None and env != "":
        if env not in _BACKENDS:
            raise SweepError(
                f"{BACKEND_ENV} names unknown sweep backend {env!r} "
                f"(registered backends: {backend_names()})"
            )
        return env
    return "parallel"


def _pool_context():
    """Prefer ``fork`` (cheap, inherits compiled programs' modules); fall
    back to the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def _worker_init() -> None:
    """Pool-worker initializer: the *parent* owns SIGINT.  A terminal
    Ctrl-C is delivered to the whole process group; workers must not race
    the parent's graceful abort with their own KeyboardInterrupt (which
    would turn deterministic rows into nondeterministic FAILED rows)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass


# ---------------------------------------------------------------------------
# Task watchdog
# ---------------------------------------------------------------------------


class TaskDeadlineExceeded(BaseException):
    """Raised inside a task when its wall-clock deadline expires.

    Deliberately a :class:`BaseException`: a task function's blanket
    ``except Exception`` must not be able to swallow the watchdog.
    """


@dataclass(frozen=True)
class Watchdog:
    """Per-task wall-clock policy: deadline + bounded retry-with-backoff.

    Armed *inside* the executing process (SIGALRM interval timer), so it
    works identically on the serial backend and in pool workers, and a
    hung worker frees itself instead of needing to be shot from outside.
    On platforms without ``SIGALRM`` the watchdog degrades to a no-op.
    """

    timeout: float
    retries: int = DEFAULT_TIMEOUT_RETRIES
    backoff: float = DEFAULT_TIMEOUT_BACKOFF


@contextmanager
def _deadline(seconds: Optional[float]):
    """Arm a one-shot wall-clock deadline around the body; raises
    :class:`TaskDeadlineExceeded` in the running frame on expiry."""
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield False
        return

    def _expire(signum, frame):  # noqa: ANN001 — signal handler signature
        raise TaskDeadlineExceeded()

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def timeout_error(watchdog: Watchdog) -> str:
    """The deterministic ``error`` string of a TIMEOUT row."""
    return f"task exceeded {watchdog.timeout:g}s wall-clock deadline"


def execute_task(
    task: SweepTask, watchdog: Optional[Watchdog] = None
) -> SweepResult:
    """Run one task to a result row.  Never raises (except for
    :class:`KeyboardInterrupt`, which must reach the backend's graceful
    abort): exceptions become deterministic ``FAILED`` rows and watchdog
    expiries — after bounded retry-with-backoff — deterministic
    ``TIMEOUT`` rows, identical under either backend."""
    started = time.perf_counter()
    attempts = 0
    while True:
        attempts += 1
        try:
            with _deadline(watchdog.timeout if watchdog else None):
                payload = task.fn(task)
            if payload is None:
                payload = {}
            payload = coerce_jsonable(dict(payload))
            status, error, detail = SweepResult.OK, "", ""
            break
        except TaskDeadlineExceeded:
            if watchdog and attempts <= watchdog.retries:
                time.sleep(watchdog.backoff * (2 ** (attempts - 1)))
                continue
            payload = {}
            status = SweepResult.TIMEOUT
            error = timeout_error(watchdog)
            detail = (
                f"task {task.index} ({task.name!r}) hit its "
                f"{watchdog.timeout:g}s deadline on all {attempts} "
                f"attempt(s) (retry backoff base {watchdog.backoff:g}s)"
            )
            break
        except Exception as exc:  # noqa: BLE001 — isolation is the contract
            payload = {}
            status = SweepResult.FAILED
            error = f"{type(exc).__name__}: {exc}"
            detail = traceback.format_exc()
            break
    return SweepResult(
        index=task.index,
        name=task.name,
        seed=task.seed,
        status=status,
        payload=payload,
        error=error,
        error_detail=detail,
        attempts=attempts,
        wall_seconds=time.perf_counter() - started,
    )


def _crash_row(
    task: SweepTask, exc: BaseException, attempts: int, wall_seconds: float
) -> SweepResult:
    return SweepResult(
        index=task.index,
        name=task.name,
        seed=task.seed,
        status=SweepResult.FAILED,
        error=f"worker died: {type(exc).__name__}",
        error_detail=(
            f"worker process executing task {task.index} ({task.name!r}) "
            f"died after {attempts} attempt(s): {exc!r}"
        ),
        attempts=attempts,
        # Measured from submission to the last failed attempt: an upper
        # bound on the work lost, never a silent 0.0.
        wall_seconds=wall_seconds,
    )


def _is_failure(row: SweepResult) -> bool:
    """The fail-fast trigger: a crashed/timed-out task or a failed
    scenario verdict."""
    return not row.ok or row.payload.get("passed") is False


#: Backends call this as each row lands (journal/cache hook).
RowSink = Callable[[SweepResult], None]

#: What a backend reports: merged rows, abort decision, interrupt flag.
BackendRun = Tuple[Dict[int, SweepResult], bool, bool]


@dataclass
class ExecutorContext:
    """Everything :func:`run_sweep` hands an executor for one campaign.

    ``workers`` is the executor's own :meth:`SweepExecutor.initial_workers`
    answer; fleet-sized executors (tcp) may overwrite
    ``effective_workers`` once the fleet's true slot count is known, and
    the outcome reports that number.  ``hosts`` is the raw host list for
    remote executors (``None`` for local ones); ``meta`` is the campaign's
    ``(name, base_seed)`` so remote workers can label what they serve.
    """

    workers: int
    retries: int
    fail_fast: bool
    watchdog: Optional[Watchdog]
    on_row: RowSink
    hosts: Optional[Any] = None
    meta: Optional[Dict[str, Any]] = None
    effective_workers: Optional[int] = None
    #: pre-shared fleet secret for remote executors (str/bytes or None;
    #: ``None`` falls through to ``REPRO_SWEEP_SECRET``).
    secret: Optional[Any] = None
    #: backchannel: remote executors report per-worker health and
    #: self-healing counters here; the outcome surfaces it as ``fleet``.
    fleet_stats: Optional[Dict[str, Any]] = None


class SweepExecutor:
    """One campaign execution strategy, pluggable by name.

    Implementations override :meth:`run` — take the pending tasks, call
    ``ctx.on_row`` as each row lands, and return
    ``(rows_by_index, aborted, interrupted)``.  The contract every
    backend must keep (asserted differentially): healthy tasks produce
    rows byte-identical to the serial reference's, ``KeyboardInterrupt``
    is absorbed into a truthful ``aborted=interrupted=True`` return (never
    propagated — the journal's end record must still be written), and a
    row, once begun, is either completed or discarded — never
    half-reported.
    """

    #: registry name, set by :func:`register_backend`.
    name = "?"

    def initial_workers(self, workers: Optional[int]) -> int:
        """Validate/resolve the requested worker count before the run."""
        value = default_workers() if workers is None else workers
        if value < 1:
            raise SweepError(f"workers must be >= 1, got {value}")
        return value

    def run(self, tasks: List[SweepTask], ctx: ExecutorContext) -> BackendRun:
        raise NotImplementedError


class SerialExecutor(SweepExecutor):
    """The reference backend: every task in the calling process, in task
    order."""

    def initial_workers(self, workers: Optional[int]) -> int:
        return 1  # the calling process is the only worker

    def run(self, tasks: List[SweepTask], ctx: ExecutorContext) -> BackendRun:
        rows: Dict[int, SweepResult] = {}
        aborted = interrupted = False
        try:
            for task in tasks:
                row = execute_task(task, ctx.watchdog)
                rows[task.index] = row
                ctx.on_row(row)
                if ctx.fail_fast and _is_failure(row):
                    aborted = True
                    break  # stop enumerating: later tasks never start
        except KeyboardInterrupt:
            # The in-flight task's partial row is discarded: the outcome
            # covers exactly the rows already journaled.
            aborted = interrupted = True
        return rows, aborted, interrupted


class ProcessPoolBackend(SweepExecutor):
    """Fan-out over a local :class:`ProcessPoolExecutor`."""

    def run(self, tasks: List[SweepTask], ctx: ExecutorContext) -> BackendRun:
        watchdog, retries, fail_fast = ctx.watchdog, ctx.retries, ctx.fail_fast
        on_row = ctx.on_row
        rows: Dict[int, SweepResult] = {}
        casualties: List[Tuple[SweepTask, BaseException, float]] = []
        aborted = interrupted = False
        mp_ctx = _pool_context()
        pool = ProcessPoolExecutor(
            max_workers=ctx.workers, mp_context=mp_ctx, initializer=_worker_init
        )
        submitted_at = time.perf_counter()
        try:
            futures = {
                pool.submit(execute_task, task, watchdog): task for task in tasks
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    if future.cancelled():
                        continue  # fail-fast revoked it before it started
                    try:
                        row = future.result()
                    except BaseException as exc:  # worker death broke the pool
                        casualties.append(
                            (task, exc, time.perf_counter() - submitted_at)
                        )
                        continue
                    rows[task.index] = row
                    on_row(row)
                    if fail_fast and _is_failure(row):
                        aborted = True
                if aborted and pending:
                    # Cancel everything not yet started; tasks already
                    # running finish and keep their rows (a row, once
                    # begun, is never half-reported).
                    for future in pending:
                        future.cancel()
            pool.shutdown(wait=True)
        except KeyboardInterrupt:
            # Graceful abort: revoke everything not yet started and do not
            # block on in-flight tasks — the journal already holds every
            # completed row, and the outcome will say so truthfully.
            aborted = interrupted = True
            pool.shutdown(wait=False, cancel_futures=True)
            return rows, aborted, interrupted
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        # Bounded retry, one task per fresh single-worker pool: the
        # genuine crasher dies alone; innocent casualties of the shared
        # pool complete.  An aborting campaign skips the retries — it is
        # already being torn down — and records the crash rows as-is.
        for task, first_exc, crash_wall in sorted(
            casualties, key=lambda entry: entry[0].index
        ):
            retry_started = time.perf_counter()
            attempts = 1
            row: Optional[SweepResult] = None
            while not aborted and attempts <= retries:
                attempts += 1
                try:
                    with ProcessPoolExecutor(
                        max_workers=1, mp_context=mp_ctx, initializer=_worker_init
                    ) as solo:
                        row = solo.submit(execute_task, task, watchdog).result()
                    break
                except KeyboardInterrupt:
                    aborted = interrupted = True
                    break
                except BaseException as exc:  # noqa: BLE001
                    first_exc = exc
            if row is None:
                row = _crash_row(
                    task,
                    first_exc,
                    attempts,
                    crash_wall + (time.perf_counter() - retry_started),
                )
            else:
                row.attempts = attempts
            rows[task.index] = row
            on_row(row)
        return rows, aborted, interrupted


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

#: name -> SweepExecutor factory, or an entry-point style ``"module:attr"``
#: string resolved lazily on first use (so optional backends cost nothing
#: until selected).
_BACKENDS: Dict[str, Any] = {}

#: public alias, kept for callers that enumerate backends.
BACKENDS = _BACKENDS


def register_backend(name: str, factory: Any) -> None:
    """Register a campaign backend under *name*.

    *factory* is either a zero-argument callable returning a
    :class:`SweepExecutor` (typically the executor class itself) or an
    entry-point style string ``"package.module:attr"`` imported lazily the
    first time the backend is selected.  Re-registering a name replaces
    it — tests swap in instrumented executors this way.
    """
    if not name:
        raise SweepError("backend name must be non-empty")
    if not callable(factory) and not (
        isinstance(factory, str) and ":" in factory
    ):
        raise SweepError(
            f"backend {name!r}: factory must be callable or an "
            f"entry-point string 'module:attr', got {factory!r}"
        )
    _BACKENDS[name] = factory


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def resolve_backend(name: str) -> SweepExecutor:
    """Instantiate the executor registered under *name*.

    Entry-point strings are imported on first use and the resolved
    factory cached back into the registry.  Unknown names raise
    :class:`SweepError` listing every registered backend.
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise SweepError(
            f"unknown sweep backend {name!r} "
            f"(registered backends: {backend_names()})"
        ) from None
    if isinstance(factory, str):
        module_name, _, attr = factory.partition(":")
        try:
            import importlib

            module = importlib.import_module(module_name)
            factory = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise SweepError(
                f"backend {name!r}: cannot load entry point {factory!r}: {exc}"
            ) from None
        _BACKENDS[name] = factory
    executor = factory()
    if not isinstance(executor, SweepExecutor):
        raise SweepError(
            f"backend {name!r}: factory returned "
            f"{type(executor).__name__}, not a SweepExecutor"
        )
    executor.name = name
    return executor


register_backend("serial", SerialExecutor)
register_backend("parallel", ProcessPoolBackend)
register_backend("tcp", "repro.sweep.remote:TcpExecutor")


def run_sweep(
    spec_or_tasks: Any,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    retries: int = DEFAULT_RETRIES,
    fail_fast: bool = False,
    journal: Optional[str] = None,
    resume: bool = False,
    cache_dir: Optional[str] = None,
    task_timeout: Optional[float] = None,
    timeout_retries: int = DEFAULT_TIMEOUT_RETRIES,
    timeout_backoff: float = DEFAULT_TIMEOUT_BACKOFF,
    hosts: Optional[Any] = None,
    secret: Optional[Any] = None,
) -> SweepOutcome:
    """Execute a campaign and merge its rows deterministically.

    *spec_or_tasks* is a :class:`SweepSpec` (compiled to tasks here, in the
    parent) or a prepared task list.  Rows always come back in task order;
    with healthy tasks the merged outcome's :meth:`canonical_bytes` is
    identical across backends, worker counts and completion orders.

    *backend* selects a registered :class:`SweepExecutor` by name
    (``serial`` / ``parallel`` / ``tcp``; precedence: explicit argument >
    ``REPRO_SWEEP_BACKEND`` > ``parallel``).  *hosts* configures the
    ``tcp`` backend's worker fleet — a ``"host:port,host:port"`` string or
    a list (precedence: explicit argument > ``REPRO_SWEEP_HOSTS``).
    *secret* is the fleet's pre-shared authentication secret (precedence:
    explicit argument > ``REPRO_SWEEP_SECRET``); both peers of the tcp job
    protocol must hold the same secret or the handshake is refused.

    *fail_fast* stops the campaign at the first failed row: the serial
    backend stops enumerating, the pool backend cancels every task not yet
    started (in-flight tasks finish and keep their rows).  ``aborted`` is
    the backend's own abort decision — it is True whenever fail-fast
    tripped or the run was interrupted, even when the failing row was the
    final task.

    Durability knobs:

    *journal* appends every completed row (CRC-checked, fsync'd) to a
    JSONL file; *resume* replays an existing journal at that path first
    and executes only the missing cells.  *cache_dir* consults a
    content-addressed result cache before executing each cell and stores
    every fresh ``OK`` row.  *task_timeout* arms a per-task wall-clock
    watchdog (*timeout_retries* retries with exponential *timeout_backoff*
    between attempts) that records hung tasks as deterministic ``TIMEOUT``
    rows.  Replayed and cached rows re-enter the task-order merge
    unchanged, so a resumed or warm-cache outcome's canonical bytes are
    identical to a cold uninterrupted run's.
    """
    if backend is None:
        backend = default_backend()
    executor = resolve_backend(backend)
    if retries < 0:
        raise SweepError(
            f"retries must be >= 0, got {retries} (a negative value would "
            f"silently disable the solo-pool retry)"
        )
    watchdog: Optional[Watchdog] = None
    if task_timeout is not None:
        if task_timeout <= 0:
            raise SweepError(f"task_timeout must be > 0 seconds, got {task_timeout}")
        if timeout_retries < 0:
            raise SweepError(f"timeout_retries must be >= 0, got {timeout_retries}")
        if timeout_backoff < 0:
            raise SweepError(f"timeout_backoff must be >= 0, got {timeout_backoff}")
        watchdog = Watchdog(float(task_timeout), timeout_retries, timeout_backoff)
    tasks = tasks_of(spec_or_tasks)
    effective_workers = executor.initial_workers(workers)
    meta = spec_meta(spec_or_tasks)
    started = time.perf_counter()

    # ------------------------------------------------------------------
    # Durability plumbing: journal replay, cache probe
    # ------------------------------------------------------------------
    fingerprints: Dict[int, str] = {}
    if journal is not None or cache_dir is not None:
        fingerprints = {task.index: task_fingerprint(task) for task in tasks}

    prefilled: Dict[int, SweepResult] = {}
    resumed = 0
    writer = None
    if journal is not None:
        from .journal import JournalWriter, read_journal

        exists = os.path.exists(journal) and os.path.getsize(journal) > 0
        if resume and exists:
            state = read_journal(journal)
            if state.meta is not None and (
                state.meta.get("spec_name") != meta["name"]
                or state.meta.get("base_seed") != meta["base_seed"]
            ):
                raise SweepError(
                    f"journal {journal!r} records campaign "
                    f"{state.meta.get('spec_name')!r} (base_seed "
                    f"{state.meta.get('base_seed')}), not {meta['name']!r} "
                    f"(base_seed {meta['base_seed']}) — refusing to mix"
                )
            for index, (fingerprint, row) in state.rows.items():
                if fingerprints.get(index) == fingerprint:
                    row.cached = False
                    prefilled[index] = row
                    resumed += 1
        elif exists and not resume:
            raise SweepError(
                f"journal {journal!r} already exists — resume it "
                f"(resume=True / --resume) or remove the file"
            )
        writer = JournalWriter(journal, append=resume and exists)
        if resume and exists:
            writer.write_resume(resumed)
        else:
            writer.write_campaign(meta["name"], meta["base_seed"], len(tasks))

    cache = None
    cached_rows = 0
    pending = [task for task in tasks if task.index not in prefilled]
    if cache_dir is not None:
        from .cache import ResultCache

        cache = ResultCache(cache_dir)
        still_pending: List[SweepTask] = []
        for task in pending:
            hit = cache.get(task, fingerprints[task.index])
            if hit is not None:
                prefilled[task.index] = hit
                cached_rows += 1
                if writer is not None:
                    writer.write_row(hit, fingerprints[task.index])
            else:
                still_pending.append(task)
        pending = still_pending

    # ------------------------------------------------------------------
    # Execute the remaining cells
    # ------------------------------------------------------------------
    tasks_by_index = {task.index: task for task in tasks}

    def on_row(row: SweepResult) -> None:
        if writer is not None:
            writer.write_row(row, fingerprints[row.index])
        if cache is not None and not row.cached:
            cache.put(tasks_by_index[row.index], row, fingerprints[row.index])

    context = ExecutorContext(
        workers=effective_workers,
        retries=retries,
        fail_fast=fail_fast,
        watchdog=watchdog,
        on_row=on_row,
        hosts=hosts,
        meta=meta,
        secret=secret,
    )
    if fail_fast and any(_is_failure(row) for row in prefilled.values()):
        # A replayed/cached failure already decides the campaign.
        rows_by_index: Dict[int, SweepResult] = {}
        aborted, interrupted = True, False
    else:
        rows_by_index, aborted, interrupted = executor.run(pending, context)
    if context.effective_workers is not None:
        effective_workers = context.effective_workers

    merged = {**prefilled, **rows_by_index}
    rows = [merged[task.index] for task in tasks if task.index in merged]
    if writer is not None:
        writer.write_end(
            aborted=aborted, interrupted=interrupted, rows=len(rows)
        )
        writer.close()
    return SweepOutcome(
        spec_name=meta["name"],
        base_seed=meta["base_seed"],
        backend=backend,
        workers=effective_workers,
        rows=rows,
        wall_seconds=time.perf_counter() - started,
        aborted=aborted,
        interrupted=interrupted,
        resumed=resumed,
        cached_rows=cached_rows,
        timed_out=sum(1 for row in rows if row.status == SweepResult.TIMEOUT),
        fleet=context.fleet_stats,
    )
