"""Distributed sweep executor: a multi-host TCP job protocol.

The ``tcp`` backend dispatches campaign cells to a fleet of ``repro
worker`` processes (:class:`WorkerServer`, one per host, each serving N
local slots) over a small length-prefixed, CRC-framed job protocol.  The
parent is a **pull-based scheduler**: workers request work whenever a slot
goes idle, so a heterogeneous fleet self-balances — a fast host simply
asks more often.  Rows stream back as they complete and re-enter
:func:`repro.sweep.run_sweep`'s deterministic task-order merge, so the
``tcp`` backend's ``canonical_bytes()`` is byte-identical to the serial
reference's (asserted in ``tests/sweep/test_remote.py``).

Wire format — every message is one frame::

    +--------+------+----------+------------------+----------+
    | magic  | type | length   | payload          | crc32    |
    | "VWJP" | u8   | u32 (BE) | length bytes     | u32 (BE) |
    +--------+------+----------+------------------+----------+

The CRC covers the type byte plus the payload, so a corrupted or
truncated frame is detected before anything is deserialised.  Control
messages (HELLO/WELCOME/GET/ROW/HEARTBEAT/ERROR/BYE) carry canonical
JSON; PROGRAM and TASK carry pickles (task functions travel by module
reference, compiled programs by value).  **The protocol therefore trusts
the fleet** — run workers only on hosts you control, exactly like any
other pickle-based job queue.

Program shipping is content-addressed: a :class:`CompiledProgram` param
is replaced in the wire task by a :class:`ProgramRef` carrying its
:meth:`~repro.core.tables.CompiledProgram.content_hash`, and the parent
pushes the program bytes to a worker at most once per campaign — the
10k-cell grid over one script ships one program per host, not 10k.

Failure model: a worker whose socket dies or whose heartbeats stop is
declared lost; its in-flight tasks are re-queued onto the surviving fleet
with a bounded retry budget (``retries``, same knob as the pool backend)
before becoming a deterministic ``FAILED`` row.  A worker whose *slot
process* dies (hard crash inside a task) reports the casualty with an
ERROR frame and keeps serving — the parent applies the same retry budget.
SIGINT in the parent aborts gracefully: pending cells stay unsent, BYE is
broadcast, and the outcome truthfully reports ``aborted=interrupted=True``
covering exactly the journaled rows.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import selectors
import socket
import struct
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from .runner import (
    BackendRun,
    ExecutorContext,
    SweepExecutor,
    Watchdog,
    _pool_context,
    _worker_init,
    default_workers,
    execute_task,
    _is_failure,
)
from .spec import SweepError, SweepResult, SweepTask

# ---------------------------------------------------------------------------
# Protocol constants
# ---------------------------------------------------------------------------

MAGIC = b"VWJP"
PROTOCOL_VERSION = 1

#: frame payloads larger than this are protocol errors, not allocations.
MAX_FRAME = 64 * 1024 * 1024

MSG_HELLO = 1  # parent -> worker: version + campaign meta + watchdog
MSG_WELCOME = 2  # worker -> parent: version + slot count
MSG_GET = 3  # worker -> parent: one idle slot requests one task
MSG_PROGRAM = 4  # parent -> worker: content-addressed compiled program
MSG_TASK = 5  # parent -> worker: one campaign cell
MSG_ROW = 6  # worker -> parent: one completed result row
MSG_HEARTBEAT = 7  # worker -> parent: liveness
MSG_ERROR = 8  # worker -> parent: a cell died worker-side (slot crash)
MSG_BYE = 9  # either direction: orderly goodbye

_HEADER = struct.Struct("!4sBI")
_CRC = struct.Struct("!I")
_INDEX = struct.Struct("!I")

#: Environment knob for the worker fleet; an explicit ``hosts=`` argument
#: always wins (precedence: argument > env — same convention as
#: ``REPRO_SWEEP_WORKERS``).
HOSTS_ENV = "REPRO_SWEEP_HOSTS"

#: Timing knobs (seconds), env-overridable so tests can tighten them.
HEARTBEAT_INTERVAL_ENV = "REPRO_SWEEP_HEARTBEAT_S"
HEARTBEAT_TIMEOUT_ENV = "REPRO_SWEEP_HEARTBEAT_TIMEOUT_S"
CONNECT_TIMEOUT_ENV = "REPRO_SWEEP_CONNECT_TIMEOUT_S"
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0
DEFAULT_HEARTBEAT_TIMEOUT_S = 10.0
DEFAULT_CONNECT_TIMEOUT_S = 10.0

#: Socket send timeout: a peer that cannot drain a frame in this long is
#: as good as dead.
_SEND_TIMEOUT_S = 30.0


def _env_seconds(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    try:
        parsed = float(value)
    except ValueError:
        raise SweepError(f"{name} must be a number of seconds, got {value!r}") from None
    if parsed <= 0:
        raise SweepError(f"{name} must be > 0 seconds, got {value!r}")
    return parsed


class ProtocolError(SweepError):
    """A peer spoke something that is not the VirtualWire job protocol."""


class ConnectionLost(ProtocolError):
    """The TCP stream ended mid-conversation (EOF or reset)."""


# ---------------------------------------------------------------------------
# Host parsing
# ---------------------------------------------------------------------------


def parse_hosts(value: Any) -> List[Tuple[str, int]]:
    """Normalise a fleet description into ``[(host, port), ...]``.

    Accepts a ``"host:port,host:port"`` string, an iterable of such
    strings, or an iterable of ``(host, port)`` pairs.  Mis-specified
    entries raise :class:`SweepError` — same convention as the
    ``REPRO_SWEEP_WORKERS`` validation: never a silent fallback.
    """
    if isinstance(value, str):
        entries: Sequence[Any] = [v for v in value.split(",") if v.strip() != ""]
    else:
        entries = list(value)
    hosts: List[Tuple[str, int]] = []
    for entry in entries:
        if isinstance(entry, tuple) and len(entry) == 2:
            host, port = entry
        elif isinstance(entry, str):
            host, sep, port = entry.rpartition(":")
            if sep == "" or host == "":
                raise SweepError(
                    f"worker host {entry!r} must be 'host:port' (e.g. "
                    f"127.0.0.1:7777)"
                )
        else:
            raise SweepError(
                f"worker host entry must be 'host:port' or (host, port), "
                f"got {entry!r}"
            )
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise SweepError(
                f"worker host {entry!r}: port must be an integer"
            ) from None
        if not 1 <= port <= 65535:
            raise SweepError(
                f"worker host {entry!r}: port must be in 1..65535, got {port}"
            )
        hosts.append((str(host), port))
    if not hosts:
        raise SweepError("worker host list is empty")
    return hosts


def default_hosts() -> Optional[List[Tuple[str, int]]]:
    """The fleet named by ``REPRO_SWEEP_HOSTS``, or ``None`` when unset."""
    env = os.environ.get(HOSTS_ENV)
    if env is None or env == "":
        return None
    try:
        return parse_hosts(env)
    except SweepError as exc:
        raise SweepError(f"{HOSTS_ENV}: {exc}") from None


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(mtype: int, payload: bytes) -> bytes:
    """One wire frame: header, payload, CRC over (type byte + payload)."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte protocol limit"
        )
    crc = _crc32_frame(mtype, payload)
    return _HEADER.pack(MAGIC, mtype, len(payload)) + payload + _CRC.pack(crc)


def _crc32_frame(mtype: int, payload: bytes) -> int:
    import zlib

    return zlib.crc32(bytes((mtype,)) + payload) & 0xFFFFFFFF


class FrameBuffer:
    """Incremental frame parser for the parent's non-blocking sockets."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> Optional[Tuple[int, bytes]]:
        """Pop one complete frame, or ``None`` if more bytes are needed.

        Raises :class:`ProtocolError` on bad magic, oversized length or a
        CRC mismatch — the connection is unrecoverable after that.
        """
        if len(self._buffer) < _HEADER.size:
            return None
        magic, mtype, length = _HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise ProtocolError(
                f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
            )
        if length > MAX_FRAME:
            raise ProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME}-byte limit"
            )
        total = _HEADER.size + length + _CRC.size
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
        (crc,) = _CRC.unpack_from(self._buffer, _HEADER.size + length)
        del self._buffer[:total]
        if crc != _crc32_frame(mtype, payload):
            raise ProtocolError("frame CRC mismatch")
        return mtype, payload


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        try:
            chunk = sock.recv(count - len(chunks))
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise ConnectionLost(f"connection lost mid-frame: {exc}") from None
        if not chunk:
            raise ConnectionLost("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


def read_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Blocking read of one complete frame (the worker's receive path)."""
    header = _recv_exact(sock, _HEADER.size)
    magic, mtype, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte limit"
        )
    payload = _recv_exact(sock, length)
    (crc,) = _CRC.unpack(_recv_exact(sock, _CRC.size))
    if crc != _crc32_frame(mtype, payload):
        raise ProtocolError("frame CRC mismatch")
    return mtype, payload


def _json_payload(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _parse_json(payload: bytes, what: str) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable {what} payload: {exc}") from None


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses the classic RCE gadget modules.

    The protocol already trusts the fleet (documented above), but there
    is no reason to let a stray byte stream reach ``os.system`` — task
    functions and compiled programs only ever live under ``repro`` or the
    caller's own campaign modules, so the blocklist costs nothing.
    """

    def find_class(self, module: str, name: str) -> Any:
        qualified = f"{module}.{name}"
        if module in ("os", "subprocess", "posix", "nt") or qualified in (
            "builtins.eval",
            "builtins.exec",
            "builtins.compile",
            "builtins.open",
        ):
            raise ProtocolError(
                f"refusing to unpickle {qualified} from the job stream"
            )
        return super().find_class(module, name)


def _loads(payload: bytes, what: str) -> Any:
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — any unpickle failure is protocol-level
        raise ProtocolError(f"undecodable {what} payload: {exc!r}") from None


# ---------------------------------------------------------------------------
# Content-addressed program shipping
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgramRef:
    """Wire placeholder for a :class:`CompiledProgram` param: its content
    hash.  The worker swaps the real program back in from its
    per-campaign store (pushed at most once per worker)."""

    hash: str


def export_task(task: SweepTask) -> Tuple[SweepTask, Dict[str, Any]]:
    """Split a task into its wire form and the programs it references.

    Every :class:`CompiledProgram` param becomes a :class:`ProgramRef`;
    the returned mapping is ``content_hash -> program`` for the scheduler
    to push (once per worker) before the task.
    """
    from ..core.tables import CompiledProgram  # local: avoid import cycle

    programs: Dict[str, Any] = {}
    params: Dict[str, Any] = {}
    for key, value in task.params.items():
        if isinstance(value, CompiledProgram):
            content = value.content_hash()
            programs[content] = value
            params[key] = ProgramRef(content)
        else:
            params[key] = value
    wire = SweepTask(
        index=task.index,
        name=task.name,
        seed=task.seed,
        fn=task.fn,
        params=params,
    )
    return wire, programs


def resolve_task(task: SweepTask, programs: Dict[str, Any]) -> SweepTask:
    """Swap :class:`ProgramRef` params back to real programs (worker side).

    Raises :class:`ProtocolError` when a referenced program was never
    pushed — a scheduler bug, not a task failure.
    """
    params: Dict[str, Any] = {}
    for key, value in task.params.items():
        if isinstance(value, ProgramRef):
            if value.hash not in programs:
                raise ProtocolError(
                    f"task {task.index} references program "
                    f"{value.hash[:12]}… which was never pushed"
                )
            params[key] = programs[value.hash]
        else:
            params[key] = value
    task.params = params
    return task


# ---------------------------------------------------------------------------
# The worker: one host serving N local slots
# ---------------------------------------------------------------------------


class WorkerServer:
    """``repro worker``: serve campaign cells over N local process slots.

    Listens for one parent at a time (campaigns are sequential); for each
    connection it exchanges HELLO/WELCOME, spins up a fresh
    :class:`ProcessPoolExecutor` of ``slots`` workers, announces one GET
    per slot, and then executes TASK frames as they arrive — sending a
    ROW (and a fresh GET) per completion and heartbeating in the
    background.  The per-connection program store means a parent pushes
    each compiled program at most once per campaign.

    A slot process that hard-dies breaks the local pool: the casualty is
    reported upstream as an ERROR frame (the parent re-queues it against
    its retry budget) and the pool is rebuilt, so one poisoned cell
    cannot take the host out of the fleet.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        slots: Optional[int] = None,
    ) -> None:
        if slots is not None and slots < 1:
            raise SweepError(f"worker slots must be >= 1, got {slots}")
        self.slots = slots if slots is not None else default_workers()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        #: campaigns served since start (observability / tests).
        self.campaigns_served = 0

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def serve_forever(self) -> None:
        """Accept parents until :meth:`stop` (or the listener dies)."""
        try:
            while not self._stop.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except OSError:
                    break  # listener closed by stop()
                try:
                    self._serve_connection(conn)
                    self.campaigns_served += 1
                except (ProtocolError, OSError):
                    pass  # a broken parent must not kill the worker
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
        finally:
            self.stop()

    # ------------------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        mtype, payload = read_frame(conn)
        if mtype != MSG_HELLO:
            raise ProtocolError(f"expected HELLO, got message type {mtype}")
        hello = _parse_json(payload, "HELLO")
        version = hello.get("version")
        if version != PROTOCOL_VERSION:
            conn.sendall(
                encode_frame(
                    MSG_BYE,
                    _json_payload(
                        {
                            "error": f"protocol version mismatch: parent "
                            f"speaks {version}, worker speaks "
                            f"{PROTOCOL_VERSION}"
                        }
                    ),
                )
            )
            return
        watchdog = None
        config = hello.get("watchdog")
        if config:
            watchdog = Watchdog(
                timeout=float(config["timeout"]),
                retries=int(config.get("retries", 0)),
                backoff=float(config.get("backoff", 0.0)),
            )

        send_lock = threading.Lock()
        alive = threading.Event()
        alive.set()

        def send(mtype: int, payload: bytes) -> None:
            frame = encode_frame(mtype, payload)
            with send_lock:
                conn.sendall(frame)

        send(
            MSG_WELCOME,
            _json_payload({"version": PROTOCOL_VERSION, "slots": self.slots}),
        )

        interval = _env_seconds(
            HEARTBEAT_INTERVAL_ENV, DEFAULT_HEARTBEAT_INTERVAL_S
        )

        def heartbeat() -> None:
            while alive.is_set():
                if self._stop.wait(interval):
                    break
                if not alive.is_set():
                    break
                try:
                    send(MSG_HEARTBEAT, b"{}")
                except OSError:
                    break

        beat = threading.Thread(target=heartbeat, daemon=True)
        beat.start()

        programs: Dict[str, Any] = {}
        pool = ProcessPoolExecutor(
            max_workers=self.slots,
            mp_context=_pool_context(),
            initializer=_worker_init,
        )

        def finish(index: int, future: Any) -> None:
            """Completion callback (executor thread): ROW or ERROR, then
            ask for more work."""
            if not alive.is_set():
                return
            try:
                try:
                    row = future.result()
                except BaseException as exc:  # slot process died
                    send(
                        MSG_ERROR,
                        _json_payload(
                            {
                                "index": index,
                                "error": f"worker died: {type(exc).__name__}",
                                "detail": f"slot process executing task "
                                f"{index} died: {exc!r}",
                            }
                        ),
                    )
                else:
                    send(MSG_ROW, _json_payload(row.to_record()))
                send(MSG_GET, b"{}")
            except OSError:
                alive.clear()  # parent is gone; stop reporting

        try:
            for _ in range(self.slots):
                send(MSG_GET, b"{}")
            while True:
                mtype, payload = read_frame(conn)
                if mtype == MSG_PROGRAM:
                    shipment = _loads(payload, "PROGRAM")
                    programs[str(shipment["hash"])] = shipment["program"]
                elif mtype == MSG_TASK:
                    (index,) = _INDEX.unpack_from(payload)
                    try:
                        task = _loads(payload[_INDEX.size:], "TASK")
                        task = resolve_task(task, programs)
                    except ProtocolError as exc:
                        # Undeliverable cell: report it instead of dying —
                        # the parent owns the retry/fail decision.
                        send(
                            MSG_ERROR,
                            _json_payload(
                                {
                                    "index": index,
                                    "error": "worker died: UndeliverableTask",
                                    "detail": str(exc),
                                }
                            ),
                        )
                        send(MSG_GET, b"{}")
                        continue
                    try:
                        future = pool.submit(execute_task, task, watchdog)
                    except BrokenProcessPool:
                        # A previous casualty broke the pool: rebuild and
                        # retry the submission once on the fresh pool.
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(
                            max_workers=self.slots,
                            mp_context=_pool_context(),
                            initializer=_worker_init,
                        )
                        future = pool.submit(execute_task, task, watchdog)
                    future.add_done_callback(
                        lambda fut, idx=task.index: finish(idx, fut)
                    )
                elif mtype == MSG_BYE:
                    break
                elif mtype in (MSG_HEARTBEAT, MSG_GET):
                    continue  # tolerated, not part of the parent's grammar
                else:
                    raise ProtocolError(
                        f"unexpected message type {mtype} from parent"
                    )
        except ConnectionLost:
            pass  # parent died (SIGKILL, crash): clean up and re-accept
        finally:
            alive.clear()
            pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# The parent: pull-based scheduler over the fleet
# ---------------------------------------------------------------------------


@dataclass
class _Conn:
    """Parent-side state for one worker connection."""

    sock: socket.socket
    address: str
    slots: int = 0
    idle: int = 0
    pushed: Set[str] = field(default_factory=set)
    inflight: Dict[int, SweepTask] = field(default_factory=dict)
    buffer: FrameBuffer = field(default_factory=FrameBuffer)
    last_seen: float = field(default_factory=time.monotonic)


class TcpExecutor(SweepExecutor):
    """The ``tcp`` backend: campaign cells over a ``repro worker`` fleet."""

    def initial_workers(self, workers: Optional[int]) -> int:
        if workers is not None and workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        # The true worker count is the fleet's advertised slot total,
        # known only after the HELLO exchange; 0 is the placeholder.
        return 0

    def run(self, tasks: List[SweepTask], ctx: ExecutorContext) -> BackendRun:
        hosts = ctx.hosts
        if hosts is None:
            hosts = default_hosts()
        else:
            hosts = parse_hosts(hosts)
        if not hosts:
            raise SweepError(
                "the tcp backend needs a worker fleet: pass hosts= "
                "(--hosts host:port,...) or set REPRO_SWEEP_HOSTS"
            )
        scheduler = _Scheduler(tasks, ctx, hosts)
        return scheduler.run()


class _Scheduler:
    """One campaign's pull-based dispatch loop."""

    def __init__(
        self,
        tasks: List[SweepTask],
        ctx: ExecutorContext,
        hosts: List[Tuple[str, int]],
    ) -> None:
        self.ctx = ctx
        self.tasks = tasks
        self.pending: Deque[SweepTask] = deque(
            sorted(tasks, key=lambda task: task.index)
        )
        self.rows: Dict[int, SweepResult] = {}
        self.losses: Dict[int, int] = {}
        self.loss_notes: Dict[int, str] = {}
        self.started: Dict[int, float] = {}
        self.hosts = hosts
        self.conns: List[_Conn] = []
        self.selector = selectors.DefaultSelector()
        self.aborted = False
        self.interrupted = False
        self.heartbeat_timeout = _env_seconds(
            HEARTBEAT_TIMEOUT_ENV, DEFAULT_HEARTBEAT_TIMEOUT_S
        )

    # -- connection management -----------------------------------------

    def _connect_fleet(self) -> None:
        deadline = time.monotonic() + _env_seconds(
            CONNECT_TIMEOUT_ENV, DEFAULT_CONNECT_TIMEOUT_S
        )
        errors: List[str] = []
        meta = self.ctx.meta or {}
        watchdog = self.ctx.watchdog
        hello = _json_payload(
            {
                "version": PROTOCOL_VERSION,
                "spec_name": meta.get("name"),
                "base_seed": meta.get("base_seed"),
                "tasks": len(self.tasks),
                "watchdog": (
                    {
                        "timeout": watchdog.timeout,
                        "retries": watchdog.retries,
                        "backoff": watchdog.backoff,
                    }
                    if watchdog
                    else None
                ),
            }
        )
        for host, port in self.hosts:
            address = f"{host}:{port}"
            sock: Optional[socket.socket] = None
            while True:
                try:
                    sock = socket.create_connection(
                        (host, port), timeout=_SEND_TIMEOUT_S
                    )
                    break
                except OSError as exc:
                    if time.monotonic() >= deadline:
                        errors.append(f"{address}: {exc}")
                        sock = None
                        break
                    time.sleep(0.05)
            if sock is None:
                continue
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.sendall(encode_frame(MSG_HELLO, hello))
                mtype, payload = read_frame(sock)
                if mtype == MSG_BYE:
                    reason = _parse_json(payload, "BYE").get("error", "refused")
                    raise ProtocolError(f"{address}: {reason}")
                if mtype != MSG_WELCOME:
                    raise ProtocolError(
                        f"{address}: expected WELCOME, got type {mtype}"
                    )
                welcome = _parse_json(payload, "WELCOME")
                if welcome.get("version") != PROTOCOL_VERSION:
                    raise ProtocolError(
                        f"{address}: protocol version mismatch "
                        f"(worker speaks {welcome.get('version')}, parent "
                        f"speaks {PROTOCOL_VERSION})"
                    )
                conn = _Conn(
                    sock=sock,
                    address=address,
                    slots=max(1, int(welcome.get("slots", 1))),
                )
                sock.settimeout(_SEND_TIMEOUT_S)
                self.selector.register(sock, selectors.EVENT_READ, conn)
                self.conns.append(conn)
            except (ProtocolError, OSError) as exc:
                errors.append(f"{address}: {exc}")
                try:
                    sock.close()
                except OSError:
                    pass
        if not self.conns:
            raise SweepError(
                "tcp backend could not reach any worker: "
                + "; ".join(errors or ["no hosts"])
            )
        self.ctx.effective_workers = sum(conn.slots for conn in self.conns)

    def _send(self, conn: _Conn, mtype: int, payload: bytes) -> None:
        conn.sock.sendall(encode_frame(mtype, payload))

    def _lose(self, conn: _Conn, reason: str) -> None:
        """Declare a worker dead: re-queue its in-flight cells against the
        retry budget, fail the ones that exhausted it."""
        if conn not in self.conns:
            return
        self.conns.remove(conn)
        try:
            self.selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        requeued: List[SweepTask] = []
        for index, task in sorted(conn.inflight.items()):
            self._record_casualty(task, f"worker {conn.address} lost: {reason}")
            if index in self.rows:
                continue  # retry budget exhausted: FAILED row already landed
            requeued.append(task)
        conn.inflight.clear()
        if requeued:
            self.pending = deque(
                sorted(
                    list(self.pending) + requeued, key=lambda task: task.index
                )
            )

    def _record_casualty(self, task: SweepTask, note: str) -> None:
        """Count one lost execution of *task*; emit the deterministic
        FAILED row once the budget (``retries`` re-queues) is spent."""
        index = task.index
        self.losses[index] = self.losses.get(index, 0) + 1
        self.loss_notes[index] = note
        if self.losses[index] <= self.ctx.retries:
            return
        row = SweepResult(
            index=index,
            name=task.name,
            seed=task.seed,
            status=SweepResult.FAILED,
            error="worker died: connection lost",
            error_detail=(
                f"task {index} ({task.name!r}) lost {self.losses[index]} "
                f"worker(s); last: {note}"
            ),
            attempts=self.losses[index],
            wall_seconds=max(
                0.0, time.perf_counter() - self.started.get(index, time.perf_counter())
            ),
        )
        self._land(row)

    def _land(self, row: SweepResult) -> None:
        self.rows[row.index] = row
        self.ctx.on_row(row)
        if self.ctx.fail_fast and _is_failure(row):
            self.aborted = True

    # -- dispatch -------------------------------------------------------

    def _assign(self, conn: _Conn, task: SweepTask) -> bool:
        """Ship one task to one idle slot; False when the send fails (the
        connection is then declared lost and the task re-queued)."""
        wire, programs = export_task(task)
        try:
            for content, program in programs.items():
                if content not in conn.pushed:
                    self._send(
                        conn,
                        MSG_PROGRAM,
                        pickle.dumps(
                            {"hash": content, "program": program},
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                    conn.pushed.add(content)
            self._send(
                conn,
                MSG_TASK,
                _INDEX.pack(task.index)
                + pickle.dumps(wire, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError as exc:
            conn.inflight.pop(task.index, None)
            self._lose(conn, f"send failed: {exc}")
            self.pending = deque(
                sorted(list(self.pending) + [task], key=lambda t: t.index)
            )
            return False
        conn.idle -= 1
        conn.inflight[task.index] = task
        self.started.setdefault(task.index, time.perf_counter())
        return True

    def _dispatch(self) -> None:
        if self.aborted:
            return
        progress = True
        while progress and self.pending:
            progress = False
            for conn in list(self.conns):
                if not self.pending:
                    break
                if conn.idle > 0:
                    task = self.pending.popleft()
                    if self._assign(conn, task):
                        progress = True

    # -- frame handling -------------------------------------------------

    def _handle_frame(self, conn: _Conn, mtype: int, payload: bytes) -> None:
        conn.last_seen = time.monotonic()
        if mtype == MSG_GET:
            conn.idle += 1
        elif mtype == MSG_ROW:
            record = _parse_json(payload, "ROW")
            row = SweepResult.from_record(record)
            task = conn.inflight.pop(row.index, None)
            if task is None or row.index in self.rows:
                return  # stale row (already failed via retry budget)
            self._land(row)
        elif mtype == MSG_ERROR:
            report = _parse_json(payload, "ERROR")
            index = int(report.get("index", -1))
            task = conn.inflight.pop(index, None)
            if task is None or index in self.rows:
                return
            self._record_casualty(
                task,
                f"worker {conn.address} reported: "
                f"{report.get('detail') or report.get('error')}",
            )
            if index not in self.rows:
                self.pending = deque(
                    sorted(list(self.pending) + [task], key=lambda t: t.index)
                )
        elif mtype == MSG_HEARTBEAT:
            pass
        elif mtype == MSG_BYE:
            self._lose(conn, "worker said BYE mid-campaign")
        else:
            raise ProtocolError(f"unexpected message type {mtype} from worker")

    def _pump(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._lose(conn, f"recv failed: {exc}")
            return
        if not data:
            self._lose(conn, "connection closed")
            return
        conn.buffer.feed(data)
        while True:
            try:
                frame = conn.buffer.next_frame()
            except ProtocolError as exc:
                self._lose(conn, str(exc))
                return
            if frame is None:
                return
            self._handle_frame(conn, *frame)
            if conn not in self.conns:
                return  # _handle_frame declared it lost

    # -- the loop -------------------------------------------------------

    def _done(self) -> bool:
        if self.aborted:
            return not any(conn.inflight for conn in self.conns)
        return len(self.rows) == len(self.tasks)

    def _check_liveness(self) -> None:
        now = time.monotonic()
        for conn in list(self.conns):
            if now - conn.last_seen > self.heartbeat_timeout:
                self._lose(
                    conn,
                    f"missed heartbeats for {now - conn.last_seen:.1f}s "
                    f"(timeout {self.heartbeat_timeout:g}s)",
                )

    def _broadcast_bye(self) -> None:
        for conn in list(self.conns):
            try:
                self._send(conn, MSG_BYE, b"{}")
            except OSError:
                pass
            try:
                self.selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self.conns.clear()
        try:
            self.selector.close()
        except OSError:
            pass

    def run(self) -> BackendRun:
        try:
            self._connect_fleet()
            self._dispatch()
            while not self._done():
                events = self.selector.select(timeout=0.2)
                for key, _mask in events:
                    self._pump(key.data)
                self._check_liveness()
                if self.pending and not self.conns and not self.aborted:
                    raise SweepError(
                        f"tcp backend lost every worker with "
                        f"{len(self.pending)} task(s) still pending "
                        f"(journaled rows are safe; resume with a live fleet)"
                    )
                if not self.conns:
                    break  # aborted with the fleet gone: nothing to wait on
                self._dispatch()
        except KeyboardInterrupt:
            # Graceful abort: the journal already holds every completed
            # row; pending cells stay unsent, in-flight rows are dropped.
            self.aborted = self.interrupted = True
        finally:
            self._broadcast_bye()
        return self.rows, self.aborted, self.interrupted


__all__ = [
    "ConnectionLost",
    "FrameBuffer",
    "HOSTS_ENV",
    "MAGIC",
    "PROTOCOL_VERSION",
    "ProgramRef",
    "ProtocolError",
    "TcpExecutor",
    "WorkerServer",
    "default_hosts",
    "encode_frame",
    "export_task",
    "parse_hosts",
    "read_frame",
    "resolve_task",
]
