"""Distributed sweep executor: a self-healing multi-host TCP job fleet.

The ``tcp`` backend dispatches campaign cells to a fleet of ``repro
worker`` processes (:class:`WorkerServer`, one per host, each serving N
local slots) over a small length-prefixed, CRC-framed job protocol.  The
parent is a **pull-based scheduler**: workers request work whenever a slot
goes idle, so a heterogeneous fleet self-balances — a fast host simply
asks more often.  Rows stream back as they complete and re-enter
:func:`repro.sweep.run_sweep`'s deterministic task-order merge, so the
``tcp`` backend's ``canonical_bytes()`` is byte-identical to the serial
reference's (asserted in ``tests/sweep/test_remote.py`` and, under live
fault injection, ``tests/sweep/test_fleet_chaos.py``).

Wire format — every message is one frame::

    +--------+------+----------+------------------+----------+
    | magic  | type | length   | payload          | crc32    |
    | "VWJP" | u8   | u32 (BE) | length bytes     | u32 (BE) |
    +--------+------+----------+------------------+----------+

The CRC covers the type byte plus the payload, so a corrupted or
truncated frame is detected before anything is deserialised.  Control
messages (HELLO/WELCOME/AUTH/GET/ROW/HEARTBEAT/ERROR/BYE) carry canonical
JSON; PROGRAM and TASK carry pickles (task functions travel by module
reference, compiled programs by value).

**Authentication** (protocol v2): the job protocol ships pickles, so a
peer must prove knowledge of the fleet's pre-shared secret *before* any
pickle-bearing frame is deserialised.  The handshake is a mutual HMAC
challenge/response folded into HELLO/WELCOME plus one AUTH frame::

    parent                                worker
      | HELLO {version, nonce_p, meta}      |
      |------------------------------------>|
      | WELCOME {version, slots, nonce_w,   |
      |          proof=HMAC(k,"worker",     |
      |                     nonce_p|nonce_w)}|
      |<------------------------------------|   parent verifies proof
      | AUTH {proof=HMAC(k,"parent",        |
      |                  nonce_w|nonce_p)}  |
      |------------------------------------>|   worker verifies proof
      | GET x slots ...                     |

The secret comes from ``REPRO_SWEEP_SECRET`` or ``--secret-file`` on both
sides (:func:`resolve_secret`); with no secret configured on either side
the handshake still runs with an empty key, preserving zero-config
loopback fleets.  A peer with the wrong (or a missing) secret is rejected
with a clear error — the worker answers BYE and closes without ever
unpickling a frame, and a v1 peer (no nonce) is refused with a version
mismatch message.

Program shipping is content-addressed: a :class:`CompiledProgram` param
is replaced in the wire task by a :class:`ProgramRef` carrying its
:meth:`~repro.core.tables.CompiledProgram.content_hash`, and the parent
pushes the program bytes to a worker at most once per campaign — the
10k-cell grid over one script ships one program per host, not 10k.

Self-healing (docs/SWEEP.md, "Fleet security & resilience"):

* **Dynamic membership.**  A worker whose socket dies or whose
  heartbeats stop is declared lost; its in-flight cells re-queue onto the
  surviving fleet.  Lost (and never-reached) hosts are *redialled* with
  exponential backoff for the rest of the campaign, so a worker that is
  SIGKILLed and restarted — or starts late — rejoins mid-campaign and
  picks up work.  When a lost worker rejoins healthy, one connection-loss
  per (cell, worker) pair is forgiven: infrastructure flaps do not burn
  the ``retries`` budget that exists to catch genuinely poisonous cells.
  Worker-reported slot crashes (ERROR frames) are never forgiven — the
  cell itself is the prime suspect there.
* **Health scoring and quarantine.**  A :class:`~repro.sweep.health.
  FleetHealth` tracker scores every worker (rows, failures, heartbeat
  jitter) and quarantines repeat offenders with decaying backoff instead
  of failing the campaign; per-worker stats surface on
  ``SweepOutcome.fleet``.  Only a fleet with *no* usable worker for
  ``REPRO_SWEEP_REJOIN_S`` seconds raises :class:`SweepError`.
* **Straggler hedging.**  Once enough rows have landed to estimate the
  campaign's p95 cell wall-time, in-flight cells running far past it are
  speculatively re-dispatched to idle slots on *other* workers.  First
  completion wins; duplicate rows are discarded by task index and checked
  byte-for-byte against the landed row (task results are deterministic,
  so hedging cannot change ``canonical_bytes()``).
"""

from __future__ import annotations

import hashlib
import hmac
import io
import json
import math
import os
import pickle
import selectors
import socket
import struct
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from .health import FleetHealth
from .runner import (
    BackendRun,
    ExecutorContext,
    SweepExecutor,
    Watchdog,
    _pool_context,
    _worker_init,
    default_workers,
    execute_task,
    _is_failure,
)
from .spec import SweepError, SweepResult, SweepTask

# ---------------------------------------------------------------------------
# Protocol constants
# ---------------------------------------------------------------------------

MAGIC = b"VWJP"

#: v2 added the authenticated HELLO/WELCOME/AUTH handshake; v1 peers are
#: rejected with a clear version-mismatch error.
PROTOCOL_VERSION = 2

#: frame payloads larger than this are protocol errors, not allocations.
MAX_FRAME = 64 * 1024 * 1024

MSG_HELLO = 1  # parent -> worker: version + nonce + campaign meta
MSG_WELCOME = 2  # worker -> parent: version + slots + nonce + worker proof
MSG_GET = 3  # worker -> parent: one idle slot requests one task
MSG_PROGRAM = 4  # parent -> worker: content-addressed compiled program
MSG_TASK = 5  # parent -> worker: one campaign cell
MSG_ROW = 6  # worker -> parent: one completed result row
MSG_HEARTBEAT = 7  # worker -> parent: liveness
MSG_ERROR = 8  # worker -> parent: a cell died worker-side (slot crash)
MSG_BYE = 9  # either direction: orderly goodbye
MSG_AUTH = 10  # parent -> worker: the parent's HMAC proof

_HEADER = struct.Struct("!4sBI")
_CRC = struct.Struct("!I")
_INDEX = struct.Struct("!I")

#: Environment knob for the worker fleet; an explicit ``hosts=`` argument
#: always wins (precedence: argument > env — same convention as
#: ``REPRO_SWEEP_WORKERS``).
HOSTS_ENV = "REPRO_SWEEP_HOSTS"

#: Pre-shared fleet secret; an explicit ``secret=``/``--secret-file``
#: always wins (see :func:`resolve_secret`).
SECRET_ENV = "REPRO_SWEEP_SECRET"

#: Timing knobs (seconds), env-overridable so tests can tighten them.
HEARTBEAT_INTERVAL_ENV = "REPRO_SWEEP_HEARTBEAT_S"
HEARTBEAT_TIMEOUT_ENV = "REPRO_SWEEP_HEARTBEAT_TIMEOUT_S"
CONNECT_TIMEOUT_ENV = "REPRO_SWEEP_CONNECT_TIMEOUT_S"
REJOIN_WINDOW_ENV = "REPRO_SWEEP_REJOIN_S"
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0
DEFAULT_HEARTBEAT_TIMEOUT_S = 10.0
DEFAULT_CONNECT_TIMEOUT_S = 10.0

#: How long the scheduler keeps a campaign alive with *zero* usable
#: workers, waiting for a rejoin, before raising SweepError.
DEFAULT_REJOIN_WINDOW_S = 10.0

#: Straggler-hedging knobs.  Hedging is on by default; it cannot change
#: canonical bytes (results are deterministic, duplicates are dropped) so
#: the only cost is an occasionally wasted slot.
HEDGE_ENV = "REPRO_SWEEP_HEDGE"  # "0" disables
HEDGE_FACTOR_ENV = "REPRO_SWEEP_HEDGE_FACTOR"
HEDGE_MIN_ROWS_ENV = "REPRO_SWEEP_HEDGE_MIN_ROWS"
DEFAULT_HEDGE_FACTOR = 2.0
DEFAULT_HEDGE_MIN_ROWS = 8

#: An in-flight cell is never hedged before running at least this long.
_HEDGE_FLOOR_S = 0.1

#: At most this many concurrent copies of one cell (original + hedges).
_HEDGE_MAX_COPIES = 2

#: Redial (rejoin) backoff: first attempt after _REDIAL_BASE_S, doubling
#: per failure up to _REDIAL_CAP_S; each attempt gives the worker
#: _REDIAL_TIMEOUT_S to finish the handshake so a half-up host cannot
#: stall the scheduler loop for long.
_REDIAL_BASE_S = 0.25
_REDIAL_CAP_S = 5.0
_REDIAL_TIMEOUT_S = 2.0

#: Socket send timeout: a peer that cannot drain a frame in this long is
#: as good as dead.
_SEND_TIMEOUT_S = 30.0


def _env_seconds(name: str, default: float) -> float:
    """A positive, finite number of seconds from the environment.

    Zero, negative, NaN and infinite values raise :class:`SweepError`
    naming the variable (the ``REPRO_SWEEP_WORKERS`` convention): a
    mis-typed knob must never silently configure a broken fleet.
    """
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    try:
        parsed = float(value)
    except ValueError:
        raise SweepError(f"{name} must be a number of seconds, got {value!r}") from None
    if math.isnan(parsed) or math.isinf(parsed) or parsed <= 0:
        raise SweepError(
            f"{name} must be a positive finite number of seconds, got {value!r}"
        )
    return parsed


def _env_count(name: str, default: int) -> int:
    """A positive integer from the environment (same validation idiom)."""
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise SweepError(f"{name} must be an integer >= 1, got {value!r}") from None
    if parsed < 1:
        raise SweepError(f"{name} must be an integer >= 1, got {value!r}")
    return parsed


class ProtocolError(SweepError):
    """A peer spoke something that is not the VirtualWire job protocol."""


class ConnectionLost(ProtocolError):
    """The TCP stream ended mid-conversation (EOF or reset)."""


# ---------------------------------------------------------------------------
# Pre-shared-key authentication
# ---------------------------------------------------------------------------


def resolve_secret(
    secret: Optional[Any] = None, secret_file: Optional[str] = None
) -> Optional[bytes]:
    """The fleet's pre-shared secret, or ``None`` when unconfigured.

    Precedence: explicit *secret* (str or bytes) > *secret_file* (its
    stripped content) > the ``REPRO_SWEEP_SECRET`` environment variable.
    An unreadable or empty secret file is a :class:`SweepError` — a fleet
    that *meant* to authenticate must never silently run open.
    """
    if secret is not None:
        data = secret.encode("utf-8") if isinstance(secret, str) else bytes(secret)
        return data or None
    if secret_file is not None:
        try:
            with open(secret_file, "rb") as handle:
                data = handle.read().strip()
        except OSError as exc:
            raise SweepError(
                f"cannot read secret file {secret_file!r}: {exc}"
            ) from None
        if not data:
            raise SweepError(f"secret file {secret_file!r} is empty")
        return data
    env = os.environ.get(SECRET_ENV)
    if env:
        return env.encode("utf-8")
    return None


def _fresh_nonce() -> str:
    return os.urandom(16).hex()


def _auth_proof(
    secret: Optional[bytes], role: str, nonce_a: str, nonce_b: str
) -> str:
    """HMAC-SHA256 proof of the shared secret over both handshake nonces.

    The *role* prefix and the nonce order differ between the worker's and
    the parent's proof, so one side's proof can never be replayed as the
    other's.  With no secret configured the key is empty — both-open
    peers still agree, a one-sided secret is always a mismatch.
    """
    key = secret if secret is not None else b""
    message = b"|".join(
        (b"vwjp-v2", role.encode("ascii"), nonce_a.encode(), nonce_b.encode())
    )
    return hmac.new(key, message, hashlib.sha256).hexdigest()


# ---------------------------------------------------------------------------
# Host parsing
# ---------------------------------------------------------------------------


def parse_hosts(value: Any) -> List[Tuple[str, int]]:
    """Normalise a fleet description into ``[(host, port), ...]``.

    Accepts a ``"host:port,host:port"`` string (whitespace around entries
    is ignored), an iterable of such strings, or an iterable of ``(host,
    port)`` pairs.  Mis-specified entries raise :class:`SweepError` —
    same convention as the ``REPRO_SWEEP_WORKERS`` validation: never a
    silent fallback.  Duplicate entries are rejected (each worker serves
    one parent; dialling it twice would deadlock the second connection),
    and IPv6 bracket/colon syntax is rejected with a clear error — the
    fleet syntax supports hostnames and IPv4 addresses only.
    """
    if isinstance(value, str):
        entries: Sequence[Any] = [
            v.strip() for v in value.split(",") if v.strip() != ""
        ]
    else:
        entries = list(value)
    hosts: List[Tuple[str, int]] = []
    seen: Set[Tuple[str, int]] = set()
    for entry in entries:
        if isinstance(entry, tuple) and len(entry) == 2:
            host, port = entry
        elif isinstance(entry, str):
            entry = entry.strip()
            if "[" in entry or "]" in entry:
                raise SweepError(
                    f"worker host {entry!r}: IPv6 bracket syntax is not "
                    f"supported — the fleet syntax takes hostnames or "
                    f"IPv4 addresses ('host:port')"
                )
            host, sep, port = entry.rpartition(":")
            if sep == "" or host == "":
                raise SweepError(
                    f"worker host {entry!r} must be 'host:port' (e.g. "
                    f"127.0.0.1:7777)"
                )
            host = host.strip()
            port = port.strip()
            if ":" in host:
                raise SweepError(
                    f"worker host {entry!r}: multiple ':' separators — "
                    f"IPv6 addresses are not supported by the fleet "
                    f"syntax; use a hostname or IPv4 address"
                )
        else:
            raise SweepError(
                f"worker host entry must be 'host:port' or (host, port), "
                f"got {entry!r}"
            )
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise SweepError(
                f"worker host {entry!r}: port must be an integer"
            ) from None
        if not 1 <= port <= 65535:
            raise SweepError(
                f"worker host {entry!r}: port must be in 1..65535, got {port}"
            )
        pair = (str(host), port)
        if pair in seen:
            raise SweepError(
                f"duplicate worker host {pair[0]}:{pair[1]} — each worker "
                f"serves one parent connection; list it once"
            )
        seen.add(pair)
        hosts.append(pair)
    if not hosts:
        raise SweepError("worker host list is empty")
    return hosts


def default_hosts() -> Optional[List[Tuple[str, int]]]:
    """The fleet named by ``REPRO_SWEEP_HOSTS``, or ``None`` when unset."""
    env = os.environ.get(HOSTS_ENV)
    if env is None or env == "":
        return None
    try:
        return parse_hosts(env)
    except SweepError as exc:
        raise SweepError(f"{HOSTS_ENV}: {exc}") from None


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(mtype: int, payload: bytes) -> bytes:
    """One wire frame: header, payload, CRC over (type byte + payload)."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte protocol limit"
        )
    crc = _crc32_frame(mtype, payload)
    return _HEADER.pack(MAGIC, mtype, len(payload)) + payload + _CRC.pack(crc)


def _crc32_frame(mtype: int, payload: bytes) -> int:
    import zlib

    return zlib.crc32(bytes((mtype,)) + payload) & 0xFFFFFFFF


class FrameBuffer:
    """Incremental frame parser for the parent's non-blocking sockets."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> Optional[Tuple[int, bytes]]:
        """Pop one complete frame, or ``None`` if more bytes are needed.

        Raises :class:`ProtocolError` on bad magic, a length prefix above
        the :data:`MAX_FRAME` limit (checked **before** any payload is
        buffered — a garbage length can never provoke an allocation) or a
        CRC mismatch.  The connection is unrecoverable after that.
        """
        if len(self._buffer) < _HEADER.size:
            return None
        magic, mtype, length = _HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise ProtocolError(
                f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
            )
        if length > MAX_FRAME:
            raise ProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME}-byte limit"
            )
        total = _HEADER.size + length + _CRC.size
        if len(self._buffer) < total:
            return None
        payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
        (crc,) = _CRC.unpack_from(self._buffer, _HEADER.size + length)
        del self._buffer[:total]
        if crc != _crc32_frame(mtype, payload):
            raise ProtocolError("frame CRC mismatch")
        return mtype, payload


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        try:
            chunk = sock.recv(count - len(chunks))
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise ConnectionLost(f"connection lost mid-frame: {exc}") from None
        if not chunk:
            raise ConnectionLost("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


def read_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Blocking read of one complete frame (the worker's receive path).

    The length prefix is validated against :data:`MAX_FRAME` before any
    payload byte is read, so a garbage or malicious peer cannot provoke
    an unbounded allocation.
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, mtype, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte limit"
        )
    payload = _recv_exact(sock, length)
    (crc,) = _CRC.unpack(_recv_exact(sock, _CRC.size))
    if crc != _crc32_frame(mtype, payload):
        raise ProtocolError("frame CRC mismatch")
    return mtype, payload


def _json_payload(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _parse_json(payload: bytes, what: str) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable {what} payload: {exc}") from None


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses the classic RCE gadget modules.

    The handshake already authenticates the peer, but there is no reason
    to let a stray byte stream reach ``os.system`` — task functions and
    compiled programs only ever live under ``repro`` or the caller's own
    campaign modules, so the blocklist costs nothing.
    """

    def find_class(self, module: str, name: str) -> Any:
        qualified = f"{module}.{name}"
        if module in ("os", "subprocess", "posix", "nt") or qualified in (
            "builtins.eval",
            "builtins.exec",
            "builtins.compile",
            "builtins.open",
        ):
            raise ProtocolError(
                f"refusing to unpickle {qualified} from the job stream"
            )
        return super().find_class(module, name)


def _loads(payload: bytes, what: str) -> Any:
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — any unpickle failure is protocol-level
        raise ProtocolError(f"undecodable {what} payload: {exc!r}") from None


# ---------------------------------------------------------------------------
# Content-addressed program shipping
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgramRef:
    """Wire placeholder for a :class:`CompiledProgram` param: its content
    hash.  The worker swaps the real program back in from its
    per-campaign store (pushed at most once per worker)."""

    hash: str


def export_task(task: SweepTask) -> Tuple[SweepTask, Dict[str, Any]]:
    """Split a task into its wire form and the programs it references.

    Every :class:`CompiledProgram` param becomes a :class:`ProgramRef`;
    the returned mapping is ``content_hash -> program`` for the scheduler
    to push (once per worker) before the task.
    """
    from ..core.tables import CompiledProgram  # local: avoid import cycle

    programs: Dict[str, Any] = {}
    params: Dict[str, Any] = {}
    for key, value in task.params.items():
        if isinstance(value, CompiledProgram):
            content = value.content_hash()
            programs[content] = value
            params[key] = ProgramRef(content)
        else:
            params[key] = value
    wire = SweepTask(
        index=task.index,
        name=task.name,
        seed=task.seed,
        fn=task.fn,
        params=params,
    )
    return wire, programs


def resolve_task(task: SweepTask, programs: Dict[str, Any]) -> SweepTask:
    """Swap :class:`ProgramRef` params back to real programs (worker side).

    Raises :class:`ProtocolError` when a referenced program was never
    pushed — a scheduler bug, not a task failure.
    """
    params: Dict[str, Any] = {}
    for key, value in task.params.items():
        if isinstance(value, ProgramRef):
            if value.hash not in programs:
                raise ProtocolError(
                    f"task {task.index} references program "
                    f"{value.hash[:12]}… which was never pushed"
                )
            params[key] = programs[value.hash]
        else:
            params[key] = value
    task.params = params
    return task


# ---------------------------------------------------------------------------
# The worker: one host serving N local slots
# ---------------------------------------------------------------------------


class WorkerServer:
    """``repro worker``: serve campaign cells over N local process slots.

    Listens for one parent at a time (campaigns are sequential); for each
    connection it runs the authenticated v2 handshake (HELLO/WELCOME/
    AUTH — no pickle-bearing frame is deserialised until the parent's
    HMAC proof verifies), spins up a fresh :class:`ProcessPoolExecutor`
    of ``slots`` workers, announces one GET per slot, and then executes
    TASK frames as they arrive — sending a ROW (and a fresh GET) per
    completion and heartbeating in the background.  The per-connection
    program store means a parent pushes each compiled program at most
    once per campaign.

    A slot process that hard-dies breaks the local pool: the casualty is
    reported upstream as an ERROR frame (the parent re-queues it against
    its retry budget) and the pool is rebuilt, so one poisoned cell
    cannot take the host out of the fleet.

    ``max_idle`` seconds without a parent connection makes
    :meth:`serve_forever` return (``idle_exit`` set), so orphaned fleet
    processes do not leak on shared hosts.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        slots: Optional[int] = None,
        secret: Optional[Any] = None,
        secret_file: Optional[str] = None,
        max_idle: Optional[float] = None,
    ) -> None:
        if slots is not None and slots < 1:
            raise SweepError(f"worker slots must be >= 1, got {slots}")
        if max_idle is not None and not max_idle > 0:
            raise SweepError(f"worker max_idle must be > 0 seconds, got {max_idle}")
        self.slots = slots if slots is not None else default_workers()
        self.secret = resolve_secret(secret, secret_file)
        self.max_idle = max_idle
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        #: campaigns served since start (observability / tests).
        self.campaigns_served = 0
        #: peers rejected by the authenticated handshake (observability).
        self.auth_failures = 0
        #: serve_forever returned because max_idle expired.
        self.idle_exit = False

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def serve_forever(self) -> None:
        """Accept parents until :meth:`stop`, listener death, or
        ``max_idle`` seconds without a parent."""
        last_parent = time.monotonic()
        if self.max_idle is not None:
            # Wake from accept() often enough to notice idleness.
            self._listener.settimeout(min(0.5, self.max_idle / 4))
        try:
            while not self._stop.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    if (
                        self.max_idle is not None
                        and time.monotonic() - last_parent > self.max_idle
                    ):
                        self.idle_exit = True
                        break
                    continue
                except OSError:
                    break  # listener closed by stop()
                try:
                    if self._serve_connection(conn):
                        self.campaigns_served += 1
                except (ProtocolError, OSError):
                    pass  # a broken parent must not kill the worker
                finally:
                    last_parent = time.monotonic()
                    try:
                        conn.close()
                    except OSError:
                        pass
        finally:
            self.stop()

    # ------------------------------------------------------------------

    def _refuse(self, conn: socket.socket, error: str) -> bool:
        """Answer BYE with a reason and refuse the connection."""
        try:
            conn.sendall(encode_frame(MSG_BYE, _json_payload({"error": error})))
        except OSError:
            pass
        return False

    def _serve_connection(self, conn: socket.socket) -> bool:
        """Serve one parent; returns True when a campaign was served."""
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        mtype, payload = read_frame(conn)
        if mtype != MSG_HELLO:
            raise ProtocolError(f"expected HELLO, got message type {mtype}")
        hello = _parse_json(payload, "HELLO")
        version = hello.get("version")
        if version != PROTOCOL_VERSION:
            return self._refuse(
                conn,
                f"protocol version mismatch: parent speaks {version}, "
                f"worker speaks {PROTOCOL_VERSION} (v2 added the "
                f"authenticated handshake — upgrade both peers)",
            )
        parent_nonce = hello.get("nonce")
        if not isinstance(parent_nonce, str) or len(parent_nonce) < 16:
            return self._refuse(
                conn,
                "HELLO carries no handshake nonce — the v2 protocol "
                "authenticates before any task is accepted",
            )
        worker_nonce = _fresh_nonce()
        watchdog = None
        config = hello.get("watchdog")
        if config:
            watchdog = Watchdog(
                timeout=float(config["timeout"]),
                retries=int(config.get("retries", 0)),
                backoff=float(config.get("backoff", 0.0)),
            )

        send_lock = threading.Lock()
        alive = threading.Event()
        alive.set()

        def send(mtype: int, payload: bytes) -> None:
            frame = encode_frame(mtype, payload)
            with send_lock:
                conn.sendall(frame)

        send(
            MSG_WELCOME,
            _json_payload(
                {
                    "version": PROTOCOL_VERSION,
                    "slots": self.slots,
                    "nonce": worker_nonce,
                    "proof": _auth_proof(
                        self.secret, "worker", parent_nonce, worker_nonce
                    ),
                }
            ),
        )
        # The parent must prove itself before ANY pickle-bearing frame is
        # deserialised: the very next frame must be a valid AUTH.
        mtype, payload = read_frame(conn)
        if mtype != MSG_AUTH:
            self.auth_failures += 1
            return self._refuse(
                conn,
                f"authentication required: expected AUTH, got message "
                f"type {mtype} — no task is accepted before the parent "
                f"proves the fleet secret",
            )
        auth = _parse_json(payload, "AUTH")
        expected = _auth_proof(self.secret, "parent", worker_nonce, parent_nonce)
        if not hmac.compare_digest(str(auth.get("proof", "")), expected):
            self.auth_failures += 1
            return self._refuse(
                conn,
                "authentication failed: parent proof does not match this "
                "worker's secret (wrong or missing REPRO_SWEEP_SECRET / "
                "--secret-file?)",
            )

        interval = _env_seconds(
            HEARTBEAT_INTERVAL_ENV, DEFAULT_HEARTBEAT_INTERVAL_S
        )

        def heartbeat() -> None:
            while alive.is_set():
                if self._stop.wait(interval):
                    break
                if not alive.is_set():
                    break
                try:
                    send(MSG_HEARTBEAT, b"{}")
                except OSError:
                    break

        beat = threading.Thread(target=heartbeat, daemon=True)
        beat.start()

        programs: Dict[str, Any] = {}
        pool = ProcessPoolExecutor(
            max_workers=self.slots,
            mp_context=_pool_context(),
            initializer=_worker_init,
        )

        def finish(index: int, future: Any) -> None:
            """Completion callback (executor thread): ROW or ERROR, then
            ask for more work."""
            if not alive.is_set():
                return
            try:
                try:
                    row = future.result()
                except BaseException as exc:  # slot process died
                    send(
                        MSG_ERROR,
                        _json_payload(
                            {
                                "index": index,
                                "error": f"worker died: {type(exc).__name__}",
                                "detail": f"slot process executing task "
                                f"{index} died: {exc!r}",
                            }
                        ),
                    )
                else:
                    send(MSG_ROW, _json_payload(row.to_record()))
                send(MSG_GET, b"{}")
            except OSError:
                alive.clear()  # parent is gone; stop reporting

        try:
            for _ in range(self.slots):
                send(MSG_GET, b"{}")
            while True:
                mtype, payload = read_frame(conn)
                if mtype == MSG_PROGRAM:
                    shipment = _loads(payload, "PROGRAM")
                    programs[str(shipment["hash"])] = shipment["program"]
                elif mtype == MSG_TASK:
                    (index,) = _INDEX.unpack_from(payload)
                    try:
                        task = _loads(payload[_INDEX.size:], "TASK")
                        task = resolve_task(task, programs)
                    except ProtocolError as exc:
                        # Undeliverable cell: report it instead of dying —
                        # the parent owns the retry/fail decision.
                        send(
                            MSG_ERROR,
                            _json_payload(
                                {
                                    "index": index,
                                    "error": "worker died: UndeliverableTask",
                                    "detail": str(exc),
                                }
                            ),
                        )
                        send(MSG_GET, b"{}")
                        continue
                    try:
                        future = pool.submit(execute_task, task, watchdog)
                    except BrokenProcessPool:
                        # A previous casualty broke the pool: rebuild and
                        # retry the submission once on the fresh pool.
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(
                            max_workers=self.slots,
                            mp_context=_pool_context(),
                            initializer=_worker_init,
                        )
                        future = pool.submit(execute_task, task, watchdog)
                    future.add_done_callback(
                        lambda fut, idx=task.index: finish(idx, fut)
                    )
                elif mtype == MSG_BYE:
                    break
                elif mtype in (MSG_HEARTBEAT, MSG_GET):
                    continue  # tolerated, not part of the parent's grammar
                else:
                    raise ProtocolError(
                        f"unexpected message type {mtype} from parent"
                    )
        except ConnectionLost:
            pass  # parent died (SIGKILL, crash): clean up and re-accept
        finally:
            alive.clear()
            pool.shutdown(wait=False, cancel_futures=True)
        return True


# ---------------------------------------------------------------------------
# The parent: pull-based scheduler over the fleet
# ---------------------------------------------------------------------------


@dataclass
class _Conn:
    """Parent-side state for one worker connection."""

    sock: socket.socket
    address: str
    slots: int = 0
    idle: int = 0
    pushed: Set[str] = field(default_factory=set)
    #: task index -> perf_counter() at dispatch on THIS connection.
    inflight: Dict[int, float] = field(default_factory=dict)
    buffer: FrameBuffer = field(default_factory=FrameBuffer)
    last_seen: float = field(default_factory=time.monotonic)


class TcpExecutor(SweepExecutor):
    """The ``tcp`` backend: campaign cells over a ``repro worker`` fleet."""

    def initial_workers(self, workers: Optional[int]) -> int:
        if workers is not None and workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        # The true worker count is the fleet's advertised slot total,
        # known only after the HELLO exchange; 0 is the placeholder.
        return 0

    def run(self, tasks: List[SweepTask], ctx: ExecutorContext) -> BackendRun:
        hosts = ctx.hosts
        if hosts is None:
            hosts = default_hosts()
        else:
            hosts = parse_hosts(hosts)
        if not hosts:
            raise SweepError(
                "the tcp backend needs a worker fleet: pass hosts= "
                "(--hosts host:port,...) or set REPRO_SWEEP_HOSTS"
            )
        scheduler = _Scheduler(tasks, ctx, hosts)
        return scheduler.run()


class _Scheduler:
    """One campaign's self-healing pull-based dispatch loop."""

    def __init__(
        self,
        tasks: List[SweepTask],
        ctx: ExecutorContext,
        hosts: List[Tuple[str, int]],
    ) -> None:
        self.ctx = ctx
        self.tasks = tasks
        self.tasks_by_index = {task.index: task for task in tasks}
        self.pending: Deque[SweepTask] = deque(
            sorted(tasks, key=lambda task: task.index)
        )
        self.rows: Dict[int, SweepResult] = {}
        self.losses: Dict[int, int] = {}
        self.loss_notes: Dict[int, str] = {}
        self.started: Dict[int, float] = {}
        #: live in-flight copy count per task index (hedging makes >1).
        self.copies: Dict[int, int] = {}
        #: worker addresses whose connection-death was charged to a task
        #: and not yet forgiven by a rejoin.
        self.loss_sources: Dict[int, List[str]] = {}
        #: (task, worker) pairs already forgiven — one flap, one pardon.
        self.forgiven: Dict[int, Set[str]] = {}
        #: parent-observed completion times; feeds the hedging p95.
        self.durations: List[float] = []
        self.hosts = hosts
        self.addresses = {f"{host}:{port}": (host, port) for host, port in hosts}
        self.conns: Dict[str, _Conn] = {}
        #: hosts that can never join (e.g. failed authentication).
        self.dead_hosts: Dict[str, str] = {}
        #: monotonic time before which each lost host is not redialled.
        self.redial_at: Dict[str, float] = {}
        self.redial_backoff: Dict[str, float] = {}
        self.fleet_down_since: Optional[float] = None
        self.selector = selectors.DefaultSelector()
        self.aborted = False
        self.interrupted = False
        self.secret = resolve_secret(ctx.secret)
        self.health = FleetHealth()
        self.heartbeat_timeout = _env_seconds(
            HEARTBEAT_TIMEOUT_ENV, DEFAULT_HEARTBEAT_TIMEOUT_S
        )
        self.rejoin_window = _env_seconds(
            REJOIN_WINDOW_ENV, DEFAULT_REJOIN_WINDOW_S
        )
        self.hedge_enabled = os.environ.get(HEDGE_ENV, "1") != "0"
        self.hedge_factor = _env_seconds(HEDGE_FACTOR_ENV, DEFAULT_HEDGE_FACTOR)
        self.hedge_min_rows = _env_count(
            HEDGE_MIN_ROWS_ENV, DEFAULT_HEDGE_MIN_ROWS
        )
        self.stats = {
            "rejoins": 0,
            "requeues": 0,
            "forgiven_losses": 0,
            "hedges": 0,
            "hedge_duplicates": 0,
            "hedge_mismatches": 0,
        }

    # -- connection management -----------------------------------------

    def _hello_payload(self, nonce: str) -> bytes:
        meta = self.ctx.meta or {}
        watchdog = self.ctx.watchdog
        return _json_payload(
            {
                "version": PROTOCOL_VERSION,
                "nonce": nonce,
                "spec_name": meta.get("name"),
                "base_seed": meta.get("base_seed"),
                "tasks": len(self.tasks),
                "watchdog": (
                    {
                        "timeout": watchdog.timeout,
                        "retries": watchdog.retries,
                        "backoff": watchdog.backoff,
                    }
                    if watchdog
                    else None
                ),
            }
        )

    def _handshake(self, sock: socket.socket, address: str) -> _Conn:
        """Run the parent side of the authenticated handshake; raises
        :class:`ProtocolError` on version or proof mismatch."""
        nonce = _fresh_nonce()
        sock.sendall(encode_frame(MSG_HELLO, self._hello_payload(nonce)))
        mtype, payload = read_frame(sock)
        if mtype == MSG_BYE:
            reason = _parse_json(payload, "BYE").get("error", "refused")
            raise ProtocolError(f"{address}: {reason}")
        if mtype != MSG_WELCOME:
            raise ProtocolError(f"{address}: expected WELCOME, got type {mtype}")
        welcome = _parse_json(payload, "WELCOME")
        if welcome.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"{address}: protocol version mismatch "
                f"(worker speaks {welcome.get('version')}, parent "
                f"speaks {PROTOCOL_VERSION})"
            )
        worker_nonce = welcome.get("nonce")
        if not isinstance(worker_nonce, str) or len(worker_nonce) < 16:
            raise ProtocolError(
                f"{address}: worker sent no handshake nonce (pre-v2 worker?)"
            )
        expected = _auth_proof(self.secret, "worker", nonce, worker_nonce)
        if not hmac.compare_digest(str(welcome.get("proof", "")), expected):
            raise ProtocolError(
                f"{address}: worker failed authentication — its proof does "
                f"not match this parent's secret (wrong or missing "
                f"REPRO_SWEEP_SECRET / --secret-file?)"
            )
        sock.sendall(
            encode_frame(
                MSG_AUTH,
                _json_payload(
                    {"proof": _auth_proof(self.secret, "parent", worker_nonce, nonce)}
                ),
            )
        )
        return _Conn(
            sock=sock,
            address=address,
            slots=max(1, int(welcome.get("slots", 1))),
        )

    def _dial(self, host: str, port: int, timeout: float) -> _Conn:
        """One connect + handshake attempt (raises OSError/ProtocolError)."""
        address = f"{host}:{port}"
        sock = socket.create_connection((host, port), timeout=timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(timeout)
            conn = self._handshake(sock, address)
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        return conn

    def _admit(self, conn: _Conn) -> None:
        """Register a freshly handshaken worker; a rejoin forgives the
        connection losses previously charged to this address."""
        conn.sock.settimeout(_SEND_TIMEOUT_S)
        conn.last_seen = time.monotonic()
        self.selector.register(conn.sock, selectors.EVENT_READ, conn)
        self.conns[conn.address] = conn
        self.fleet_down_since = None
        self.redial_backoff.pop(conn.address, None)
        self.redial_at.pop(conn.address, None)
        rejoined = self.health.record_connect(conn.address)
        if rejoined:
            self.stats["rejoins"] += 1
            self._forgive_losses(conn.address)
        total = sum(c.slots for c in self.conns.values())
        if self.ctx.effective_workers is None or total > self.ctx.effective_workers:
            self.ctx.effective_workers = total

    def _forgive_losses(self, address: str) -> None:
        """A worker that died and rejoined healthy was an infrastructure
        flap, not a poisonous cell: refund one charged loss per (cell,
        worker) pair for cells that have not yet produced a row."""
        for index, sources in self.loss_sources.items():
            if index in self.rows:
                continue
            pardoned = self.forgiven.setdefault(index, set())
            if address in sources and address not in pardoned:
                sources.remove(address)
                pardoned.add(address)
                if self.losses.get(index, 0) > 0:
                    self.losses[index] -= 1
                    self.stats["forgiven_losses"] += 1

    def _connect_fleet(self) -> None:
        deadline = time.monotonic() + _env_seconds(
            CONNECT_TIMEOUT_ENV, DEFAULT_CONNECT_TIMEOUT_S
        )
        errors: List[str] = []
        for host, port in self.hosts:
            address = f"{host}:{port}"
            conn: Optional[_Conn] = None
            while True:
                try:
                    conn = self._dial(host, port, timeout=_SEND_TIMEOUT_S)
                    break
                except ProtocolError as exc:
                    errors.append(str(exc))
                    if "authentication" in str(exc) or "version mismatch" in str(exc):
                        # A wrong secret or an old peer never heals by
                        # redialling: write the host off for the campaign.
                        self.dead_hosts[address] = str(exc)
                    break
                except OSError as exc:
                    if time.monotonic() >= deadline:
                        errors.append(f"{address}: {exc}")
                        break
                    time.sleep(0.05)
            if conn is not None:
                self._admit(conn)
            elif address not in self.dead_hosts:
                # Not reachable yet: keep redialling — a late worker can
                # still join the campaign.
                self._schedule_redial(address, None)
        if not self.conns:
            raise SweepError(
                "tcp backend could not reach any worker: "
                + "; ".join(errors or ["no hosts"])
            )

    def _schedule_redial(self, address: str, quarantine_s: Optional[float]) -> None:
        now = time.monotonic()
        current = self.redial_backoff.get(address, _REDIAL_BASE_S)
        delay = max(current, quarantine_s or 0.0)
        self.redial_at[address] = now + delay
        self.redial_backoff[address] = min(current * 2, _REDIAL_CAP_S)

    def _maybe_redial(self) -> None:
        """Attempt at most one due redial per loop tick (a blocking
        handshake attempt is bounded by ``_REDIAL_TIMEOUT_S``)."""
        if self.aborted:
            return
        if not self.pending and len(self.rows) == len(self.tasks):
            return
        now = time.monotonic()
        for address, (host, port) in self.addresses.items():
            if address in self.conns or address in self.dead_hosts:
                continue
            due = self.redial_at.get(address)
            if due is None or now < due:
                continue
            if self.health.is_quarantined(address, now):
                self.redial_at[address] = now + self.health.quarantine_remaining(
                    address, now
                )
                continue
            try:
                conn = self._dial(host, port, timeout=_REDIAL_TIMEOUT_S)
            except ProtocolError as exc:
                if "authentication" in str(exc) or "version mismatch" in str(exc):
                    self.dead_hosts[address] = str(exc)
                else:
                    self._schedule_redial(address, None)
            except OSError:
                self._schedule_redial(address, None)
            else:
                self._admit(conn)
            return  # one attempt per tick keeps the loop responsive

    def _send(self, conn: _Conn, mtype: int, payload: bytes) -> None:
        conn.sock.sendall(encode_frame(mtype, payload))

    def _lose(self, conn: _Conn, reason: str) -> None:
        """Declare a worker lost: re-queue its in-flight cells, charge the
        losses to this address (forgivable on rejoin), score its health
        and schedule a redial."""
        if self.conns.get(conn.address) is not conn:
            return
        del self.conns[conn.address]
        try:
            self.selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        quarantine = self.health.record_failure(conn.address, "loss")
        requeued: List[SweepTask] = []
        for index in sorted(conn.inflight):
            self.copies[index] = max(0, self.copies.get(index, 1) - 1)
            if index in self.rows:
                continue
            if self.copies[index] > 0:
                continue  # a hedged copy is still running elsewhere
            self.loss_sources.setdefault(index, []).append(conn.address)
            self._record_casualty(index, f"worker {conn.address} lost: {reason}")
            if index not in self.rows:
                requeued.append(self.tasks_by_index[index])
        conn.inflight.clear()
        if requeued:
            self.stats["requeues"] += len(requeued)
            self.pending = deque(
                sorted(
                    list(self.pending) + requeued, key=lambda task: task.index
                )
            )
        self._schedule_redial(conn.address, quarantine)
        if not self.conns and self.fleet_down_since is None:
            self.fleet_down_since = time.monotonic()

    def _record_casualty(self, index: int, note: str) -> None:
        """Count one lost execution of the cell; emit the deterministic
        FAILED row once the budget (``retries`` re-queues) is spent."""
        task = self.tasks_by_index[index]
        self.losses[index] = self.losses.get(index, 0) + 1
        self.loss_notes[index] = note
        if self.losses[index] <= self.ctx.retries:
            return
        row = SweepResult(
            index=index,
            name=task.name,
            seed=task.seed,
            status=SweepResult.FAILED,
            error="worker died: connection lost",
            error_detail=(
                f"task {index} ({task.name!r}) lost {self.losses[index]} "
                f"worker(s); last: {note}"
            ),
            attempts=self.losses[index],
            wall_seconds=max(
                0.0, time.perf_counter() - self.started.get(index, time.perf_counter())
            ),
        )
        self._land(row)

    def _land(self, row: SweepResult) -> None:
        self.rows[row.index] = row
        self.ctx.on_row(row)
        if self.ctx.fail_fast and _is_failure(row):
            self.aborted = True

    # -- dispatch -------------------------------------------------------

    def _assign(self, conn: _Conn, task: SweepTask, hedge: bool = False) -> bool:
        """Ship one task to one idle slot; False when the send fails (the
        connection is then declared lost and the task re-queued)."""
        wire, programs = export_task(task)
        try:
            for content, program in programs.items():
                if content not in conn.pushed:
                    self._send(
                        conn,
                        MSG_PROGRAM,
                        pickle.dumps(
                            {"hash": content, "program": program},
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                    conn.pushed.add(content)
            self._send(
                conn,
                MSG_TASK,
                _INDEX.pack(task.index)
                + pickle.dumps(wire, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError as exc:
            conn.inflight.pop(task.index, None)
            self._lose(conn, f"send failed: {exc}")
            if not hedge and task.index not in self.rows:
                self.pending = deque(
                    sorted(list(self.pending) + [task], key=lambda t: t.index)
                )
            return False
        conn.idle -= 1
        conn.inflight[task.index] = time.perf_counter()
        self.copies[task.index] = self.copies.get(task.index, 0) + 1
        if not hedge:
            self.started.setdefault(task.index, time.perf_counter())
        return True

    def _dispatch(self) -> None:
        if self.aborted:
            return
        progress = True
        while progress and self.pending:
            progress = False
            for conn in list(self.conns.values()):
                if not self.pending:
                    break
                if self.health.is_quarantined(conn.address):
                    continue  # connected but benched: no new work
                if conn.idle > 0:
                    task = self.pending.popleft()
                    if self._assign(conn, task):
                        progress = True
        if not self.pending:
            self._hedge_stragglers()

    def _hedge_threshold(self) -> Optional[float]:
        if not self.hedge_enabled or len(self.durations) < self.hedge_min_rows:
            return None
        ordered = sorted(self.durations)
        p95 = ordered[int(0.95 * (len(ordered) - 1))]
        return max(self.hedge_factor * p95, _HEDGE_FLOOR_S)

    def _hedge_stragglers(self) -> None:
        """Speculatively re-dispatch the slowest in-flight cells to idle
        slots on other workers.  First completion wins; the duplicate row
        is discarded (and byte-checked) when it arrives."""
        if self.aborted:
            return
        threshold = self._hedge_threshold()
        if threshold is None:
            return
        now = time.perf_counter()
        elapsed_by_index: Dict[int, float] = {}
        running_on: Dict[int, Set[str]] = {}
        for conn in self.conns.values():
            for index, dispatched in conn.inflight.items():
                elapsed = now - dispatched
                elapsed_by_index[index] = max(
                    elapsed_by_index.get(index, 0.0), elapsed
                )
                running_on.setdefault(index, set()).add(conn.address)
        stragglers = sorted(
            (
                (elapsed, index)
                for index, elapsed in elapsed_by_index.items()
                if elapsed > threshold
                and index not in self.rows
                and self.copies.get(index, 0) < _HEDGE_MAX_COPIES
            ),
            reverse=True,
        )
        for _elapsed, index in stragglers:
            for conn in self.conns.values():
                if (
                    conn.idle > 0
                    and conn.address not in running_on.get(index, set())
                    and not self.health.is_quarantined(conn.address)
                ):
                    if self._assign(conn, self.tasks_by_index[index], hedge=True):
                        self.stats["hedges"] += 1
                    break

    # -- frame handling -------------------------------------------------

    def _handle_frame(self, conn: _Conn, mtype: int, payload: bytes) -> None:
        conn.last_seen = time.monotonic()
        if mtype == MSG_GET:
            conn.idle += 1
        elif mtype == MSG_ROW:
            record = _parse_json(payload, "ROW")
            row = SweepResult.from_record(record)
            dispatched = conn.inflight.pop(row.index, None)
            if dispatched is None:
                return  # unsolicited row: drop
            self.copies[row.index] = max(0, self.copies.get(row.index, 1) - 1)
            self.health.record_row(conn.address, row.wall_seconds)
            if row.index in self.rows:
                # The losing copy of a hedged cell (or a cell already
                # FAILED by the retry budget).  Deterministic tasks make
                # duplicates byte-identical; verify rather than trust.
                self.stats["hedge_duplicates"] += 1
                landed = self.rows[row.index]
                if landed.status == SweepResult.OK and (
                    row.canonical() != landed.canonical()
                ):
                    self.stats["hedge_mismatches"] += 1
                return
            self.durations.append(
                time.perf_counter()
                - self.started.get(row.index, time.perf_counter())
            )
            self._land(row)
        elif mtype == MSG_ERROR:
            report = _parse_json(payload, "ERROR")
            index = int(report.get("index", -1))
            dispatched = conn.inflight.pop(index, None)
            if dispatched is None or index in self.rows:
                return
            self.copies[index] = max(0, self.copies.get(index, 1) - 1)
            # A slot crash is the cell's own doing until proven otherwise:
            # it burns the retry budget and is never forgiven on rejoin.
            self.health.record_failure(conn.address, "error")
            if self.copies[index] > 0:
                return  # a hedged copy is still running elsewhere
            self._record_casualty(
                index,
                f"worker {conn.address} reported: "
                f"{report.get('detail') or report.get('error')}",
            )
            if index not in self.rows:
                self.pending = deque(
                    sorted(
                        list(self.pending) + [self.tasks_by_index[index]],
                        key=lambda t: t.index,
                    )
                )
        elif mtype == MSG_HEARTBEAT:
            self.health.record_heartbeat(conn.address)
        elif mtype == MSG_BYE:
            self._lose(conn, "worker said BYE mid-campaign")
        else:
            raise ProtocolError(f"unexpected message type {mtype} from worker")

    def _pump(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._lose(conn, f"recv failed: {exc}")
            return
        if not data:
            self._lose(conn, "connection closed")
            return
        conn.buffer.feed(data)
        while True:
            try:
                frame = conn.buffer.next_frame()
            except ProtocolError as exc:
                self._lose(conn, str(exc))
                return
            if frame is None:
                return
            self._handle_frame(conn, *frame)
            if self.conns.get(conn.address) is not conn:
                return  # _handle_frame declared it lost

    # -- the loop -------------------------------------------------------

    def _done(self) -> bool:
        if self.aborted:
            return not any(conn.inflight for conn in self.conns.values())
        return len(self.rows) == len(self.tasks)

    def _check_liveness(self) -> None:
        now = time.monotonic()
        for conn in list(self.conns.values()):
            if now - conn.last_seen > self.heartbeat_timeout:
                self._lose(
                    conn,
                    f"missed heartbeats for {now - conn.last_seen:.1f}s "
                    f"(timeout {self.heartbeat_timeout:g}s)",
                )

    def _check_fleet(self) -> None:
        """Raise only when the *whole* fleet has been unusable for the
        rejoin window with work still outstanding — a single sick worker
        (or a restart-in-progress) never fails the campaign."""
        if self.conns or self.aborted:
            return
        if len(self.rows) == len(self.tasks):
            return
        now = time.monotonic()
        if self.fleet_down_since is None:
            self.fleet_down_since = now
        unfinished = len(self.tasks) - len(self.rows)
        if self.addresses and all(
            address in self.dead_hosts for address in self.addresses
        ):
            raise SweepError(
                f"tcp backend lost every worker with {unfinished} task(s) "
                f"unfinished and no host can rejoin: "
                + "; ".join(sorted(self.dead_hosts.values()))
            )
        if now - self.fleet_down_since >= self.rejoin_window:
            raise SweepError(
                f"tcp backend lost every worker with {unfinished} task(s) "
                f"unfinished and none rejoined within "
                f"{self.rejoin_window:g}s (journaled rows are safe; resume "
                f"with a live fleet, or raise {REJOIN_WINDOW_ENV})"
            )

    def _fleet_snapshot(self) -> Dict[str, Any]:
        """What the campaign outcome reports as ``fleet``: per-worker
        health (MetricsRegistry snapshot + quarantine state) plus the
        scheduler's own self-healing counters."""
        return {
            "workers": self.health.snapshot(),
            "scheduler": {key: self.stats[key] for key in sorted(self.stats)},
        }

    def _broadcast_bye(self) -> None:
        for conn in list(self.conns.values()):
            try:
                self._send(conn, MSG_BYE, b"{}")
            except OSError:
                pass
            try:
                self.selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self.conns.clear()
        try:
            self.selector.close()
        except OSError:
            pass

    def run(self) -> BackendRun:
        try:
            self._connect_fleet()
            self._dispatch()
            while not self._done():
                events = self.selector.select(timeout=0.2)
                for key, _mask in events:
                    self._pump(key.data)
                self._check_liveness()
                self._maybe_redial()
                self._check_fleet()
                if self.aborted and not self.conns:
                    break  # aborted with the fleet gone: nothing to wait on
                self._dispatch()
        except KeyboardInterrupt:
            # Graceful abort: the journal already holds every completed
            # row; pending cells stay unsent, in-flight rows are dropped.
            self.aborted = self.interrupted = True
        finally:
            self.ctx.fleet_stats = self._fleet_snapshot()
            self._broadcast_bye()
        return self.rows, self.aborted, self.interrupted


__all__ = [
    "ConnectionLost",
    "FrameBuffer",
    "HOSTS_ENV",
    "MAGIC",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProgramRef",
    "ProtocolError",
    "SECRET_ENV",
    "TcpExecutor",
    "WorkerServer",
    "default_hosts",
    "encode_frame",
    "export_task",
    "parse_hosts",
    "read_frame",
    "resolve_secret",
    "resolve_task",
]
