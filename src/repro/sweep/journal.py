"""Append-only campaign journal: crash-safe durability for sweeps.

A campaign journal is a JSONL file.  Each line is one record — campaign
header, result row, resume marker or end marker — serialised as canonical
JSON carrying its own CRC-32 (computed over the record *without* the
``crc`` field).  Rows are appended and fsync'd **as they land**, so any
interruption of the parent — SIGINT, SIGTERM, OOM kill, ``kill -9`` —
leaves an on-disk state from which :func:`repro.sweep.run_sweep` can
resume (``resume=True`` / ``repro sweep --resume PATH``).

Replay is torn-tail tolerant: a final line that was cut mid-write (no
newline, truncated JSON, CRC mismatch) is discarded and the journal is
still usable — exactly the state a ``kill -9`` produces.  Corruption
*before* the tail (a CRC mismatch followed by further valid records) is
not survivable silently and raises :class:`JournalError`: a journal that
lies about completed rows would break the byte-identity guarantee.

Record types::

    {"type": "campaign", "spec_name": ..., "base_seed": ..., "tasks": N}
    {"type": "row", "fingerprint": ..., **SweepResult.to_record()}
    {"type": "resume", "resumed": N}      # appended on every resume
    {"type": "end", "aborted": ..., "interrupted": ..., "rows": N}

Each ``row`` record carries the cell's :func:`~repro.sweep.spec.
task_fingerprint`; on resume a journaled row is replayed only when the
current task at that index still has the same fingerprint, so editing a
scenario (or the grid shape) re-executes exactly the changed cells.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from .spec import SweepResult, SweepError

#: Journal format version, bumped on incompatible record changes.
JOURNAL_VERSION = 1


class JournalError(SweepError):
    """The journal file is corrupt or belongs to a different campaign."""


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: Dict[str, Any]) -> str:
    """One journal line: the record plus its CRC-32, canonical JSON."""
    body = dict(record)
    body.pop("crc", None)
    crc = zlib.crc32(_canonical(body).encode("utf-8"))
    body["crc"] = crc
    return _canonical(body)


def decode_record(line: str) -> Dict[str, Any]:
    """Parse and CRC-verify one journal line.

    Raises :class:`JournalError` on any mismatch — the caller decides
    whether the failure is a tolerable torn tail or fatal corruption.
    """
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise JournalError(f"undecodable journal line: {exc}") from None
    if not isinstance(record, dict) or "crc" not in record:
        raise JournalError("journal line is not a CRC-carrying record")
    body = dict(record)
    expected = body.pop("crc")
    actual = zlib.crc32(_canonical(body).encode("utf-8"))
    if actual != expected:
        raise JournalError(
            f"journal CRC mismatch (stored {expected}, computed {actual})"
        )
    return body


@dataclass
class JournalState:
    """Everything replay recovers from a journal file."""

    #: the first ``campaign`` header record, or None for an empty file.
    meta: Optional[Dict[str, Any]] = None
    #: latest journaled row per task index, with its fingerprint.
    rows: Dict[int, Tuple[str, SweepResult]] = field(default_factory=dict)
    #: an ``end`` record was seen (the previous run exited cleanly, even
    #: if aborted); its payload is kept for tooling.
    end: Optional[Dict[str, Any]] = None
    #: the final line was torn (cut mid-write) and discarded on replay.
    torn_tail: bool = False
    #: number of resume markers — how many sessions this journal spans.
    resumes: int = 0


def read_journal(path: str) -> JournalState:
    """Replay a journal into a :class:`JournalState`.

    Tolerates a torn final line (the ``kill -9`` signature); raises
    :class:`JournalError` for corruption anywhere else.
    """
    state = JournalState()
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines: List[str] = handle.read().split("\n")
    # A well-formed journal ends with "\n": the split leaves one trailing
    # empty string.  Anything after the last newline is a torn tail.
    records: List[Dict[str, Any]] = []
    for position, line in enumerate(lines):
        if line == "":
            continue
        try:
            records.append(decode_record(line))
        except JournalError:
            remainder = [l for l in lines[position + 1:] if l != ""]
            if remainder:
                raise JournalError(
                    f"{path}: corrupt journal record at line {position + 1} "
                    f"(not a torn tail: {len(remainder)} valid-looking "
                    f"line(s) follow)"
                )
            state.torn_tail = True
            break
    for record in records:
        kind = record.get("type")
        if kind == "campaign":
            if state.meta is None:
                state.meta = record
        elif kind == "row":
            row = SweepResult.from_record(record)
            state.rows[row.index] = (str(record.get("fingerprint", "")), row)
        elif kind == "resume":
            state.resumes += 1
            state.end = None  # the campaign is open again
        elif kind == "end":
            state.end = record
        else:
            raise JournalError(f"{path}: unknown journal record type {kind!r}")
    return state


class JournalWriter:
    """Append-only, fsync-per-record journal writer.

    Every :meth:`write` flushes the line to the OS *and* fsyncs the file
    descriptor before returning — a journaled row survives ``kill -9`` of
    the parent the instant the call returns.  That is the durability
    contract resume relies on; at sweep scale (seconds per row) the fsync
    cost is noise.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if append and os.path.exists(path):
            self._truncate_torn_tail(path)
        self._handle: Optional[IO[str]] = open(
            path, "a" if append else "w", encoding="utf-8"
        )

    @staticmethod
    def _truncate_torn_tail(path: str) -> None:
        """Drop a torn final write before appending, so the journal stays
        replayable forever — gluing new records after a partial line (or
        newline-terminating it) would leave a permanently corrupt record
        in the middle of the file."""
        with open(path, "rb") as probe:
            content = probe.read()
        keep = len(content)
        while keep > 0:
            line_start = content.rfind(b"\n", 0, keep - 1) + 1
            line = content[line_start:keep].rstrip(b"\n")
            if line:
                try:
                    decode_record(line.decode("utf-8", errors="replace"))
                    break  # the suffix ends in a valid record: keep it all
                except JournalError:
                    pass
            keep = line_start
        if keep < len(content):
            with open(path, "r+b") as handle:
                handle.truncate(keep)

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise JournalError("journal writer is closed")
        self._handle.write(encode_record(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Record helpers
    # ------------------------------------------------------------------

    def write_campaign(
        self, spec_name: str, base_seed: int, task_count: int
    ) -> None:
        self.write(
            {
                "type": "campaign",
                "version": JOURNAL_VERSION,
                "spec_name": spec_name,
                "base_seed": base_seed,
                "tasks": task_count,
            }
        )

    def write_resume(self, resumed: int) -> None:
        self.write({"type": "resume", "resumed": resumed})

    def write_row(self, row: SweepResult, fingerprint: str) -> None:
        record = row.to_record()
        record["type"] = "row"
        record["fingerprint"] = fingerprint
        self.write(record)

    def write_end(self, aborted: bool, interrupted: bool, rows: int) -> None:
        self.write(
            {
                "type": "end",
                "aborted": aborted,
                "interrupted": interrupted,
                "rows": rows,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalState",
    "JournalWriter",
    "decode_record",
    "encode_record",
    "read_journal",
]
