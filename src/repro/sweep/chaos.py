"""Fleet chaos harness: real worker subprocesses, real faults.

VirtualWire's campaign tier must survive its own infrastructure's faults
the way its testbed survives injected ones.  This module is the fixture
layer the fleet chaos tests (``tests/sweep/test_fleet_chaos.py``) and the
CI ``fleet-chaos`` smoke job build on:

* :class:`ChaosWorker` — a **real** ``repro worker`` subprocess (own
  process group, pinned port) that can be SIGKILLed, SIGSTOPped,
  SIGCONTed and *restarted on the same port* mid-campaign, which is
  exactly the flap the scheduler's redial/rejoin path must absorb;
* :class:`ChaosProxy` — a TCP forwarder slotted between parent and
  worker that injects socket-level delay or hard-closes live links
  mid-stream, for faults below the job protocol's view;
* :func:`kill_restart_loop` — the killer thread the CI smoke job runs
  against a live campaign.

Everything here is stdlib-only and intentionally boring: the interesting
assertions (campaign completes, rows byte-identical to serial, rejoins
counted) live in the tests.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Callable, List, Optional, Tuple

from .spec import SweepError

#: how long to wait for a freshly spawned worker to print its LISTENING
#: line before declaring the spawn failed.
_SPAWN_TIMEOUT_S = 30.0


def _src_root() -> str:
    """The ``src`` directory that holds the importable ``repro`` package."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _pythonpath(extra: Optional[str] = None) -> str:
    parts = [_src_root()]
    if extra:
        parts.append(extra)
    current = os.environ.get("PYTHONPATH")
    if current:
        parts.append(current)
    return os.pathsep.join(parts)


class ChaosWorker:
    """One real ``repro worker`` subprocess under chaos control.

    The worker runs in its own process group so :meth:`kill` /
    :meth:`suspend` hit the server *and* its pool slots — a SIGKILL that
    left orphan slot processes behind would be a tidier fault than the
    one real fleets see.  The port is pinned on first spawn so
    :meth:`restart` brings the worker back at the same address, which is
    what lets the scheduler's redial loop find it again.
    """

    def __init__(
        self,
        slots: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        secret: Optional[str] = None,
        max_idle: Optional[float] = None,
        extra_pythonpath: Optional[str] = None,
        env: Optional[dict] = None,
    ) -> None:
        self.slots = slots
        self.host = host
        self.port = port  # 0 until the first spawn pins it
        self.secret = secret
        self.max_idle = max_idle
        self.extra_pythonpath = extra_pythonpath
        self.extra_env = dict(env or {})
        self.proc: Optional[subprocess.Popen] = None
        self.start()

    # ------------------------------------------------------------------

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def start(self) -> None:
        """Spawn the worker subprocess and parse its LISTENING line."""
        if self.alive:
            raise SweepError(f"worker {self.address} is already running")
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--host",
            self.host,
            "--port",
            str(self.port),
            "--slots",
            str(self.slots),
        ]
        if self.max_idle is not None:
            cmd += ["--max-idle", str(self.max_idle)]
        env = dict(os.environ)
        env["PYTHONPATH"] = _pythonpath(self.extra_pythonpath)
        env["PYTHONUNBUFFERED"] = "1"
        if self.secret is not None:
            env["REPRO_SWEEP_SECRET"] = self.secret
        else:
            env.pop("REPRO_SWEEP_SECRET", None)
        env.update(self.extra_env)
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
            start_new_session=True,  # own process group: killpg reaches slots
        )
        deadline = time.monotonic() + _SPAWN_TIMEOUT_S
        line = ""
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise SweepError(
                    f"worker exited before LISTENING "
                    f"(rc={self.proc.poll()!r})"
                )
            if line.startswith("LISTENING "):
                break
        else:
            raise SweepError("worker never printed LISTENING")
        _host, _, port = line.strip().rpartition(":")
        self.port = int(port)  # pinned: restarts reuse it

    def restart(self) -> None:
        """Bring a killed worker back on the same address."""
        if self.alive:
            raise SweepError(f"worker {self.address} is still running")
        self.proc = None
        self.start()

    # -- faults ---------------------------------------------------------

    def _signal_group(self, signum: int) -> None:
        if self.proc is None:
            return
        try:
            os.killpg(self.proc.pid, signum)
        except (ProcessLookupError, PermissionError):
            pass

    def kill(self) -> None:
        """SIGKILL the whole worker process group (server + slots)."""
        self._signal_group(signal.SIGKILL)
        if self.proc is not None:
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass

    def suspend(self) -> None:
        """SIGSTOP the group: the worker freezes mid-protocol, heartbeats
        stop, sockets stay open — the classic grey failure."""
        self._signal_group(signal.SIGSTOP)

    def resume(self) -> None:
        self._signal_group(signal.SIGCONT)

    def close(self) -> None:
        """Tear the worker down for good (SIGCONT first: a suspended
        process cannot die)."""
        self._signal_group(signal.SIGCONT)
        self.kill()
        if self.proc is not None and self.proc.stdout is not None:
            try:
                self.proc.stdout.close()
            except OSError:
                pass

    def __enter__(self) -> "ChaosWorker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ChaosProxy:
    """A TCP forwarder that injects socket-level faults mid-stream.

    Sits between the parent and one worker: the parent dials the proxy's
    ``port``, the proxy pipes bytes to/from ``upstream``.  Faults:

    * :meth:`set_delay` — every forwarded chunk sleeps first (latency /
      a slow network);
    * :meth:`cut` — hard-close every live link mid-stream (connection
      reset below the protocol's view); new connections still forward,
      so a redialling scheduler gets through again.
    """

    def __init__(self, upstream: Tuple[str, int], host: str = "127.0.0.1") -> None:
        self.upstream = upstream
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(4)
        self.host, self.port = self._listener.getsockname()[:2]
        self._delay = 0.0
        self._stopped = threading.Event()
        self._links: List[socket.socket] = []
        self._lock = threading.Lock()
        self._accepter = threading.Thread(target=self._accept_loop, daemon=True)
        self._accepter.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def set_delay(self, seconds: float) -> None:
        """Delay every forwarded chunk by *seconds* (0 to clear)."""
        self._delay = max(0.0, seconds)

    def cut(self) -> int:
        """Hard-close every live link; returns how many were cut."""
        with self._lock:
            links, self._links = self._links, []
        for sock in links:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        return len(links)

    def stop(self) -> None:
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.cut()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            try:
                server = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                try:
                    client.close()
                except OSError:
                    pass
                continue
            with self._lock:
                self._links += [client, server]
            for source, sink in ((client, server), (server, client)):
                threading.Thread(
                    target=self._pump, args=(source, sink), daemon=True
                ).start()

    def _pump(self, source: socket.socket, sink: socket.socket) -> None:
        while True:
            try:
                data = source.recv(1 << 16)
            except OSError:
                break
            if not data:
                break
            if self._delay:
                time.sleep(self._delay)
            try:
                sink.sendall(data)
            except OSError:
                break
        for sock in (source, sink):
            try:
                sock.close()
            except OSError:
                pass


def kill_restart_loop(
    worker: ChaosWorker,
    stop: threading.Event,
    period_s: float = 1.0,
    grace_s: float = 0.5,
    on_cycle: Optional[Callable[[int], None]] = None,
) -> int:
    """SIGKILL *worker* every *period_s*, wait *grace_s*, restart it, until
    *stop* is set.  Returns the number of kill/restart cycles — the CI
    smoke job asserts it is > 0, i.e. the campaign really ran under fire.
    """
    cycles = 0
    while not stop.wait(period_s):
        worker.kill()
        if stop.wait(grace_s):
            # Killed but not restarted: bring it back so the fixture's
            # close() semantics stay uniform.
            worker.restart()
            break
        worker.restart()
        cycles += 1
        if on_cycle is not None:
            on_cycle(cycles)
    return cycles


__all__ = ["ChaosProxy", "ChaosWorker", "kill_restart_loop"]
