"""Per-worker health scoring and quarantine for the distributed fleet.

The tcp backend's scheduler treats the fleet itself as a system under
observation: every worker accumulates a health record — connects and
rejoins, completed rows, task-level failures, connection losses,
heartbeat jitter — through the same :class:`~repro.analysis.metrics.
MetricsRegistry` idiom the fault-analysis layer uses for simulated nodes
(one "node" per worker address, metrics namespaced under the ``fleet``
layer, canonical sorted snapshots).

A worker that misbehaves repeatedly (``failure_threshold`` consecutive
failures) is **quarantined**: the scheduler stops assigning it work and
stops redialling it until the quarantine expires.  Quarantine durations
back off exponentially per repeat offence (``quarantine_base_s`` doubling
up to ``quarantine_cap_s``) and *decay* with good behaviour — every
``decay_rows`` completed rows forgives one quarantine level — so a host
that flapped during a bad minute earns its way back to full duty instead
of being written off for the campaign.  Only when the *whole* fleet is
unusable does the scheduler raise :class:`~repro.sweep.spec.SweepError`;
one sick worker never fails a campaign on its own.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..analysis.metrics import MetricsRegistry
from .spec import SweepError

#: consecutive failures (losses or worker-reported task crashes) that
#: trigger a quarantine.
DEFAULT_FAILURE_THRESHOLD = 3

#: first quarantine duration; doubles per repeat offence.
DEFAULT_QUARANTINE_BASE_S = 1.0

#: quarantine durations never exceed this.
DEFAULT_QUARANTINE_CAP_S = 30.0

#: completed rows that forgive one quarantine level (decaying backoff).
DEFAULT_DECAY_ROWS = 8


class _WorkerState:
    """Mutable scheduler-side record for one worker address."""

    __slots__ = (
        "consecutive_failures",
        "level",
        "quarantined_until",
        "rows_since_decay",
        "last_heartbeat",
    )

    def __init__(self) -> None:
        self.consecutive_failures = 0
        #: repeat-offence level: the next quarantine lasts base * 2**level.
        self.level = 0
        self.quarantined_until = 0.0
        self.rows_since_decay = 0
        self.last_heartbeat: Optional[float] = None


class FleetHealth:
    """Health scores, quarantine policy and per-worker fleet metrics."""

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        quarantine_base_s: float = DEFAULT_QUARANTINE_BASE_S,
        quarantine_cap_s: float = DEFAULT_QUARANTINE_CAP_S,
        decay_rows: int = DEFAULT_DECAY_ROWS,
    ) -> None:
        if failure_threshold < 1:
            raise SweepError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if quarantine_base_s <= 0 or quarantine_cap_s < quarantine_base_s:
            raise SweepError(
                f"quarantine backoff must satisfy 0 < base <= cap, got "
                f"base={quarantine_base_s} cap={quarantine_cap_s}"
            )
        if decay_rows < 1:
            raise SweepError(f"decay_rows must be >= 1, got {decay_rows}")
        self.failure_threshold = failure_threshold
        self.quarantine_base_s = quarantine_base_s
        self.quarantine_cap_s = quarantine_cap_s
        self.decay_rows = decay_rows
        self.registry = MetricsRegistry()
        self._state: Dict[str, _WorkerState] = {}

    # ------------------------------------------------------------------

    def _worker(self, address: str) -> _WorkerState:
        state = self._state.get(address)
        if state is None:
            state = _WorkerState()
            self._state[address] = state
        return state

    def _metrics(self, address: str):
        return self.registry.node(address)

    def known_workers(self):
        """Every address that has ever been scored, sorted."""
        return sorted(self._state)

    # -- event recording ------------------------------------------------

    def record_connect(self, address: str) -> bool:
        """Score a successful (authenticated) handshake.

        Returns True when this is a *rejoin* — the address had served
        before — so the scheduler can run its loss-forgiveness pass.
        Connecting always clears the consecutive-failure streak and any
        remaining quarantine (the handshake is itself evidence of
        health).
        """
        metrics = self._metrics(address)
        rejoin = metrics.counter("fleet", "connects").snapshot() > 0
        metrics.counter("fleet", "connects").inc()
        if rejoin:
            metrics.counter("fleet", "rejoins").inc()
        state = self._worker(address)
        state.consecutive_failures = 0
        state.quarantined_until = 0.0
        state.last_heartbeat = None
        return rejoin

    def record_row(self, address: str, wall_seconds: float) -> None:
        """Score one completed row: clears the failure streak and decays
        the quarantine level every ``decay_rows`` rows."""
        metrics = self._metrics(address)
        metrics.counter("fleet", "rows").inc()
        metrics.histogram("fleet", "task_wall_ms").observe(
            int(max(0.0, wall_seconds) * 1000)
        )
        state = self._worker(address)
        state.consecutive_failures = 0
        state.rows_since_decay += 1
        if state.level > 0 and state.rows_since_decay >= self.decay_rows:
            state.level -= 1
            state.rows_since_decay = 0

    def record_heartbeat(self, address: str, now: Optional[float] = None) -> None:
        """Score one heartbeat; the gap to the previous one feeds the
        jitter histogram (milliseconds)."""
        now = time.monotonic() if now is None else now
        state = self._worker(address)
        metrics = self._metrics(address)
        metrics.counter("fleet", "heartbeats").inc()
        if state.last_heartbeat is not None:
            gap_ms = int(max(0.0, now - state.last_heartbeat) * 1000)
            metrics.histogram("fleet", "heartbeat_gap_ms").observe(gap_ms)
        state.last_heartbeat = now

    def record_failure(
        self, address: str, kind: str, now: Optional[float] = None
    ) -> Optional[float]:
        """Score one failure (``kind``: ``"loss"`` for a dead/flapping
        connection, ``"error"`` for a worker-reported task casualty,
        ``"timeout"`` for heartbeat silence).

        Returns the quarantine duration in seconds when this failure
        crossed the threshold and quarantined the worker, else ``None``.
        """
        now = time.monotonic() if now is None else now
        metrics = self._metrics(address)
        metrics.counter("fleet", f"failures_{kind}").inc()
        state = self._worker(address)
        state.consecutive_failures += 1
        state.rows_since_decay = 0
        metrics.gauge("fleet", "consecutive_failures").set(
            state.consecutive_failures
        )
        if state.consecutive_failures < self.failure_threshold:
            return None
        duration = min(
            self.quarantine_base_s * (2 ** state.level), self.quarantine_cap_s
        )
        state.quarantined_until = now + duration
        state.level += 1
        state.consecutive_failures = 0
        metrics.counter("fleet", "quarantines").inc()
        return duration

    # -- queries ---------------------------------------------------------

    def is_quarantined(self, address: str, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        state = self._state.get(address)
        return state is not None and now < state.quarantined_until

    def quarantine_remaining(
        self, address: str, now: Optional[float] = None
    ) -> float:
        now = time.monotonic() if now is None else now
        state = self._state.get(address)
        if state is None:
            return 0.0
        return max(0.0, state.quarantined_until - now)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Dict[str, object]]:
        """Canonical per-worker dump: the metrics-registry snapshot plus
        live quarantine state, sorted by address."""
        now = time.monotonic() if now is None else now
        merged: Dict[str, Dict[str, object]] = {}
        metrics = self.registry.snapshot()
        for address in sorted(self._state):
            state = self._state[address]
            merged[address] = dict(metrics.get(address, {}))
            merged[address]["quarantined"] = now < state.quarantined_until
            merged[address]["quarantine_level"] = state.level
            merged[address]["quarantine_remaining_s"] = round(
                max(0.0, state.quarantined_until - now), 3
            )
        return merged


__all__ = [
    "DEFAULT_DECAY_ROWS",
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_QUARANTINE_BASE_S",
    "DEFAULT_QUARANTINE_CAP_S",
    "FleetHealth",
]
