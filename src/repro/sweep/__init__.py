"""Parallel scenario sweep engine: process-pool fault campaigns.

The paper's evaluation is built from campaigns — grids of scenarios, seeds,
loss rates and engine configurations run over the same testbed recipe.
This package turns such a grid into an ordered list of picklable tasks,
executes them on a serial or process-pool backend, and merges the rows
back deterministically (see docs/SWEEP.md)::

    from repro.sweep import SweepSpec, run_sweep, run_script_task

    spec = SweepSpec("fig5_matrix", base_seed=7)
    spec.add_grid(
        run_script_task,
        axes={"seed": [1, 2, 3], "medium": ["switch", "hub"]},
        script=open("scenarios/fig5_tcp_congestion.fsl").read(),
        workload={"kind": "tcp_bulk", "bytes": 65536},
    )
    outcome = run_sweep(spec, backend="parallel", workers=4)
    assert outcome.passed, outcome.render()
"""

from .cache import ResultCache
from .campaigns import (
    fig7_point_task,
    fig8_point_task,
    run_script_task,
    sleep_task,
    tcp_variant_task,
)
from .journal import JournalError, JournalState, JournalWriter, read_journal
from .runner import (
    BACKENDS,
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_BACKOFF,
    DEFAULT_TIMEOUT_RETRIES,
    ExecutorContext,
    SweepExecutor,
    Watchdog,
    backend_names,
    default_backend,
    default_workers,
    register_backend,
    resolve_backend,
    run_sweep,
)
from .health import FleetHealth
from .remote import (
    HOSTS_ENV,
    PROTOCOL_VERSION,
    SECRET_ENV,
    TcpExecutor,
    WorkerServer,
    default_hosts,
    parse_hosts,
    resolve_secret,
)
from .spec import (
    SweepError,
    SweepOutcome,
    SweepResult,
    SweepSpec,
    SweepTask,
    derive_seed,
    task_fingerprint,
)

__all__ = [
    "BACKENDS",
    "FleetHealth",
    "HOSTS_ENV",
    "PROTOCOL_VERSION",
    "SECRET_ENV",
    "TcpExecutor",
    "WorkerServer",
    "default_hosts",
    "parse_hosts",
    "resolve_secret",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT_BACKOFF",
    "DEFAULT_TIMEOUT_RETRIES",
    "JournalError",
    "JournalState",
    "JournalWriter",
    "ResultCache",
    "ExecutorContext",
    "SweepError",
    "SweepExecutor",
    "SweepOutcome",
    "SweepResult",
    "SweepSpec",
    "SweepTask",
    "Watchdog",
    "backend_names",
    "default_backend",
    "default_workers",
    "derive_seed",
    "register_backend",
    "resolve_backend",
    "fig7_point_task",
    "fig8_point_task",
    "read_journal",
    "run_script_task",
    "run_sweep",
    "sleep_task",
    "task_fingerprint",
    "tcp_variant_task",
]
