"""Reusable campaign task functions.

Every function here is module-level (picklable by reference) and follows
the sweep contract: it receives one :class:`~repro.sweep.spec.SweepTask`,
builds a **fresh** seeded testbed from the task's params, runs exactly one
simulation, and returns a plain JSON-able payload.  Nothing is shared
between tasks, so campaigns parallelise trivially and merge
deterministically.

:func:`run_script_task` is the workhorse: it executes a pre-compiled FSL
program (shipped from the parent — workers never parse FSL) on a testbed
reconstructed from the program's own node table, with a declarative
workload, optional Rether ring, control-plane loss, engine tuning and
cost-model overrides.  The ``repro sweep`` CLI, the fault-matrix example,
the regression suite and the differential tests all run through it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Mapping

from ..bench.harness import RECEIVER_PORT, SENDER_PORT
from ..core.engine import EngineConfig
from ..core.tables import CompiledProgram
from ..core.testbed import Testbed
from ..sim import ms, seconds
from ..stack.costs import CostModel
from .spec import SweepError, SweepTask


def _cost_model(overrides: Mapping[str, int]) -> CostModel:
    """A CostModel with the given field overrides applied."""
    base = CostModel()
    unknown = set(overrides) - {f.name for f in dataclasses.fields(CostModel)}
    if unknown:
        raise SweepError(f"unknown cost-model fields: {sorted(unknown)}")
    return dataclasses.replace(base, **overrides)


def _require_program(task: SweepTask) -> CompiledProgram:
    program = task.param("program")
    if not isinstance(program, CompiledProgram):
        raise SweepError(
            f"task {task.name!r} needs a compiled program "
            f"(pass script=... so the spec compiles it in the parent)"
        )
    return program


def _install_workload(tb: Testbed, hosts: List, spec: Mapping[str, Any]):
    """Build the workload callable described by *spec*.

    Kinds:

    * ``tcp_bulk`` — one connection, first host to the receiver, sending
      ``bytes`` once established (the Fig 5 shape);
    * ``tcp_feed`` — same connection, then a steady ``chunk`` every
      ``interval_ns`` forever (the Rether real-time flow);
    * ``udp_probes`` — every non-sender host binds ``port``; the first
      host sends ``count`` paced datagrams to the receiver (the
      control-plane ablation shape);
    * ``none`` — scenario runs with no driven traffic.
    """
    kind = spec.get("kind", "tcp_bulk")
    sender = tb.host(spec.get("sender", hosts[0].name))
    receiver = tb.host(spec.get("receiver", hosts[-1].name))
    if kind == "none":
        return None
    if kind == "tcp_bulk":
        transfer = int(spec.get("bytes", 64 * 1024))

        def tcp_bulk() -> None:
            receiver.tcp.listen(RECEIVER_PORT)
            conn = sender.tcp.connect(
                receiver.ip, RECEIVER_PORT, local_port=SENDER_PORT
            )
            conn.on_established = lambda: conn.send(bytes(transfer))

        return tcp_bulk
    if kind == "tcp_feed":
        chunk = int(spec.get("chunk", 1024))
        interval_ns = int(spec.get("interval_ns", 2_000_000))

        def tcp_feed() -> None:
            receiver.tcp.listen(RECEIVER_PORT)
            conn = sender.tcp.connect(
                receiver.ip, RECEIVER_PORT, local_port=SENDER_PORT
            )

            def feed() -> None:
                conn.send(bytes(chunk))
                tb.sim.after(interval_ns, feed)

            conn.on_established = feed

        return tcp_feed
    if kind == "udp_probes":
        count = int(spec.get("count", 50))
        interval_ns = int(spec.get("interval_ns", ms(1)))
        port = int(spec.get("port", 7))
        size = int(spec.get("bytes", 30))

        def udp_probes() -> None:
            for host in hosts:
                if host is not sender:
                    host.udp.bind(port)
            socket = sender.udp.bind(0)
            for i in range(count):
                tb.sim.after(
                    (i + 1) * interval_ns,
                    lambda: socket.sendto(bytes(size), receiver.ip, port),
                )

        return udp_probes
    raise SweepError(f"unknown workload kind {kind!r}")


def run_script_task(task: SweepTask) -> Dict[str, Any]:
    """Run one pre-compiled FSL program on a freshly built testbed.

    The topology is reconstructed from the program's node table (names and
    addresses exactly as the script declares them), every host on one
    medium, VirtualWire on all of them.  Returns the scenario report
    summary plus the effective seed.
    """
    program = _require_program(task)
    seed = int(task.param("seed", task.seed))
    costs = _cost_model(task.param("costs", {}))
    tb = Testbed(seed=seed, costs=costs, frame_codec=task.param("frame_codec", "fast"))
    hosts = [
        tb.add_host(entry.name, mac=str(entry.mac), ip=str(entry.ip))
        for entry in program.nodes.entries
    ]
    medium = task.param("medium", "switch")
    factory = {
        "switch": tb.add_switch,
        "hub": tb.add_hub,
        "bus": tb.add_bus,
        "link": tb.add_link,
    }.get(medium)
    if factory is None:
        raise SweepError(f"unknown medium {medium!r}")
    factory("m0", **task.param("medium_kwargs", {}))
    tb.connect("m0", *hosts)
    classifier = task.param("classifier")
    engine_config = None
    if classifier:
        engine_config = EngineConfig(
            classifier=classifier, frame_codec=tb.frame_codec
        )
    tb.install_virtualwire(
        control=task.param("control", hosts[0].name),
        rll=bool(task.param("rll", False)),
        capture=bool(task.param("capture", False)),
        audit=bool(task.param("audit", False)),
        metrics=bool(task.param("metrics", False)),
        engine_config=engine_config,
    )
    for node, rate in sorted(dict(task.param("control_loss", {})).items()):
        tb.add_control_loss(node, float(rate))
    if task.param("rether", False):
        from ..rether import install_rether

        install_rether(hosts, **task.param("rether_kwargs", {}))
    workload = _install_workload(tb, hosts, task.param("workload", {}))
    report = tb.run_scenario(
        program,
        workload=workload,
        max_time=int(task.param("max_time_ns", seconds(60))),
        inactivity_ns=task.param("inactivity_ns"),
    )
    payload = report.summary()
    payload["seed"] = seed
    return payload


def sleep_task(task: SweepTask) -> Dict[str, Any]:
    """Sleep ``sleep_s`` of *real* time, then return a trivial payload.

    A deliberately hung "simulation" — the watchdog's test and CI-smoke
    cell: with ``run_sweep(..., task_timeout=...)`` it must land as a
    deterministic ``TIMEOUT`` row instead of stalling the campaign.
    """
    time.sleep(float(task.param("sleep_s", 3600.0)))
    return {"slept_s": float(task.param("sleep_s", 3600.0)), "passed": True}


def tcp_variant_task(task: SweepTask) -> Dict[str, Any]:
    """Run a pre-compiled script against one TCP congestion-control
    variant — the script-reuse regression suite's cell.

    Params: ``variant`` (a :data:`repro.tcp.VARIANTS` key), ``program``
    (the unchanged Fig 5 script), optional ``bytes``/``seed``.
    """
    from ..tcp import VARIANTS

    program = _require_program(task)
    variant_name = task.param("variant")
    if variant_name not in VARIANTS:
        raise SweepError(f"unknown TCP variant {variant_name!r}")
    variant = VARIANTS[variant_name]
    seed = int(task.param("seed", task.seed))
    transfer = int(task.param("bytes", 64 * 1024))
    tb = Testbed(seed=seed)
    node1 = tb.add_host("node1")
    node2 = tb.add_host("node2")
    tb.add_switch("sw0")
    tb.connect("sw0", node1, node2)
    tb.install_virtualwire(control="node1")

    def workload() -> None:
        node2.tcp.listen(RECEIVER_PORT)
        conn = node1.tcp.connect(
            node2.ip, RECEIVER_PORT, local_port=SENDER_PORT, congestion=variant()
        )
        conn.on_established = lambda: conn.send(bytes(transfer))

    report = tb.run_scenario(
        program,
        workload=workload,
        max_time=int(task.param("max_time_ns", seconds(60))),
    )
    payload = report.summary()
    payload["variant"] = variant_name
    payload["flagged"] = bool(report.errors)
    return payload


def fig7_point_task(task: SweepTask) -> Dict[str, Any]:
    """One Fig 7 cell: goodput at one offered rate (see repro.bench.fig7)."""
    from ..bench.fig7 import measure_point

    point = measure_point(
        float(task.param("offered_mbps")),
        bool(task.param("with_virtualwire")),
        duration_ns=int(task.param("duration_ns")),
        seed=int(task.param("seed", 0)),
        program=task.param("program"),
        frame_codec=task.param("frame_codec", "fast"),
    )
    return {
        "offered_mbps": point.offered_mbps,
        "with_virtualwire": point.with_virtualwire,
        "goodput_mbps": point.goodput_mbps,
        "retransmissions": point.retransmissions,
    }


def fig8_point_task(task: SweepTask) -> Dict[str, Any]:
    """One Fig 8 cell: mean echo RTT for (mode, n_filters)."""
    from ..bench.fig8 import measure_point

    point = measure_point(
        task.param("mode"),
        int(task.param("n_filters")),
        float(task.param("baseline_rtt_ns")),
        probes=int(task.param("probes", 50)),
        payload=int(task.param("payload", 1000)),
        seed=int(task.param("seed", 0)),
        program=task.param("program"),
        frame_codec=task.param("frame_codec", "fast"),
    )
    return {
        "mode": point.mode,
        "n_filters": point.n_filters,
        "mean_rtt_ns": point.mean_rtt_ns,
        "baseline_rtt_ns": point.baseline_rtt_ns,
    }
