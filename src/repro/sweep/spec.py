"""Declarative sweep campaigns: grids of independent simulations.

The paper's evaluation — and every figure this repo regenerates — is a
*campaign*: the same testbed recipe executed across a grid of filter-table
sizes, offered loads, loss rates, seeds and scenario scripts.  A
:class:`SweepSpec` enumerates that grid into an ordered list of picklable
:class:`SweepTask` s; :func:`repro.sweep.run_sweep` executes them on a
serial or process-pool backend and merges the per-task
:class:`SweepResult` rows back **in task order**, so the merged campaign is
bit-for-bit identical no matter how many workers ran it or in what order
they finished.

Determinism contract (docs/SWEEP.md):

* every task carries ``task.seed = derive_seed(base_seed, task.index)`` —
  a splitmix64 mix, stable across processes and Python versions;
* FSL scripts named in case params (``script=``/``scenario=``) are compiled
  **once in the parent** through :meth:`repro.core.testbed.Testbed.
  compile_cached` and the resulting :class:`CompiledProgram` — including
  its classification index — is shipped to workers, never re-parsed;
* task functions must return plain JSON-able payloads (the runner coerces
  tuples and enums, and rejects anything it cannot make deterministic).
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import ReproError

_MASK64 = (1 << 64) - 1


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-task seed: splitmix64 of ``(base_seed, index)``.

    Pure integer arithmetic — no :mod:`random`, no hashing of strings — so
    the value is identical in every worker process, Python build and
    insertion order.  Returned in ``[0, 2**31)`` to stay friendly to any
    seed consumer.
    """
    x = (base_seed * 0x9E3779B97F4A7C15 + (index + 1) * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % (1 << 31)


class SweepError(ReproError):
    """A campaign was mis-specified (not a task failure — those become
    ``FAILED`` rows, never exceptions)."""


#: A task function: module-level (hence picklable by reference), takes the
#: task and returns a plain JSON-able mapping.
TaskFn = Callable[["SweepTask"], Mapping[str, Any]]


@dataclass
class SweepTask:
    """One cell of the campaign grid, ready to execute in any process."""

    index: int
    name: str
    #: derived from (base_seed, index); the default simulator seed for the
    #: task.  Grid axes may additionally carry an explicit ``seed`` param.
    seed: int
    fn: TaskFn
    params: Dict[str, Any] = field(default_factory=dict)

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)


@dataclass
class SweepResult:
    """One merged campaign row.

    ``payload`` (and every field except the wall-clock/attempt accounting)
    is covered by :meth:`canonical`, the byte-identity surface of the
    differential serial-vs-parallel guarantee.  ``wall_seconds`` and
    ``attempts`` are real-world accounting and excluded.
    """

    OK = "OK"
    FAILED = "FAILED"
    TIMEOUT = "TIMEOUT"

    index: int
    name: str
    seed: int
    status: str
    payload: Dict[str, Any] = field(default_factory=dict)
    #: ``ExcType: message`` for FAILED rows (deterministic, canonical).
    error: str = ""
    #: full traceback / crash note (non-canonical: may differ by backend).
    error_detail: str = ""
    attempts: int = 1
    wall_seconds: float = 0.0
    #: row was served by the result cache, not executed (non-canonical).
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == self.OK

    @property
    def virtual_ns(self) -> int:
        """The task's virtual-time cost, when its payload reports one."""
        value = self.payload.get("duration_ns", 0)
        return value if isinstance(value, int) else 0

    def canonical(self) -> Dict[str, Any]:
        """The deterministic projection used for merged-result identity."""
        return {
            "index": self.index,
            "name": self.name,
            "seed": self.seed,
            "status": self.status,
            "payload": self.payload,
            "error": self.error,
        }

    def to_record(self) -> Dict[str, Any]:
        """The full on-disk projection (journal rows, cache entries):
        canonical fields plus the real-world accounting, so a replayed row
        reconstructs exactly."""
        record = self.canonical()
        record["error_detail"] = self.error_detail
        record["attempts"] = self.attempts
        record["wall_seconds"] = self.wall_seconds
        record["cached"] = self.cached
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "SweepResult":
        """Rebuild a row from :meth:`to_record` output (journal replay /
        cache hit).  Raises :class:`SweepError` on malformed records."""
        try:
            return cls(
                index=int(record["index"]),
                name=str(record["name"]),
                seed=int(record["seed"]),
                status=str(record["status"]),
                payload=dict(record["payload"]),
                error=str(record.get("error", "")),
                error_detail=str(record.get("error_detail", "")),
                attempts=int(record.get("attempts", 1)),
                wall_seconds=float(record.get("wall_seconds", 0.0)),
                cached=bool(record.get("cached", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(f"malformed result record: {exc!r}") from None


@dataclass
class SweepOutcome:
    """The merged campaign: rows in task order plus campaign accounting."""

    spec_name: str
    base_seed: int
    backend: str
    workers: int
    rows: List[SweepResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: the backend decided to stop early — fail-fast tripped (even on the
    #: final task) or the campaign was interrupted.  ``rows`` may be a
    #: subset of the grid.
    aborted: bool = False
    #: the parent was interrupted (SIGINT): ``rows`` covers exactly the
    #: journaled/completed rows at the moment of interruption.
    interrupted: bool = False
    #: rows replayed from a resume journal instead of executed.
    resumed: int = 0
    #: rows served by the result cache instead of executed.
    cached_rows: int = 0
    #: rows recorded as ``TIMEOUT`` by the task watchdog.
    timed_out: int = 0
    #: per-worker fleet health and self-healing counters reported by
    #: remote backends (``None`` for local backends).  Non-canonical:
    #: real-world accounting, excluded from :meth:`canonical_bytes`.
    fleet: Optional[Dict[str, Any]] = None

    @property
    def failures(self) -> List[SweepResult]:
        return [
            row
            for row in self.rows
            if not row.ok or row.payload.get("passed") is False
        ]

    @property
    def passed(self) -> bool:
        """The campaign ran to completion, every row completed, and no
        scenario payload reported failure.  An aborted (fail-fast or
        interrupted) campaign never passes: its rows are a subset of the
        grid, and a subset cannot vouch for the whole."""
        return not self.aborted and not self.failures

    @property
    def total_task_wall_seconds(self) -> float:
        return sum(row.wall_seconds for row in self.rows)

    @property
    def total_virtual_ns(self) -> int:
        return sum(row.virtual_ns for row in self.rows)

    def canonical_bytes(self) -> bytes:
        """Canonical JSON of all rows — the differential-test identity."""
        return json.dumps(
            [row.canonical() for row in self.rows],
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    def row(self, name: str) -> SweepResult:
        for candidate in self.rows:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def render(self) -> str:
        """Human-readable campaign table (one line per task + totals)."""
        from ..sim import format_time  # local: avoid import at module load

        lines = []
        for row in self.rows:
            if row.ok:
                verdict = row.payload.get("passed")
                detail = (
                    "PASS" if verdict else "FAIL" if verdict is False else "done"
                )
                extra = row.payload.get("end_reason", "")
                if extra:
                    detail += f" ({extra})"
            else:
                detail = f"{row.status} ({row.error})"
            if row.cached:
                detail += " [cached]"
            lines.append(
                f"[{row.index:>3}] {row.name:<36} {detail:<28} "
                f"{format_time(row.virtual_ns):>12} virtual  "
                f"{row.wall_seconds:>7.2f}s wall  x{row.attempts}"
            )
        verdict = "ALL OK" if self.passed else f"{len(self.failures)} FAILED"
        if self.interrupted:
            verdict += " (interrupted: campaign aborted, journaled rows only)"
        elif self.aborted:
            verdict += " (fail-fast: campaign aborted early)"
        extras = []
        if self.resumed:
            extras.append(f"{self.resumed} resumed")
        if self.cached_rows:
            extras.append(f"{self.cached_rows} cached")
        if self.timed_out:
            extras.append(f"{self.timed_out} timed out")
        lines.append(
            f"{'-' * 40} {verdict}: {len(self.rows)} tasks"
            + (f" ({', '.join(extras)})" if extras else "")
            + f", {self.backend}({self.workers}w), "
            f"campaign {self.wall_seconds:.2f}s wall "
            f"(task sum {self.total_task_wall_seconds:.2f}s, "
            f"{format_time(self.total_virtual_ns)} virtual)"
        )
        return "\n".join(lines)


class SweepSpec:
    """An ordered campaign description.

    Cases are added one at a time (:meth:`add`) or as a Cartesian grid
    (:meth:`add_grid`); :meth:`tasks` freezes them into
    :class:`SweepTask` s, deriving seeds and compiling any ``script``
    params into shipped :class:`CompiledProgram` s.
    """

    def __init__(self, name: str, base_seed: int = 0) -> None:
        self.name = name
        self.base_seed = base_seed
        self._cases: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._cases)

    def add(self, name: str, fn: TaskFn, **params: Any) -> "SweepSpec":
        """Append one case; returns self for chaining."""
        if not callable(fn):
            raise SweepError(f"case {name!r}: fn must be callable")
        if getattr(fn, "__name__", "<lambda>") == "<lambda>":
            raise SweepError(
                f"case {name!r}: task functions must be module-level "
                f"(picklable by reference), not lambdas"
            )
        self._cases.append({"name": name, "fn": fn, "params": dict(params)})
        return self

    def add_grid(
        self,
        fn: TaskFn,
        axes: Mapping[str, Sequence[Any]],
        name: Optional[Callable[[Mapping[str, Any]], str]] = None,
        **fixed: Any,
    ) -> "SweepSpec":
        """Append the Cartesian product of *axes* (insertion-order major).

        *name* builds each case's display name from its axis point; the
        default joins ``key=value`` pairs.  *fixed* params are shared by
        every generated case.
        """
        import itertools

        keys = list(axes.keys())
        for values in itertools.product(*(axes[k] for k in keys)):
            point = dict(zip(keys, values))
            label = (
                name(point)
                if name is not None
                else ",".join(f"{k}={v}" for k, v in point.items())
            )
            self.add(label, fn, **{**fixed, **point})
        return self

    def tasks(self) -> List[SweepTask]:
        """Freeze the spec into ordered, picklable tasks.

        Any case param pair ``script=<fsl text>`` (plus optional
        ``scenario=<name>``) is replaced by ``program=<CompiledProgram>``,
        compiled here — once per distinct source text, via the testbed's
        shared compile cache — so workers never re-parse FSL.
        """
        from ..core.testbed import Testbed  # local: sweep must stay importable early

        tasks: List[SweepTask] = []
        for index, case in enumerate(self._cases):
            params = dict(case["params"])
            script = params.pop("script", None)
            if script is not None:
                scenario = params.pop("scenario", None)
                if "program" in params:
                    raise SweepError(
                        f"case {case['name']!r}: give script= or program=, not both"
                    )
                params["program"] = Testbed.compile_cached(script, scenario)
            tasks.append(
                SweepTask(
                    index=index,
                    name=case["name"],
                    seed=derive_seed(self.base_seed, index),
                    fn=case["fn"],
                    params=params,
                )
            )
        return tasks


def coerce_jsonable(value: Any, path: str = "payload") -> Any:
    """Normalise a task payload into canonical-JSON-able builtins.

    Tuples become lists, enums their values; anything else non-builtin is
    rejected so nondeterministic reprs can never leak into the canonical
    merge.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, enum.Enum):
        return coerce_jsonable(value.value, path)
    if isinstance(value, (list, tuple)):
        return [coerce_jsonable(v, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SweepError(f"{path}: non-string mapping key {key!r}")
            out[key] = coerce_jsonable(item, f"{path}.{key}")
        return out
    raise SweepError(
        f"{path}: task payloads must be JSON-able builtins, got "
        f"{type(value).__name__}"
    )


def task_fingerprint(task: "SweepTask") -> str:
    """Content-addressed identity of one campaign cell.

    SHA-256 over the canonical JSON of ``(fn module.qualname, index, name,
    params, seed)``, where a :class:`~repro.core.tables.CompiledProgram`
    param is replaced by its :meth:`content_hash` (the compile-cache key's
    content digest) so the fingerprint tracks the *script text*, not the
    object identity.  This is both the result-cache key and the journal's
    per-row identity check: a cell whose script, knobs, seed or task
    function changed gets a new fingerprint and is re-executed; everything
    else replays.

    Raises :class:`SweepError` when a param is neither JSON-able nor a
    compiled program — such tasks cannot be journaled or cached.
    """
    from ..core.tables import CompiledProgram  # local: avoid import cycle

    params: Dict[str, Any] = {}
    for key, value in task.params.items():
        if isinstance(value, CompiledProgram):
            params[key] = {"__program__": value.content_hash()}
        else:
            params[key] = coerce_jsonable(value, f"params.{key}")
    fn = task.fn
    body = json.dumps(
        {
            "fn": f"{fn.__module__}.{getattr(fn, '__qualname__', fn.__name__)}",
            "index": task.index,
            "name": task.name,
            "params": params,
            "seed": task.seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def tasks_of(spec_or_tasks: Any) -> List[SweepTask]:
    """Accept a :class:`SweepSpec` or an explicit task list."""
    if isinstance(spec_or_tasks, SweepSpec):
        return spec_or_tasks.tasks()
    tasks = list(spec_or_tasks)
    for task in tasks:
        if not isinstance(task, SweepTask):
            raise SweepError(f"expected SweepTask, got {type(task).__name__}")
    return tasks


def spec_meta(spec_or_tasks: Any) -> Dict[str, Any]:
    """(name, base_seed) of a spec, with fallbacks for raw task lists."""
    if isinstance(spec_or_tasks, SweepSpec):
        return {"name": spec_or_tasks.name, "base_seed": spec_or_tasks.base_seed}
    return {"name": "tasks", "base_seed": 0}


__all__: Iterable[str] = [
    "SweepError",
    "SweepOutcome",
    "SweepResult",
    "SweepSpec",
    "SweepTask",
    "coerce_jsonable",
    "derive_seed",
    "task_fingerprint",
]
