"""Convenience installer wiring Rether layers onto a set of hosts."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..stack.node import Host
from .layer import RetherLayer


def install_rether(
    hosts: List[Host],
    master: Optional[Host] = None,
    **layer_kwargs,
) -> Dict[str, RetherLayer]:
    """Splice a :class:`RetherLayer` into every host in *hosts*.

    The ring order is the order of *hosts*; *master* (default: the first
    host) starts with the token.  Returns the layers keyed by host name.
    Extra keyword arguments are passed to every layer's constructor.

    The layer is spliced directly below the IP stack, which means it ends
    up *above* any previously spliced VirtualWire engine — so the engine
    observes every token and token-ack, as the paper's Fig 6 scenario
    requires.
    """
    if master is None:
        master = hosts[0]
    ring = [host.mac for host in hosts]
    layers: Dict[str, RetherLayer] = {}
    for host in hosts:
        layer = RetherLayer(host.sim, ring, **layer_kwargs)
        host.chain.splice_below_ip(layer)
        host.rether = layer
        layers[host.name] = layer
    for host in hosts:
        host.rether.start(as_master=host is master)
    return layers
