"""Rether control messages.

Rether control frames use EtherType ``0x9900`` — the value the paper's
Fig 6 filter table matches with the tuple ``(12 2 0x9900)`` — and carry a
small fixed header whose first two bytes are the message type, matched by
``(14 2 0x0001)`` (token) and ``(14 2 0x0010)`` (token ack).

Header layout (big endian, frame offsets in parentheses):

====== ======= ==========================================================
offset size    field
====== ======= ==========================================================
0 (14) 2       type: 0x0001 token, 0x0010 token-ack
2 (16) 2       generation — bumped when a lost token is regenerated
4 (18) 4       token sequence — increments on every hop
8 (22) 8       cycle start, ns — stamped by the ring master each rotation
====== ======= ==========================================================
"""

from __future__ import annotations

from ..errors import PacketError
from ..net.bytesutil import pack_u16, pack_u32, read_u16, read_u32
from ..net.frame import ETHERTYPE_RETHER, EthernetFrame

TYPE_TOKEN = 0x0001
TYPE_TOKEN_ACK = 0x0010
#: A recovered node announcing itself back into the ring (broadcast).
TYPE_JOIN = 0x0020

HEADER_LEN = 16


class RetherMessage:
    """A decoded Rether control message."""

    __slots__ = ("msg_type", "generation", "seq", "cycle_start")

    def __init__(
        self, msg_type: int, generation: int, seq: int, cycle_start: int = 0
    ) -> None:
        if msg_type not in (TYPE_TOKEN, TYPE_TOKEN_ACK, TYPE_JOIN):
            raise PacketError(f"unknown Rether message type {msg_type:#06x}")
        self.msg_type = msg_type
        self.generation = generation % (1 << 16)
        self.seq = seq % (1 << 32)
        self.cycle_start = cycle_start

    @property
    def is_token(self) -> bool:
        return self.msg_type == TYPE_TOKEN

    @property
    def is_ack(self) -> bool:
        return self.msg_type == TYPE_TOKEN_ACK

    @property
    def is_join(self) -> bool:
        return self.msg_type == TYPE_JOIN

    def to_payload(self) -> bytes:
        return (
            pack_u16(self.msg_type)
            + pack_u16(self.generation)
            + pack_u32(self.seq)
            + self.cycle_start.to_bytes(8, "big")
        )

    def wrap(self, dst, src) -> EthernetFrame:
        """Build the on-wire control frame."""
        return EthernetFrame(dst, src, ETHERTYPE_RETHER, self.to_payload())

    @classmethod
    def parse(cls, payload: bytes) -> "RetherMessage":
        if len(payload) < HEADER_LEN:
            raise PacketError(f"Rether header of {len(payload)} bytes is too short")
        return cls(
            msg_type=read_u16(payload, 0),
            generation=read_u16(payload, 2),
            seq=read_u32(payload, 4),
            cycle_start=int.from_bytes(payload[8:16], "big"),
        )

    def ack(self) -> "RetherMessage":
        """The token-ack answering this token."""
        return RetherMessage(TYPE_TOKEN_ACK, self.generation, self.seq, self.cycle_start)

    def __repr__(self) -> str:
        kind = {TYPE_TOKEN: "TOKEN", TYPE_TOKEN_ACK: "TOKEN_ACK", TYPE_JOIN: "JOIN"}[
            self.msg_type
        ]
        return f"RetherMessage({kind}, gen={self.generation}, seq={self.seq})"
