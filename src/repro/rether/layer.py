"""The Rether protocol layer.

Rether (Venkatramani & Chiueh, SIGCOMM '95) is a software token-passing
protocol sitting between the Ethernet driver and the IP stack: a node may
transmit data frames only while it holds the circulating control token.
This module implements the behaviour the paper's §6.2 scenario tests:

* **best-effort round robin** — the token visits every ring member in a
  fixed order; the holder drains up to a burst quota of queued data frames,
  then passes the token on;
* **acknowledged token handoff** — each token transfer must be answered by
  a token-ack; the sender retries up to ``max_token_attempts`` times total
  (the scenario's analysis script checks for exactly 3 sends), then
  declares the successor dead;
* **ring reconstruction** — a dead successor is dropped from the sender's
  ring view and the token goes to the next live member, so "the token cycle
  is reconstructed among the remaining nodes";
* **token regeneration** — if a node sees no token activity for a long
  interval (the holder itself died), the live member with the lowest MAC
  address regenerates the token with a bumped generation number; stale
  generations are discarded, keeping a single token in circulation;
* a simple **real-time mode**: a node may reserve a per-cycle frame quota;
  reserved frames are always sent when the token arrives, while best-effort
  frames go out only while the rotation is inside its target cycle time.

The layer is spliced *above* the VirtualWire engine, so every token and
token-ack crosses the engine's hook and can be counted, dropped, delayed or
reordered by fault scripts — with zero changes to the code in this file.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..errors import RetherError
from ..net.addresses import MacAddress
from ..net.frame import ETHERTYPE_RETHER, EthernetFrame
from ..sim import NS_PER_MS, Simulator
from ..stack.layers import FrameLayer
from .messages import RetherMessage, TYPE_JOIN, TYPE_TOKEN, TYPE_TOKEN_ACK

#: Wait this long for a token-ack before retrying the handoff.
DEFAULT_ACK_TIMEOUT_NS = 10 * NS_PER_MS
#: Total token transmissions to one successor before declaring it dead.
#: The paper's analysis script checks TokensFrom2 == 3 (and flags > 3).
DEFAULT_MAX_TOKEN_ATTEMPTS = 3
#: Best-effort frames the holder may send per token visit.
DEFAULT_BURST_FRAMES = 10
#: No token activity for this long => the token was lost with its holder.
DEFAULT_REGENERATION_TIMEOUT_NS = 500 * NS_PER_MS
#: Target token rotation time for real-time admission control.
DEFAULT_CYCLE_TARGET_NS = 30 * NS_PER_MS
#: Bound on the queue of data frames awaiting the token.
DEFAULT_QUEUE_FRAMES = 512
#: Pause before passing the token on when this visit moved no data.  Keeps
#: an idle ring from spinning at wire speed (real Rether paces its cycle
#: for the reserved real-time streams anyway); bounded so failure
#: detection still completes well inside the paper's 1-second budget.
DEFAULT_IDLE_GAP_NS = 200_000


class RetherLayer(FrameLayer):
    """One node's Rether instance, spliced into the host frame chain."""

    def __init__(
        self,
        sim: Simulator,
        ring: List[MacAddress],
        ack_timeout_ns: int = DEFAULT_ACK_TIMEOUT_NS,
        max_token_attempts: int = DEFAULT_MAX_TOKEN_ATTEMPTS,
        burst_frames: int = DEFAULT_BURST_FRAMES,
        regeneration_timeout_ns: int = DEFAULT_REGENERATION_TIMEOUT_NS,
        cycle_target_ns: int = DEFAULT_CYCLE_TARGET_NS,
        rt_quota_frames: int = 0,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        idle_gap_ns: int = DEFAULT_IDLE_GAP_NS,
    ) -> None:
        super().__init__("rether")
        if len(ring) < 2:
            raise RetherError("a Rether ring needs at least two members")
        self.sim = sim
        self._members: List[MacAddress] = list(ring)
        self._dead: set = set()
        self.ack_timeout_ns = ack_timeout_ns
        self.max_token_attempts = max_token_attempts
        self.burst_frames = burst_frames
        self.regeneration_timeout_ns = regeneration_timeout_ns
        self.cycle_target_ns = cycle_target_ns
        self.rt_quota_frames = rt_quota_frames
        self.queue_frames = queue_frames
        self.idle_gap_ns = idle_gap_ns

        self._mac: Optional[MacAddress] = None
        self._queue: Deque[bytes] = deque()
        self._rt_queue: Deque[bytes] = deque()
        self.holding_token = False
        self.generation = 0
        self._token_seq = 0
        self._cycle_start = 0
        self._handoff_timer = None
        self._handoff_attempts = 0
        self._handoff_msg: Optional[RetherMessage] = None
        self._handoff_target: Optional[MacAddress] = None
        self._regen_timer = None
        self._regen_strikes = 0
        self._idle_pass_timer = None
        self._started = False

        # Statistics.
        self.tokens_received = 0
        self.tokens_passed = 0
        self.token_retransmissions = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.nodes_evicted = 0
        self.joins_sent = 0
        self.joins_accepted = 0
        self.regenerations = 0
        self.stale_tokens_discarded = 0
        self.data_sent = 0
        self.queue_drops = 0
        self.be_deferred = 0
        # Metric handles (repro.analysis); None keeps the hot path free.
        self._m_token_rtx = None
        self._m_regen = None
        self._m_evicted = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def ring(self) -> List[MacAddress]:
        """The live ring: declared members minus evicted nodes."""
        return [mac for mac in self._members if mac not in self._dead]

    def attached(self) -> None:
        self._mac = self.host.mac
        if self._mac not in self._members:
            raise RetherError(
                f"{self._mac} is not a member of the ring {self._members}"
            )
        metrics = getattr(self.host, "metrics", None)
        if metrics is not None:
            self._m_token_rtx = metrics.counter("rether", "token_retransmissions")
            self._m_regen = metrics.counter("rether", "regenerations")
            self._m_evicted = metrics.counter("rether", "nodes_evicted")

    def start(self, as_master: bool = False) -> None:
        """Begin protocol operation.  Exactly one node starts as master

        (the initial token holder); everyone else arms the loss watchdog.
        """
        if self._started:
            raise RetherError("Rether layer already started")
        self._started = True
        if as_master:
            self.holding_token = True
            self._cycle_start = self.sim.now
            # Give every node a moment to start before the first rotation.
            self.sim.after(NS_PER_MS, self._service_token, "rether:first-cycle")
        self._arm_regen_timer()

    def on_host_crash(self) -> None:
        """Host crash: all protocol state is lost with the machine.

        Queues, the held token, pending handoffs and every timer vanish;
        the ring recovers around us via ack-timeout eviction and token
        regeneration.  A later reboot starts from generation 0 — the
        live ring's bumped generation wins on contact.
        """
        self._cancel_handoff_timer()
        self._handoff_msg = None
        self._handoff_target = None
        self._handoff_attempts = 0
        if self._regen_timer is not None:
            self._regen_timer.cancel()
            self._regen_timer = None
        self._regen_strikes = 0
        if self._idle_pass_timer is not None:
            self._idle_pass_timer.cancel()
            self._idle_pass_timer = None
        self._queue.clear()
        self._rt_queue.clear()
        self.holding_token = False
        self.generation = 0
        self._token_seq = 0
        self._cycle_start = 0
        self._dead.clear()
        self._started = False

    def on_host_resynced(self) -> None:
        """The rebooted host's engine re-armed its tables: rejoin the ring.

        Deliberately *not* done at reboot time — protocol traffic must
        resume only once fault injection is armed again, preserving the
        testbed's "armed before traffic" invariant.
        """
        self._started = True
        self.rejoin()

    # ------------------------------------------------------------------
    # Frame-chain hooks
    # ------------------------------------------------------------------

    def on_send(self, frame_bytes: bytes) -> None:
        """Data from the IP stack: queue until we hold the token."""
        if len(frame_bytes) >= 14 and frame_bytes[12:14] == b"\x99\x00":
            # Our own control traffic (or a test injecting raw control).
            self.pass_down(frame_bytes)
            return
        queue = self._rt_queue if self._is_reserved_traffic(frame_bytes) else self._queue
        if len(queue) >= self.queue_frames:
            self.queue_drops += 1
            return
        queue.append(frame_bytes)
        if self.holding_token and self._handoff_msg is None:
            # Idle holder (we kept the token because the ring was otherwise
            # silent): service the new frame immediately.
            self._service_token()

    def _is_reserved_traffic(self, frame_bytes: bytes) -> bool:
        """Real-time classification hook.

        The default policy reserves nothing; subclasses or tests can
        override.  With ``rt_quota_frames > 0`` every frame is treated as
        reserved up to the quota, which matches how the paper's testbed
        gives node1/node4 a "real time TCP-based client-server" flow.
        """
        return self.rt_quota_frames > 0

    def on_receive(self, frame_bytes: bytes) -> None:
        if len(frame_bytes) >= 16 and frame_bytes[12:14] == b"\x99\x00":
            self._handle_control(frame_bytes)
            return
        self.pass_up(frame_bytes)

    # ------------------------------------------------------------------
    # Control handling
    # ------------------------------------------------------------------

    def _handle_control(self, frame_bytes: bytes) -> None:
        frame = EthernetFrame.from_bytes(frame_bytes)
        if frame.dst != self._mac and not frame.dst.is_broadcast:
            return  # control for someone else (shared segment)
        message = RetherMessage.parse(frame.payload)
        self._touch_regen_timer()
        if message.is_join:
            if frame.src != self._mac:
                self._handle_join(frame.src)
            return
        if frame.dst != self._mac:
            return
        if message.is_token:
            self._handle_token(frame.src, message)
        elif message.is_ack:
            self._handle_token_ack(frame.src, message)

    def _handle_token(self, sender: MacAddress, token: RetherMessage) -> None:
        if token.generation < self.generation:
            self.stale_tokens_discarded += 1
            return
        is_stale_repeat = (
            token.generation == self.generation
            and (self._token_seq - token.seq) % (1 << 32) < (1 << 31)
            and self.tokens_received > 0
        )
        self.generation = token.generation
        # Always ack, even for a duplicate: the ack may have been lost.
        self._send_ack(sender, token)
        if self.holding_token:
            return  # duplicate handoff of the token we already hold
        if is_stale_repeat:
            # A predecessor retransmitted a token we already forwarded
            # (its ack was lost).  Re-acking is enough; accepting it would
            # put a second token into circulation.
            self.stale_tokens_discarded += 1
            return
        self.holding_token = True
        self.tokens_received += 1
        self._token_seq = token.seq
        self._cycle_start = token.cycle_start
        if self._is_ring_master():
            self._cycle_start = self.sim.now  # a rotation completed
        self._service_token()

    def _send_ack(self, dst: MacAddress, token: RetherMessage) -> None:
        self.acks_sent += 1
        self.pass_down(token.ack().wrap(dst, self._mac).to_bytes())

    def _handle_token_ack(self, sender: MacAddress, ack: RetherMessage) -> None:
        if self._handoff_msg is None or sender != self._handoff_target:
            return
        if ack.seq != self._handoff_msg.seq:
            return  # ack for an older handoff
        self.acks_received += 1
        self._cancel_handoff_timer()
        self._handoff_msg = None
        self._handoff_target = None
        self._handoff_attempts = 0
        self.holding_token = False

    # ------------------------------------------------------------------
    # Token service: transmit data, then pass on
    # ------------------------------------------------------------------

    def _service_token(self) -> None:
        if not self.holding_token or self._handoff_msg is not None:
            return
        if self._idle_pass_timer is not None:
            self._idle_pass_timer.cancel()
            self._idle_pass_timer = None
        sent = self._transmit_pending()
        if sent == 0 and self.idle_gap_ns > 0:
            # Nothing to send: hold the token briefly so an idle ring does
            # not rotate at wire speed.  Newly queued data cuts the gap
            # short (on_send re-enters _service_token).
            self._idle_pass_timer = self.sim.after(
                self.idle_gap_ns, self._idle_pass, "rether:idle-gap"
            )
        else:
            self._pass_token()

    def _idle_pass(self) -> None:
        self._idle_pass_timer = None
        if not self.holding_token or self._handoff_msg is not None:
            return
        self._transmit_pending()
        self._pass_token()

    def _transmit_pending(self) -> int:
        """Send queued data within the burst budget; returns frames sent."""
        budget = self.burst_frames
        sent = 0
        # Reserved (real-time) traffic goes first, up to its quota.
        rt_left = min(self.rt_quota_frames, budget) if self.rt_quota_frames else 0
        while self._rt_queue and rt_left > 0:
            self.pass_down(self._rt_queue.popleft())
            self.data_sent += 1
            sent += 1
            rt_left -= 1
            budget -= 1
        # Best-effort traffic only while the rotation is within its target.
        in_budget = (self.sim.now - self._cycle_start) < self.cycle_target_ns
        if in_budget:
            while self._queue and budget > 0:
                self.pass_down(self._queue.popleft())
                self.data_sent += 1
                sent += 1
                budget -= 1
        elif self._queue:
            self.be_deferred += len(self._queue)
        return sent

    def _successor(self) -> MacAddress:
        alive = self.ring
        index = alive.index(self._mac)
        return alive[(index + 1) % len(alive)]

    def _is_ring_master(self) -> bool:
        return min(self.ring, key=lambda m: m.packed) == self._mac


    def _pass_token(self) -> None:
        successor = self._successor()
        if successor == self._mac:
            # We are the only live member: keep the token, stay quiet until
            # there is data to send or a peer rejoins.
            self.holding_token = True
            return
        self._token_seq = (self._token_seq + 1) % (1 << 32)
        self._handoff_msg = RetherMessage(
            TYPE_TOKEN, self.generation, self._token_seq, self._cycle_start
        )
        self._handoff_target = successor
        self._handoff_attempts = 0
        self._transmit_token()

    def _transmit_token(self) -> None:
        if self._handoff_msg is None:
            return
        self._handoff_attempts += 1
        if self._handoff_attempts > 1:
            self.token_retransmissions += 1
            if self._m_token_rtx is not None:
                self._m_token_rtx.inc()
        else:
            self.tokens_passed += 1
        self.pass_down(
            self._handoff_msg.wrap(self._handoff_target, self._mac).to_bytes()
        )
        self._arm_handoff_timer()

    # ------------------------------------------------------------------
    # Failure detection and ring reconstruction
    # ------------------------------------------------------------------

    def _arm_handoff_timer(self) -> None:
        self._cancel_handoff_timer()
        self._handoff_timer = self.sim.after(
            self.ack_timeout_ns, self._on_handoff_timeout, "rether:ack-timeout"
        )

    def _cancel_handoff_timer(self) -> None:
        if self._handoff_timer is not None:
            self._handoff_timer.cancel()
            self._handoff_timer = None

    def _on_handoff_timeout(self) -> None:
        self._handoff_timer = None
        if self._handoff_msg is None:
            return
        if self._handoff_attempts < self.max_token_attempts:
            self._transmit_token()
            return
        # The successor never acked despite max attempts: evict it and
        # reconstruct the ring without it.
        dead = self._handoff_target
        self.nodes_evicted += 1
        if self._m_evicted is not None:
            self._m_evicted.inc()
        self._dead.add(dead)
        self._handoff_msg = None
        self._handoff_target = None
        self._handoff_attempts = 0
        self._pass_token()

    def evicted(self, mac: MacAddress) -> bool:
        """True if *mac* has been removed from this node's ring view."""
        return mac in self._dead

    # ------------------------------------------------------------------
    # Node rejoin
    # ------------------------------------------------------------------

    def rejoin(self) -> None:
        """Announce this (recovered) node back into the ring.

        Resets stale local protocol state, forgets stale eviction
        knowledge (it will be re-learned if still true), and broadcasts a
        JOIN so the live members reinstate us in their ring views; the
        token then reaches us on its next rotation.
        """
        if self.host is None or not self.host.is_alive:
            raise RetherError("rejoin requires a recovered (alive) host")
        self.holding_token = False
        self._cancel_handoff_timer()
        self._handoff_msg = None
        self._handoff_target = None
        self._handoff_attempts = 0
        self._dead.clear()
        self.joins_sent += 1
        join = RetherMessage(TYPE_JOIN, self.generation, 0)
        self.pass_down(
            join.wrap(MacAddress("ff:ff:ff:ff:ff:ff"), self._mac).to_bytes()
        )
        self._arm_regen_timer()

    def _handle_join(self, sender: MacAddress) -> None:
        if sender in self._members and sender in self._dead:
            self._dead.discard(sender)
            self.joins_accepted += 1

    # ------------------------------------------------------------------
    # Token-loss recovery
    # ------------------------------------------------------------------

    def _arm_regen_timer(self) -> None:
        if self._regen_timer is not None:
            self._regen_timer.cancel()
        self._regen_timer = self.sim.after(
            self.regeneration_timeout_ns, self._on_regen_timeout, "rether:regen"
        )

    def _touch_regen_timer(self) -> None:
        if self._started:
            self._regen_strikes = 0
            self._arm_regen_timer()

    def _regen_rank(self) -> int:
        """This node's position in the MAC-sorted live ring (master = 0)."""
        ordered = sorted(self.ring, key=lambda m: m.packed)
        return ordered.index(self._mac)

    def _on_regen_timeout(self) -> None:
        self._regen_timer = None
        if not self._started or self.host is None or not self.host.is_alive:
            return
        self._arm_regen_timer()
        if self.holding_token:
            # We hold the token but the ring is idle; nothing to recover.
            return
        # The token is lost.  The lowest-MAC live member regenerates it —
        # but the master may be the dead node, so candidacy cascades by
        # rank: the k-th lowest MAC steps up after k+1 silent periods.
        # (Found by the crash property test: with master-only
        # regeneration, crashing the master deadlocked the ring.)
        self._regen_strikes += 1
        if self._regen_strikes <= self._regen_rank():
            return
        self.regenerations += 1
        if self._m_regen is not None:
            self._m_regen.inc()
        self.generation = (self.generation + 1) % (1 << 16)
        self.holding_token = True
        self._cycle_start = self.sim.now
        self._service_token()

    def __repr__(self) -> str:
        holder = "holder" if self.holding_token else "idle"
        return (
            f"RetherLayer({self._mac}, ring={len(self.ring)}, {holder}, "
            f"gen={self.generation})"
        )
