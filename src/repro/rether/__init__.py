"""Rether: software token-passing real-time Ethernet (paper §1, §6.2).

A from-scratch implementation of the behaviour the paper's case study
injects faults into: acknowledged round-robin token passing, failure
detection after three unacknowledged token transmissions, ring
reconstruction around dead nodes, token regeneration, and a simple
real-time reservation mode.
"""

from .install import install_rether
from .layer import (
    DEFAULT_ACK_TIMEOUT_NS,
    DEFAULT_BURST_FRAMES,
    DEFAULT_CYCLE_TARGET_NS,
    DEFAULT_MAX_TOKEN_ATTEMPTS,
    DEFAULT_REGENERATION_TIMEOUT_NS,
    RetherLayer,
)
from .messages import TYPE_TOKEN, TYPE_TOKEN_ACK, RetherMessage

__all__ = [
    "DEFAULT_ACK_TIMEOUT_NS",
    "DEFAULT_BURST_FRAMES",
    "DEFAULT_CYCLE_TARGET_NS",
    "DEFAULT_MAX_TOKEN_ATTEMPTS",
    "DEFAULT_REGENERATION_TIMEOUT_NS",
    "RetherLayer",
    "RetherMessage",
    "TYPE_TOKEN",
    "TYPE_TOKEN_ACK",
    "install_rether",
]
