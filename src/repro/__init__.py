"""VirtualWire reproduction: network fault injection and analysis.

A faithful Python reproduction of *VirtualWire: A Fault Injection and
Analysis Tool for Network Protocols* (De, Neogi, Chiueh — ICDCS 2003), on
top of a deterministic discrete-event testbed with from-scratch Ethernet,
IPv4, UDP, TCP, Rether and Reliable Link Layer implementations.

Quick start::

    from repro import Testbed, seconds

    tb = Testbed(seed=1)
    n1, n2 = tb.add_host("node1"), tb.add_host("node2")
    tb.add_switch("sw0"); tb.connect("sw0", n1, n2)
    tb.install_virtualwire(control="node1")
    report = tb.run_scenario(script_text, workload=start_traffic)
"""

from .core import (
    CompiledProgram,
    EndReason,
    ScenarioReport,
    Testbed,
    compile_text,
    parse_script,
)
from .errors import ReproError
from .sim import Simulator, ms, seconds, us
from .stack import CostModel, Host

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "CostModel",
    "EndReason",
    "Host",
    "ReproError",
    "ScenarioReport",
    "Simulator",
    "Testbed",
    "compile_text",
    "ms",
    "parse_script",
    "seconds",
    "us",
    "__version__",
]
