"""Byte-level helpers shared by the header codecs.

Includes the ones-complement Internet checksum (RFC 1071) used by IPv4, UDP
and TCP — in a paper-faithful per-word reference form and a vectorised fast
form (see docs/PERF.md) — big-endian field packing helpers, and a hexdump
for traces.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterable

from ..errors import PacketError

_NATIVE_BIG_ENDIAN = sys.byteorder == "big"


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement sum over *data* (odd length is zero-padded).

    This is the reference implementation; :func:`internet_checksum_fast`
    computes the identical value (pinned by tests/props/test_props_codec.py)
    roughly 20x faster and is what the ``fast`` frame codec uses.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksum_sum16(data) -> int:
    """Unfolded big-endian ones-complement word sum of *data*.

    The RFC 1071 trick: summing the native-endian 16-bit words (one C-level
    ``array`` pass) and byte-swapping the folded result equals the folded
    big-endian sum, because the end-around carry wraps identically in both
    byte orders.  Returning the *already re-swapped, folded* partial sum
    keeps partial sums from different sources addable: callers may combine
    with integer-derived big-endian sums and fold once at the end.

    *data* may be any C-contiguous bytes-like object (``bytes``,
    ``bytearray``, ``memoryview``); odd lengths are zero-padded like the
    checksum itself.  Only the final fragment of a checksum may be odd.
    """
    n = len(data)
    if n & 1:
        words = array("H", bytes(memoryview(data)[: n - 1]))
        trailer = data[n - 1]
    else:
        words = array("H", bytes(data) if not isinstance(data, (bytes, bytearray)) else data)
        trailer = 0
    total = sum(words)
    if _NATIVE_BIG_ENDIAN:
        total += trailer << 8
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        return total
    total += trailer
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ((total & 0xFF) << 8) | (total >> 8)


def fold_checksum(total: int) -> int:
    """Fold an accumulated big-endian word sum and complement it."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def internet_checksum_fast(data) -> int:
    """Vectorised RFC 1071 checksum, byte-identical to :func:`internet_checksum`."""
    return fold_checksum(checksum_sum16(data))


def verify_checksum(data: bytes) -> bool:
    """True if *data* (checksum field included) sums to the magic 0."""
    return internet_checksum(data) == 0


def pack_u8(value: int) -> bytes:
    if not 0 <= value <= 0xFF:
        raise PacketError(f"u8 out of range: {value}")
    return bytes([value])


def pack_u16(value: int) -> bytes:
    if not 0 <= value <= 0xFFFF:
        raise PacketError(f"u16 out of range: {value}")
    return value.to_bytes(2, "big")


def pack_u32(value: int) -> bytes:
    if not 0 <= value <= 0xFFFFFFFF:
        raise PacketError(f"u32 out of range: {value}")
    return value.to_bytes(4, "big")


def read_u8(data: bytes, offset: int) -> int:
    _check_bounds(data, offset, 1)
    return data[offset]


def read_u16(data: bytes, offset: int) -> int:
    _check_bounds(data, offset, 2)
    return int.from_bytes(data[offset : offset + 2], "big")


def read_u32(data: bytes, offset: int) -> int:
    _check_bounds(data, offset, 4)
    return int.from_bytes(data[offset : offset + 4], "big")


def _check_bounds(data: bytes, offset: int, size: int) -> None:
    if offset < 0 or offset + size > len(data):
        raise PacketError(
            f"read of {size} bytes at offset {offset} exceeds packet length {len(data)}"
        )


def patch_bytes(data: bytes, offset: int, replacement: bytes) -> bytes:
    """Return a copy of *data* with *replacement* spliced in at *offset*."""
    _check_bounds(data, offset, len(replacement))
    return data[:offset] + replacement + data[offset + len(replacement) :]


def hexdump(data: bytes, width: int = 16) -> str:
    """Classic offset/hex/ascii dump, used by the trace renderer."""
    lines = []
    for start in range(0, len(data), width):
        chunk = data[start : start + width]
        hex_part = " ".join(f"{b:02x}" for b in chunk)
        ascii_part = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{start:08x}  {hex_part:<{width * 3}} {ascii_part}")
    return "\n".join(lines)


def concat(parts: Iterable[bytes]) -> bytes:
    """Join byte fragments (single expansion point for later optimisation)."""
    return b"".join(parts)
