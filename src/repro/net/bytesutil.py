"""Byte-level helpers shared by the header codecs.

Includes the ones-complement Internet checksum (RFC 1071) used by IPv4, UDP
and TCP, big-endian field packing helpers, and a hexdump for traces.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import PacketError


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement sum over *data* (odd length is zero-padded)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if *data* (checksum field included) sums to the magic 0."""
    return internet_checksum(data) == 0


def pack_u8(value: int) -> bytes:
    if not 0 <= value <= 0xFF:
        raise PacketError(f"u8 out of range: {value}")
    return bytes([value])


def pack_u16(value: int) -> bytes:
    if not 0 <= value <= 0xFFFF:
        raise PacketError(f"u16 out of range: {value}")
    return value.to_bytes(2, "big")


def pack_u32(value: int) -> bytes:
    if not 0 <= value <= 0xFFFFFFFF:
        raise PacketError(f"u32 out of range: {value}")
    return value.to_bytes(4, "big")


def read_u8(data: bytes, offset: int) -> int:
    _check_bounds(data, offset, 1)
    return data[offset]


def read_u16(data: bytes, offset: int) -> int:
    _check_bounds(data, offset, 2)
    return int.from_bytes(data[offset : offset + 2], "big")


def read_u32(data: bytes, offset: int) -> int:
    _check_bounds(data, offset, 4)
    return int.from_bytes(data[offset : offset + 4], "big")


def _check_bounds(data: bytes, offset: int, size: int) -> None:
    if offset < 0 or offset + size > len(data):
        raise PacketError(
            f"read of {size} bytes at offset {offset} exceeds packet length {len(data)}"
        )


def patch_bytes(data: bytes, offset: int, replacement: bytes) -> bytes:
    """Return a copy of *data* with *replacement* spliced in at *offset*."""
    _check_bounds(data, offset, len(replacement))
    return data[:offset] + replacement + data[offset + len(replacement) :]


def hexdump(data: bytes, width: int = 16) -> str:
    """Classic offset/hex/ascii dump, used by the trace renderer."""
    lines = []
    for start in range(0, len(data), width):
        chunk = data[start : start + width]
        hex_part = " ".join(f"{b:02x}" for b in chunk)
        ascii_part = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{start:08x}  {hex_part:<{width * 3}} {ascii_part}")
    return "\n".join(lines)


def concat(parts: Iterable[bytes]) -> bytes:
    """Join byte fragments (single expansion point for later optimisation)."""
    return b"".join(parts)
