"""Whole-frame builders and a lazy parsed view.

The VirtualWire engine treats packets as raw bytes (the filter table matches
by offset), while the protocol stacks and the trace renderer want structured
headers.  :class:`FrameView` bridges the two: it wraps raw frame bytes and
parses each layer on demand, tolerating corrupt packets (a MODIFY fault is
supposed to produce those) by degrading to ``None`` instead of raising.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import PacketError
from .addresses import IpAddress, MacAddress
from .frame import ETHERTYPE_IPV4, ETHERTYPE_RETHER, EthernetFrame
from .ip import PROTO_TCP, PROTO_UDP, Ipv4Packet
from .tcp_segment import TcpSegment, flags_to_str
from .udp import UdpDatagram

#: Frame offsets used across the library (and in the paper's scripts).
OFFSET_ETHERTYPE = 12
OFFSET_IP = 14
OFFSET_TRANSPORT = 34


def build_udp_frame(
    src_mac: Union[str, MacAddress],
    dst_mac: Union[str, MacAddress],
    src_ip: Union[str, IpAddress],
    dst_ip: Union[str, IpAddress],
    src_port: int,
    dst_port: int,
    payload: bytes,
    ttl: int = 64,
    ident: int = 0,
) -> EthernetFrame:
    """Assemble a complete Ethernet/IPv4/UDP frame."""
    src_ip = IpAddress(src_ip)
    dst_ip = IpAddress(dst_ip)
    datagram = UdpDatagram(src_port, dst_port, payload)
    packet = Ipv4Packet(
        src=src_ip,
        dst=dst_ip,
        protocol=PROTO_UDP,
        payload=datagram.to_bytes(src_ip, dst_ip),
        ttl=ttl,
        ident=ident,
    )
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, packet.to_bytes())


def build_tcp_frame(
    src_mac: Union[str, MacAddress],
    dst_mac: Union[str, MacAddress],
    src_ip: Union[str, IpAddress],
    dst_ip: Union[str, IpAddress],
    segment: TcpSegment,
    ttl: int = 64,
    ident: int = 0,
) -> EthernetFrame:
    """Assemble a complete Ethernet/IPv4/TCP frame around *segment*."""
    src_ip = IpAddress(src_ip)
    dst_ip = IpAddress(dst_ip)
    packet = Ipv4Packet(
        src=src_ip,
        dst=dst_ip,
        protocol=PROTO_TCP,
        payload=segment.to_bytes(src_ip, dst_ip),
        ttl=ttl,
        ident=ident,
    )
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, packet.to_bytes())


class FrameView:
    """A lazily parsed, corruption-tolerant view over raw frame bytes."""

    __slots__ = ("data", "_eth", "_ip", "_tcp", "_udp", "_parsed_ip", "_parsed_transport")

    def __init__(self, data: Union[bytes, EthernetFrame]) -> None:
        if isinstance(data, EthernetFrame):
            data = data.to_bytes()
        self.data = bytes(data)
        self._eth: Optional[EthernetFrame] = None
        self._ip: Optional[Ipv4Packet] = None
        self._tcp: Optional[TcpSegment] = None
        self._udp: Optional[UdpDatagram] = None
        self._parsed_ip = False
        self._parsed_transport = False

    # -- layer accessors --------------------------------------------------

    @property
    def eth(self) -> Optional[EthernetFrame]:
        """The Ethernet layer, or None if the bytes are too short."""
        if self._eth is None:
            try:
                self._eth = EthernetFrame.from_bytes(self.data)
            except PacketError:
                return None
        return self._eth

    @property
    def ip(self) -> Optional[Ipv4Packet]:
        """The IPv4 layer (checksum not enforced), or None."""
        if not self._parsed_ip:
            self._parsed_ip = True
            eth = self.eth
            if eth is not None and eth.ethertype == ETHERTYPE_IPV4:
                try:
                    self._ip = Ipv4Packet.from_bytes(eth.payload, verify=False)
                except PacketError:
                    self._ip = None
        return self._ip

    def _parse_transport(self) -> None:
        if self._parsed_transport:
            return
        self._parsed_transport = True
        ip = self.ip
        if ip is None:
            return
        try:
            if ip.protocol == PROTO_TCP:
                self._tcp = TcpSegment.from_bytes(ip.payload, verify=False)
            elif ip.protocol == PROTO_UDP:
                self._udp = UdpDatagram.from_bytes(ip.payload, verify=False)
        except PacketError:
            pass

    @property
    def tcp(self) -> Optional[TcpSegment]:
        """The TCP layer if this is a parseable TCP frame, else None."""
        self._parse_transport()
        return self._tcp

    @property
    def udp(self) -> Optional[UdpDatagram]:
        """The UDP layer if this is a parseable UDP frame, else None."""
        self._parse_transport()
        return self._udp

    @property
    def is_rether(self) -> bool:
        eth = self.eth
        return eth is not None and eth.ethertype == ETHERTYPE_RETHER

    def __len__(self) -> int:
        return len(self.data)

    def summary(self) -> str:
        """One-line description, tcpdump style, for traces and reports."""
        eth = self.eth
        if eth is None:
            return f"<runt frame, {len(self.data)}B>"
        tcp = self.tcp
        if tcp is not None and self.ip is not None:
            return (
                f"TCP {self.ip.src}:{tcp.src_port} > {self.ip.dst}:{tcp.dst_port} "
                f"[{flags_to_str(tcp.flags)}] seq={tcp.seq} ack={tcp.ack} "
                f"len={len(tcp.payload)}"
            )
        udp = self.udp
        if udp is not None and self.ip is not None:
            return (
                f"UDP {self.ip.src}:{udp.src_port} > {self.ip.dst}:{udp.dst_port} "
                f"len={len(udp.payload)}"
            )
        if self.ip is not None:
            return (
                f"IP {self.ip.src} > {self.ip.dst} proto={self.ip.protocol} "
                f"len={len(self.ip.payload)}"
            )
        if self.is_rether:
            return f"RETHER {eth.src} > {eth.dst} len={len(eth.payload)}"
        return f"ETH {eth.src} > {eth.dst} type={eth.ethertype:#06x} len={len(eth.payload)}"

    def __repr__(self) -> str:
        return f"FrameView({self.summary()})"
