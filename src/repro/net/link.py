"""Transmission media: point-to-point links and the shared hub/bus.

All media share the same service model: a frame occupies a transmitter for
``len * 8 / bandwidth`` of virtual time, then arrives after the propagation
delay.  Frames that find the transmitter busy wait in a bounded FIFO; when
the FIFO is full the frame is tail-dropped (a loss the VirtualWire engine is
*not* told about — which is precisely why the paper adds the Reliable Link
Layer below the engine).

A configurable bit-error rate corrupts frames in flight; corrupted frames
are delivered with a flag and discarded by the receiving NIC's FCS check.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

from ..errors import TopologyError
from ..sim import NS_PER_SEC, Simulator
from .nic import Nic

#: Default medium parameters: the paper's testbed is a 100 Mbps switched LAN.
DEFAULT_BANDWIDTH_BPS = 100_000_000
DEFAULT_PROPAGATION_NS = 1_000  # ~200 m of cable
DEFAULT_QUEUE_FRAMES = 128

#: Signature of a delivery callback: (frame_bytes, corrupted).
DeliverFn = Callable[[bytes, bool], None]


class _Transmitter:
    """One serialising FIFO: models a single wire direction (or shared bus)."""

    __slots__ = ("queue", "busy", "drops", "frames", "bytes")

    def __init__(self) -> None:
        self.queue: Deque[Tuple[bytes, DeliverFn]] = deque()
        self.busy = False
        self.drops = 0
        self.frames = 0
        self.bytes = 0

    def stats(self) -> Dict[str, int]:
        return {"frames": self.frames, "bytes": self.bytes, "queue_drops": self.drops}


class Medium:
    """Base class handling attachment bookkeeping and the bit-error model."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        propagation_ns: int = DEFAULT_PROPAGATION_NS,
        bit_error_rate: float = 0.0,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> None:
        if bandwidth_bps <= 0:
            raise TopologyError(f"bandwidth must be positive, got {bandwidth_bps}")
        if queue_frames < 1:
            raise TopologyError(f"queue must hold at least 1 frame, got {queue_frames}")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.propagation_ns = propagation_ns
        self.bit_error_rate = bit_error_rate
        self.queue_frames = queue_frames
        self._nics: List[Nic] = []
        self._errors = sim.random.stream(f"medium:{name}:biterrors")

    # -- attachment -------------------------------------------------------

    def attach(self, nic: Nic) -> int:
        """Plug *nic* in; returns the port number."""
        port = len(self._nics)
        self._check_capacity(port)
        self._nics.append(nic)
        nic.attached_to(self, port)
        return port

    def _check_capacity(self, next_port: int) -> None:
        """Subclasses bound the port count here."""

    @property
    def nics(self) -> List[Nic]:
        return list(self._nics)

    # -- service model ------------------------------------------------------

    def serialization_ns(self, frame_bytes: bytes) -> int:
        """Time the frame occupies the transmitter, in nanoseconds."""
        return (len(frame_bytes) * 8 * NS_PER_SEC) // self.bandwidth_bps

    def _frame_corrupted(self, frame_bytes: bytes) -> bool:
        if self.bit_error_rate <= 0.0:
            return False
        per_frame = 1.0 - (1.0 - self.bit_error_rate) ** (len(frame_bytes) * 8)
        return self._errors.chance(per_frame)

    def _serve(self, tx: _Transmitter, frame_bytes: bytes, deliver: DeliverFn) -> bool:
        """Enqueue onto *tx*; returns False on tail drop."""
        if tx.busy and len(tx.queue) >= self.queue_frames:
            tx.drops += 1
            return False
        tx.queue.append((frame_bytes, deliver))
        if not tx.busy:
            self._start_next(tx)
        return True

    def _start_next(self, tx: _Transmitter) -> None:
        frame_bytes, deliver = tx.queue.popleft()
        tx.busy = True
        tx.frames += 1
        tx.bytes += len(frame_bytes)

        def finish_transmission() -> None:
            corrupted = self._frame_corrupted(frame_bytes)
            self.sim.after(
                self.propagation_ns,
                lambda: deliver(frame_bytes, corrupted),
                f"{self.name}:deliver",
            )
            if tx.queue:
                self._start_next(tx)
            else:
                tx.busy = False

        self.sim.after(
            self.serialization_ns(frame_bytes),
            finish_transmission,
            f"{self.name}:txdone",
        )

    def transmit(self, port: int, frame_bytes: bytes) -> None:
        raise NotImplementedError


class PointToPointLink(Medium):
    """A full-duplex two-station link with an independent FIFO per direction."""

    def __init__(self, sim: Simulator, name: str = "link", **kwargs) -> None:
        super().__init__(sim, name, **kwargs)
        self._directions = {0: _Transmitter(), 1: _Transmitter()}

    def _check_capacity(self, next_port: int) -> None:
        if next_port >= 2:
            raise TopologyError(f"{self.name}: a point-to-point link has 2 ports")

    def transmit(self, port: int, frame_bytes: bytes) -> None:
        if port not in self._directions:
            raise TopologyError(f"{self.name}: unknown port {port}")
        if len(self._nics) < 2:
            raise TopologyError(f"{self.name}: both ends must be attached first")
        peer = self._nics[1 - port]
        self._serve(self._directions[port], frame_bytes, peer.deliver)

    def stats(self) -> Dict[str, int]:
        """Aggregate frame/drop counters across both directions."""
        totals = {"frames": 0, "bytes": 0, "queue_drops": 0}
        for tx in self._directions.values():
            for key, value in tx.stats().items():
                totals[key] += value
        return totals


class Hub(Medium):
    """A shared half-duplex segment: one transmitter serves every station.

    This models the collision-domain contention the paper blames for the
    throughput dip past 90 Mbps: all stations (and the RLL's acknowledgement
    traffic) compete for a single 100 Mbps resource, so extra control frames
    directly steal goodput and overflow the shared queue under high load.
    """

    def __init__(self, sim: Simulator, name: str = "hub", **kwargs) -> None:
        super().__init__(sim, name, **kwargs)
        self._shared = _Transmitter()

    def transmit(self, port: int, frame_bytes: bytes) -> None:
        if port >= len(self._nics):
            raise TopologyError(f"{self.name}: unknown port {port}")

        def deliver(data: bytes, corrupted: bool) -> None:
            for other_port, nic in enumerate(self._nics):
                if other_port != port:
                    nic.deliver(data, corrupted)

        self._serve(self._shared, frame_bytes, deliver)

    def stats(self) -> Dict[str, int]:
        return self._shared.stats()


#: A shared bus (the medium Rether regulates) behaves identically to a hub.
SharedBus = Hub
