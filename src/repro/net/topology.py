"""Topology builder: declarative wiring of NICs onto media.

The testbeds in the paper are tiny (2–4 hosts on one switch or bus), but the
builder supports arbitrary LANs: any number of switches, hubs and
point-to-point links, with validation that every NIC ends up attached
exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import TopologyError
from ..sim import Simulator
from .link import Hub, Medium, PointToPointLink, SharedBus
from .nic import Nic
from .switch import LearningSwitch


class Topology:
    """Owns the media of a simulated LAN and wires NICs into them."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._media: Dict[str, Medium] = {}

    # -- media factories ----------------------------------------------------

    def add_link(self, name: str, **kwargs) -> PointToPointLink:
        """Create a named point-to-point link."""
        return self._register(PointToPointLink(self.sim, name, **kwargs))

    def add_switch(self, name: str, **kwargs) -> LearningSwitch:
        """Create a named learning switch."""
        return self._register(LearningSwitch(self.sim, name, **kwargs))

    def add_hub(self, name: str, **kwargs) -> Hub:
        """Create a named hub (shared collision domain)."""
        return self._register(Hub(self.sim, name, **kwargs))

    def add_bus(self, name: str, **kwargs) -> SharedBus:
        """Create a named shared bus (what Rether regulates)."""
        return self._register(SharedBus(self.sim, name, **kwargs))

    def _register(self, medium: Medium) -> Medium:
        if medium.name in self._media:
            raise TopologyError(f"duplicate medium name: {medium.name!r}")
        self._media[medium.name] = medium
        return medium

    # -- wiring ---------------------------------------------------------------

    def connect(self, medium_name: str, *nics: Nic) -> None:
        """Attach each NIC to the named medium."""
        medium = self.medium(medium_name)
        for nic in nics:
            medium.attach(nic)

    def medium(self, name: str) -> Medium:
        """Look up a medium by name."""
        try:
            return self._media[name]
        except KeyError:
            raise TopologyError(f"unknown medium: {name!r}") from None

    @property
    def media(self) -> List[Medium]:
        return list(self._media.values())

    def validate(self, nics: Optional[Iterable[Nic]] = None) -> None:
        """Check structural soundness; raises :class:`TopologyError` if broken.

        * every point-to-point link has exactly two stations;
        * every supplied NIC is attached to some medium.
        """
        for medium in self._media.values():
            if isinstance(medium, PointToPointLink) and len(medium.nics) != 2:
                raise TopologyError(
                    f"link {medium.name!r} has {len(medium.nics)} station(s), needs 2"
                )
        if nics is not None:
            for nic in nics:
                if nic.medium is None:
                    raise TopologyError(f"{nic.name} is not attached to any medium")

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{name}({type(m).__name__}, {len(m.nics)} ports)"
            for name, m in self._media.items()
        )
        return f"Topology({kinds})"
