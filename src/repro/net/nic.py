"""Network interface cards.

A :class:`Nic` is the boundary between a host's software stack and a
transmission medium.  The stack hands it serialised frames; the medium calls
:meth:`Nic.deliver` with received bytes.  The NIC performs the two checks a
real card does in hardware:

* **FCS filtering** — frames flagged as corrupted by the medium's bit-error
  model are silently discarded (and counted), exactly the loss mode the
  paper's Reliable Link Layer exists to mask;
* **address filtering** — unicast frames for other stations are dropped
  unless promiscuous mode is on (the FIE/FAE layer does not need
  promiscuous mode: it observes its own host's traffic only, per §3.1).

``FAIL(node)`` faults take the NIC down; a downed NIC neither transmits nor
delivers.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..errors import TopologyError
from ..sim import Simulator
from .addresses import MacAddress
from .frame import HEADER_LEN

#: Handler invoked with raw frame bytes on reception.
ReceiveHandler = Callable[[bytes], None]


class Nic:
    """A simulated Ethernet interface."""

    def __init__(
        self,
        sim: Simulator,
        mac: Union[str, bytes, MacAddress],
        name: str = "",
        promiscuous: bool = False,
    ) -> None:
        self.sim = sim
        self.mac = MacAddress(mac)
        self.name = name or f"nic-{self.mac}"
        self.promiscuous = promiscuous
        self.is_up = True
        self._medium = None
        self._port: Optional[int] = None
        self._receive_handler: Optional[ReceiveHandler] = None
        # Counters, in the spirit of `ifconfig` output.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.fcs_drops = 0
        self.filtered_frames = 0
        self.down_drops = 0

    # -- wiring -----------------------------------------------------------

    def attached_to(self, medium, port: int) -> None:
        """Record the medium this NIC is plugged into (called by the medium)."""
        if self._medium is not None:
            raise TopologyError(f"{self.name} is already attached to a medium")
        self._medium = medium
        self._port = port

    @property
    def medium(self):
        return self._medium

    def set_receive_handler(self, handler: ReceiveHandler) -> None:
        """Install the upcall for received frames (the driver layer)."""
        self._receive_handler = handler

    # -- admin ------------------------------------------------------------

    def bring_down(self) -> None:
        """Administratively disable the interface (used by FAIL faults)."""
        self.is_up = False

    def bring_up(self) -> None:
        self.is_up = True

    # -- datapath ---------------------------------------------------------

    def transmit(self, frame_bytes: bytes) -> bool:
        """Hand a serialised frame to the medium.

        Returns True if the frame entered the medium, False if it was
        dropped locally (interface down or unattached).
        """
        if not self.is_up or self._medium is None:
            self.down_drops += 1
            return False
        self.tx_frames += 1
        self.tx_bytes += len(frame_bytes)
        self._medium.transmit(self._port, frame_bytes)
        return True

    def deliver(self, frame_bytes: bytes, corrupted: bool = False) -> None:
        """Receive bytes from the medium (called by the medium)."""
        if not self.is_up:
            self.down_drops += 1
            return
        if corrupted:
            # The frame check sequence failed: hardware drops it silently.
            self.fcs_drops += 1
            return
        if not self._accepts(frame_bytes):
            self.filtered_frames += 1
            return
        self.rx_frames += 1
        self.rx_bytes += len(frame_bytes)
        if self._receive_handler is not None:
            self._receive_handler(frame_bytes)

    def _accepts(self, frame_bytes: bytes) -> bool:
        if self.promiscuous or len(frame_bytes) < HEADER_LEN:
            return True
        dst = frame_bytes[0:6]
        if dst == self.mac.packed:
            return True
        # Accept broadcast and all multicast (Rether uses multicast control).
        return bool(dst[0] & 0x01)

    def __repr__(self) -> str:
        state = "up" if self.is_up else "down"
        return f"Nic({self.name}, {self.mac}, {state})"
