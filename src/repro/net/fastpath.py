"""The ``fast`` frame codec: allocation-lean header (de)serialisation.

This module is the hot-path twin of the reference codecs in
:mod:`repro.net.frame` / :mod:`repro.net.ip` / :mod:`repro.net.tcp_segment` /
:mod:`repro.net.udp`.  Every function here produces **byte-identical wire
output** and the **same accept/reject decisions** as the reference path —
pinned by the differential property tests (tests/props/test_props_codec.py)
and the golden harness (tests/differential/) — while avoiding the per-frame
object churn the reference path pays for its readability:

* checksums are computed from integer field values plus one vectorised
  pass over the payload (:func:`repro.net.bytesutil.checksum_sum16`), so
  headers are never serialised twice and pseudo-headers never materialise;
* whole headers are packed/unpacked with precompiled :mod:`struct` layouts
  instead of per-field ``bytes`` concatenation;
* parsed packets are built with ``__new__``, skipping constructor
  revalidation of fields that came off the wire and are in range by
  construction;
* MAC/IP addresses are interned: a testbed has a handful of stations, so
  every parse returns the same immutable address objects instead of
  allocating new ones per packet.

The codec is selected per testbed via ``EngineConfig.frame_codec``
(``"fast"`` default, ``"reference"`` fallback); the reference path stays
untouched as the differential oracle.  See docs/PERF.md.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from ..errors import ChecksumError, PacketError
from .addresses import IpAddress, MacAddress
from .bytesutil import checksum_sum16, fold_checksum
from .frame import ETHERTYPE_IPV4, MAX_PAYLOAD
from .frame import HEADER_LEN as ETH_HEADER_LEN
from .ip import HEADER_LEN as IP_HEADER_LEN
from .ip import PROTO_TCP, PROTO_UDP, Ipv4Packet
from .tcp_segment import TcpSegment
from .udp import UdpDatagram

#: Valid values for ``EngineConfig.frame_codec`` / ``Host.frame_codec``.
FRAME_CODEC_KINDS = frozenset({"fast", "reference"})

__all__ = [
    "FRAME_CODEC_KINDS",
    "intern_ip",
    "intern_mac",
    "pseudo_header_sum",
    "encode_tcp_segment",
    "encode_udp_datagram",
    "encode_ipv4_frame",
    "parse_ipv4_frame",
    "parse_tcp_segment",
    "parse_udp_datagram",
    "HeaderView",
]

# -- address interning ------------------------------------------------------

_MAC_CACHE: Dict[bytes, MacAddress] = {}
_IP_CACHE: Dict[bytes, IpAddress] = {}


def intern_mac(packed: bytes) -> MacAddress:
    """The canonical :class:`MacAddress` for 6 packed bytes (cached)."""
    mac = _MAC_CACHE.get(packed)
    if mac is None:
        mac = _MAC_CACHE.setdefault(bytes(packed), MacAddress(packed))
    return mac


def intern_ip(packed: bytes) -> IpAddress:
    """The canonical :class:`IpAddress` for 4 packed bytes (cached)."""
    ip = _IP_CACHE.get(packed)
    if ip is None:
        ip = _IP_CACHE.setdefault(bytes(packed), IpAddress(packed))
    return ip


# -- checksum building blocks ----------------------------------------------


def pseudo_header_sum(src_packed: bytes, dst_packed: bytes, protocol: int, length: int) -> int:
    """Big-endian word sum of the RFC 793/768 pseudo header, from integers."""
    s = int.from_bytes(src_packed, "big")
    d = int.from_bytes(dst_packed, "big")
    return (s >> 16) + (s & 0xFFFF) + (d >> 16) + (d & 0xFFFF) + protocol + length


# -- encoders ---------------------------------------------------------------

#: src_port, dst_port, seq, ack, data_offset|flags, window, checksum, urgent.
_TCP_HDR = struct.Struct(">HHIIHHHH")
#: src_port, dst_port, length, checksum.
_UDP_HDR = struct.Struct(">HHHH")
#: dst_mac, src_mac, ethertype | ver_ihl_tos, total_len, ident, flags_frag,
#: ttl, protocol, checksum, src_ip, dst_ip.
_ETH_IP_HDR = struct.Struct(">6s6sHHHHHBBH4s4s")


def encode_tcp_segment(seg: TcpSegment, src_ip: IpAddress, dst_ip: IpAddress) -> bytes:
    """Byte-identical fast twin of :meth:`TcpSegment.to_bytes`."""
    payload = seg.payload
    data_offset_flags = (5 << 12) | seg.flags
    total = (
        pseudo_header_sum(src_ip.packed, dst_ip.packed, PROTO_TCP, 20 + len(payload))
        + seg.src_port
        + seg.dst_port
        + (seg.seq >> 16)
        + (seg.seq & 0xFFFF)
        + (seg.ack >> 16)
        + (seg.ack & 0xFFFF)
        + data_offset_flags
        + seg.window
    )
    if payload:
        total += checksum_sum16(payload)
    header = _TCP_HDR.pack(
        seg.src_port,
        seg.dst_port,
        seg.seq,
        seg.ack,
        data_offset_flags,
        seg.window,
        fold_checksum(total),
        0,
    )
    return header + payload if payload else header


def encode_udp_datagram(dgram: UdpDatagram, src_ip: IpAddress, dst_ip: IpAddress) -> bytes:
    """Byte-identical fast twin of :meth:`UdpDatagram.to_bytes`."""
    payload = dgram.payload
    length = 8 + len(payload)
    total = (
        pseudo_header_sum(src_ip.packed, dst_ip.packed, PROTO_UDP, length)
        + dgram.src_port
        + dgram.dst_port
        + length
    )
    if payload:
        total += checksum_sum16(payload)
    # RFC 768: a computed zero is transmitted as all-ones.
    checksum = fold_checksum(total) or 0xFFFF
    header = _UDP_HDR.pack(dgram.src_port, dgram.dst_port, length, checksum)
    return header + payload if payload else header


def encode_ipv4_frame(
    dst_mac: bytes,
    src_mac: bytes,
    src_ip: bytes,
    dst_ip: bytes,
    protocol: int,
    ident: int,
    payload: bytes,
) -> bytes:
    """One-shot Ethernet+IPv4 frame builder (ttl 64, tos 0, DF set).

    Byte-identical to ``EthernetFrame(dst, src, ETHERTYPE_IPV4,
    Ipv4Packet(...).to_bytes()).to_bytes()`` for the defaults the IP layer
    uses, including the reference path's Ethernet MTU check.
    """
    total_len = IP_HEADER_LEN + len(payload)
    if total_len > MAX_PAYLOAD:
        raise PacketError(
            f"payload of {total_len} bytes exceeds Ethernet MTU {MAX_PAYLOAD}"
        )
    s = int.from_bytes(src_ip, "big")
    d = int.from_bytes(dst_ip, "big")
    header_sum = (
        0x4500
        + total_len
        + ident
        + 0x4000  # flags: DF
        + (64 << 8)  # ttl
        + protocol
        + (s >> 16)
        + (s & 0xFFFF)
        + (d >> 16)
        + (d & 0xFFFF)
    )
    header = _ETH_IP_HDR.pack(
        dst_mac,
        src_mac,
        ETHERTYPE_IPV4,
        0x4500,
        total_len,
        ident,
        0x4000,
        64,
        protocol,
        fold_checksum(header_sum),
        src_ip,
        dst_ip,
    )
    return header + payload if payload else header


# -- parsers ----------------------------------------------------------------


def parse_ipv4_frame(frame_bytes: bytes) -> Ipv4Packet:
    """Fast twin of ``Ipv4Packet.from_bytes(frame_bytes[14:], verify=True)``.

    Operates on the whole frame (no intermediate slice of the IP packet)
    and accepts/rejects exactly the same inputs as the reference parser —
    every reject raises :class:`PacketError`/:class:`ChecksumError` just
    like the reference, so the IP layer's drop accounting is unchanged.
    """
    n = len(frame_bytes) - ETH_HEADER_LEN
    if n < IP_HEADER_LEN:
        raise PacketError(f"IPv4 packet of {n} bytes is too short")
    version_ihl = frame_bytes[14]
    if version_ihl >> 4 != 4:
        raise PacketError(f"not an IPv4 packet (version nibble {version_ihl >> 4})")
    if (version_ihl & 0x0F) * 4 != IP_HEADER_LEN:
        raise PacketError(f"IPv4 options unsupported (IHL {(version_ihl & 0x0F) * 4} bytes)")
    total_length = (frame_bytes[16] << 8) | frame_bytes[17]
    if total_length > n or total_length < IP_HEADER_LEN:
        raise PacketError(
            f"IPv4 total length {total_length} inconsistent with {n} bytes"
        )
    if fold_checksum(checksum_sum16(frame_bytes[14:34])) != 0:
        raise ChecksumError("IPv4 header checksum mismatch")
    flags_frag = (frame_bytes[20] << 8) | frame_bytes[21]
    if flags_frag & 0x3FFF:
        raise PacketError("IPv4 fragmentation is not modelled")
    packet = Ipv4Packet.__new__(Ipv4Packet)
    packet.src = intern_ip(frame_bytes[26:30])
    packet.dst = intern_ip(frame_bytes[30:34])
    packet.protocol = frame_bytes[23]
    packet.payload = frame_bytes[34 : 14 + total_length]
    packet.ttl = frame_bytes[22]
    packet.tos = frame_bytes[15]
    packet.ident = (frame_bytes[18] << 8) | frame_bytes[19]
    packet.dont_fragment = bool(flags_frag & 0x4000)
    return packet


def parse_tcp_segment(data: bytes, src_ip: IpAddress, dst_ip: IpAddress) -> TcpSegment:
    """Fast twin of ``TcpSegment.from_bytes(data, src_ip, dst_ip, verify=True)``."""
    if len(data) < 20:
        raise PacketError(f"TCP segment of {len(data)} bytes is too short")
    data_offset_flags = (data[12] << 8) | data[13]
    if (data_offset_flags >> 12) * 4 != 20:
        raise PacketError(
            f"TCP options unsupported (header {(data_offset_flags >> 12) * 4} bytes)"
        )
    total = pseudo_header_sum(src_ip.packed, dst_ip.packed, PROTO_TCP, len(data))
    if fold_checksum(total + checksum_sum16(data)) != 0:
        raise ChecksumError("TCP checksum mismatch")
    seg = TcpSegment.__new__(TcpSegment)
    seg.src_port = (data[0] << 8) | data[1]
    seg.dst_port = (data[2] << 8) | data[3]
    seg.seq = int.from_bytes(data[4:8], "big")
    seg.ack = int.from_bytes(data[8:12], "big")
    seg.flags = data_offset_flags & 0x3F
    seg.window = (data[14] << 8) | data[15]
    seg.payload = data[20:]
    return seg


def parse_udp_datagram(data: bytes, src_ip: IpAddress, dst_ip: IpAddress) -> UdpDatagram:
    """Fast twin of ``UdpDatagram.from_bytes(data, src_ip, dst_ip, verify=True)``."""
    if len(data) < 8:
        raise PacketError(f"UDP datagram of {len(data)} bytes is too short")
    length = (data[4] << 8) | data[5]
    if length < 8 or length > len(data):
        raise PacketError(
            f"UDP length field {length} inconsistent with {len(data)} bytes"
        )
    checksum = (data[6] << 8) | data[7]
    if checksum != 0:
        total = pseudo_header_sum(src_ip.packed, dst_ip.packed, PROTO_UDP, length)
        if fold_checksum(total + checksum_sum16(data[:length])) != 0:
            raise ChecksumError("UDP checksum mismatch")
    dgram = UdpDatagram.__new__(UdpDatagram)
    dgram.src_port = (data[0] << 8) | data[1]
    dgram.dst_port = (data[2] << 8) | data[3]
    dgram.payload = data[8:length]
    return dgram


# -- lazy zero-copy view ----------------------------------------------------


class HeaderView:
    """A lazy, zero-copy, parse-on-demand view over raw frame bytes.

    Unlike :class:`repro.net.packet.FrameView` — which materialises whole
    layer objects (and copies their payloads) on access — a ``HeaderView``
    never copies: each accessor reads its field straight out of the
    underlying buffer through a :class:`memoryview` and caches the scalar.
    Corruption tolerance matches ``FrameView``: a field that does not fit
    in the frame reads as ``None`` instead of raising.
    """

    __slots__ = ("_mv", "_len", "_cache")

    def __init__(self, data: bytes) -> None:
        self._mv = memoryview(data)
        self._len = len(data)
        self._cache: Dict[str, Optional[int]] = {}

    def _u(self, key: str, offset: int, nbytes: int) -> Optional[int]:
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        if offset + nbytes > self._len:
            value: Optional[int] = None
        else:
            value = int.from_bytes(self._mv[offset : offset + nbytes], "big")
        self._cache[key] = value
        return value

    # Ethernet ----------------------------------------------------------
    @property
    def dst_mac(self) -> Optional[bytes]:
        return bytes(self._mv[0:6]) if self._len >= 6 else None

    @property
    def src_mac(self) -> Optional[bytes]:
        return bytes(self._mv[6:12]) if self._len >= 12 else None

    @property
    def ethertype(self) -> Optional[int]:
        return self._u("ethertype", 12, 2)

    # IPv4 --------------------------------------------------------------
    @property
    def is_ipv4(self) -> bool:
        return self.ethertype == ETHERTYPE_IPV4 and self._u("ver_ihl", 14, 1) == 0x45

    @property
    def ip_protocol(self) -> Optional[int]:
        return self._u("proto", 23, 1) if self.is_ipv4 else None

    @property
    def ip_total_length(self) -> Optional[int]:
        return self._u("total_len", 16, 2) if self.is_ipv4 else None

    @property
    def src_ip(self) -> Optional[IpAddress]:
        if not self.is_ipv4 or self._len < 30:
            return None
        return intern_ip(bytes(self._mv[26:30]))

    @property
    def dst_ip(self) -> Optional[IpAddress]:
        if not self.is_ipv4 or self._len < 34:
            return None
        return intern_ip(bytes(self._mv[30:34]))

    # Transport ---------------------------------------------------------
    @property
    def src_port(self) -> Optional[int]:
        return self._u("src_port", 34, 2) if self.ip_protocol in (PROTO_TCP, PROTO_UDP) else None

    @property
    def dst_port(self) -> Optional[int]:
        return self._u("dst_port", 36, 2) if self.ip_protocol in (PROTO_TCP, PROTO_UDP) else None

    @property
    def tcp_seq(self) -> Optional[int]:
        return self._u("tcp_seq", 38, 4) if self.ip_protocol == PROTO_TCP else None

    @property
    def tcp_ack(self) -> Optional[int]:
        return self._u("tcp_ack", 42, 4) if self.ip_protocol == PROTO_TCP else None

    @property
    def tcp_flags(self) -> Optional[int]:
        value = self._u("tcp_flags", 46, 2) if self.ip_protocol == PROTO_TCP else None
        return value & 0x3F if value is not None else None

    def __len__(self) -> int:
        return self._len


_MISSING = object()
