"""A store-and-forward learning Ethernet switch.

Each port is full duplex with its own egress FIFO, so two hosts can exchange
data at full line rate in both directions — matching the paper's testbed
("2 Pentium-4 hosts connected using a 100Mbps switch").  The switch learns
source MACs and floods unknown or broadcast/multicast destinations.

The paper notes that VirtualWire components cannot be installed on switches
(§3.1), so the FIE/FAE never runs here; faults on switch-adjacent links must
be emulated from the attached hosts, exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Dict

from ..errors import TopologyError
from ..sim import Simulator
from .addresses import MacAddress
from .frame import HEADER_LEN
from .link import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_NS, Medium, _Transmitter

#: Time the switch spends on lookup + store-and-forward per frame.
DEFAULT_FORWARDING_NS = 2_000


class LearningSwitch(Medium):
    """An N-port learning switch with per-egress-port queues."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        propagation_ns: int = DEFAULT_PROPAGATION_NS,
        forwarding_ns: int = DEFAULT_FORWARDING_NS,
        **kwargs,
    ) -> None:
        super().__init__(
            sim, name, bandwidth_bps=bandwidth_bps, propagation_ns=propagation_ns, **kwargs
        )
        self.forwarding_ns = forwarding_ns
        self._mac_table: Dict[MacAddress, int] = {}
        self._egress: Dict[int, _Transmitter] = {}
        self.flooded_frames = 0
        self.forwarded_frames = 0

    def attach(self, nic) -> int:
        port = super().attach(nic)
        self._egress[port] = _Transmitter()
        return port

    # -- forwarding ---------------------------------------------------------

    def transmit(self, ingress_port: int, frame_bytes: bytes) -> None:
        if ingress_port >= len(self._nics):
            raise TopologyError(f"{self.name}: unknown port {ingress_port}")
        if len(frame_bytes) < HEADER_LEN:
            return  # runt frame: a real switch discards it
        self._learn(frame_bytes, ingress_port)
        dst = MacAddress(frame_bytes[0:6])
        self.sim.after(
            self.forwarding_ns,
            lambda: self._forward(ingress_port, dst, frame_bytes),
            f"{self.name}:forward",
        )

    def _learn(self, frame_bytes: bytes, ingress_port: int) -> None:
        src = MacAddress(frame_bytes[6:12])
        if not src.is_multicast:
            self._mac_table[src] = ingress_port

    def _forward(self, ingress_port: int, dst: MacAddress, frame_bytes: bytes) -> None:
        if not dst.is_multicast and dst in self._mac_table:
            egress = self._mac_table[dst]
            if egress != ingress_port:
                self.forwarded_frames += 1
                self._enqueue(egress, frame_bytes)
            # Destination hangs off the ingress port: nothing to do.
            return
        # Unknown unicast, broadcast, or multicast: flood.
        self.flooded_frames += 1
        for port in range(len(self._nics)):
            if port != ingress_port:
                self._enqueue(port, frame_bytes)

    def _enqueue(self, egress_port: int, frame_bytes: bytes) -> None:
        nic = self._nics[egress_port]
        self._serve(self._egress[egress_port], frame_bytes, nic.deliver)

    # -- observability ------------------------------------------------------

    def mac_table(self) -> Dict[str, int]:
        """A copy of the learned MAC-to-port mapping (stringified keys)."""
        return {str(mac): port for mac, port in self._mac_table.items()}

    def stats(self) -> Dict[str, int]:
        totals = {"frames": 0, "bytes": 0, "queue_drops": 0}
        for tx in self._egress.values():
            for key, value in tx.stats().items():
                totals[key] += value
        totals["flooded"] = self.flooded_frames
        totals["forwarded"] = self.forwarded_frames
        return totals
