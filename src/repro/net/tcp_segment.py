"""TCP segment (de)serialisation.

Only the fixed 20-byte header is emitted (no options), which keeps the wire
layout identical to the one the paper's filter table addresses: with a
14-byte Ethernet header and 20-byte IPv4 header in front, the TCP source
port sits at frame offset 34, the destination port at 36, the sequence
number at 38, the acknowledgement number at 42, and the flags byte at 47 —
exactly the tuples in Fig 2 (e.g. ``(47 1 0x10 0x10)`` tests the ACK bit).
"""

from __future__ import annotations

from ..errors import ChecksumError, PacketError
from .addresses import IpAddress
from .bytesutil import internet_checksum, pack_u16, pack_u32, read_u16, read_u32
from .ip import PROTO_TCP, pseudo_header

HEADER_LEN = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20

_FLAG_NAMES = (
    (FLAG_SYN, "SYN"),
    (FLAG_FIN, "FIN"),
    (FLAG_RST, "RST"),
    (FLAG_PSH, "PSH"),
    (FLAG_ACK, "ACK"),
    (FLAG_URG, "URG"),
)


def flags_to_str(flags: int) -> str:
    """Render a flag byte as e.g. ``SYN|ACK`` (``.`` when empty)."""
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return "|".join(names) if names else "."


class TcpSegment:
    """A TCP segment with a fixed-length header and real checksum."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window", "payload")

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        payload: bytes = b"",
    ) -> None:
        for name, port in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"TCP {name} out of range: {port}")
        for name, value in (("seq", seq), ("ack", ack)):
            if not 0 <= value <= 0xFFFFFFFF:
                raise PacketError(f"TCP {name} out of range: {value}")
        if not 0 <= flags <= 0x3F:
            raise PacketError(f"TCP flags out of range: {flags:#x}")
        if not 0 <= window <= 0xFFFF:
            raise PacketError(f"TCP window out of range: {window}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload = bytes(payload)

    # -- flag accessors -------------------------------------------------

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def length(self) -> int:
        return HEADER_LEN + len(self.payload)

    @property
    def seq_space(self) -> int:
        """Sequence-number space consumed: payload plus SYN/FIN phantom bytes."""
        return len(self.payload) + (1 if self.is_syn else 0) + (1 if self.is_fin else 0)

    # -- serialisation ----------------------------------------------------

    def _header(self, checksum: int) -> bytes:
        data_offset_flags = (5 << 12) | self.flags  # offset=5 words, no options
        return (
            pack_u16(self.src_port)
            + pack_u16(self.dst_port)
            + pack_u32(self.seq)
            + pack_u32(self.ack)
            + pack_u16(data_offset_flags)
            + pack_u16(self.window)
            + pack_u16(checksum)
            + pack_u16(0)  # urgent pointer, unused
        )

    def to_bytes(self, src_ip: IpAddress, dst_ip: IpAddress) -> bytes:
        """Serialise with the RFC 793 pseudo-header checksum."""
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, self.length)
        checksum = internet_checksum(pseudo + self._header(0) + self.payload)
        return self._header(checksum) + self.payload

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        src_ip: IpAddress = None,
        dst_ip: IpAddress = None,
        verify: bool = True,
    ) -> "TcpSegment":
        """Parse wire bytes; checksum verified when both IPs are supplied."""
        if len(data) < HEADER_LEN:
            raise PacketError(f"TCP segment of {len(data)} bytes is too short")
        data_offset_flags = read_u16(data, 12)
        header_len = (data_offset_flags >> 12) * 4
        if header_len != HEADER_LEN:
            raise PacketError(f"TCP options unsupported (header {header_len} bytes)")
        if verify and src_ip is not None and dst_ip is not None:
            pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(data))
            if internet_checksum(pseudo + data) != 0:
                raise ChecksumError("TCP checksum mismatch")
        return cls(
            src_port=read_u16(data, 0),
            dst_port=read_u16(data, 2),
            seq=read_u32(data, 4),
            ack=read_u32(data, 8),
            flags=data_offset_flags & 0x3F,
            window=read_u16(data, 14),
            payload=data[HEADER_LEN:],
        )

    def __repr__(self) -> str:
        return (
            f"TcpSegment({self.src_port} -> {self.dst_port}, "
            f"seq={self.seq}, ack={self.ack}, [{flags_to_str(self.flags)}], "
            f"win={self.window}, {len(self.payload)}B payload)"
        )
