"""UDP datagrams (RFC 768) with real pseudo-header checksums."""

from __future__ import annotations

from ..errors import ChecksumError, PacketError
from .addresses import IpAddress
from .bytesutil import internet_checksum, pack_u16, read_u16
from .ip import PROTO_UDP, pseudo_header

HEADER_LEN = 8


class UdpDatagram:
    """A UDP datagram; checksums are computed against the IPv4 pseudo header."""

    __slots__ = ("src_port", "dst_port", "payload")

    def __init__(self, src_port: int, dst_port: int, payload: bytes) -> None:
        for name, port in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"UDP {name} out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = bytes(payload)

    @property
    def length(self) -> int:
        return HEADER_LEN + len(self.payload)

    def to_bytes(self, src_ip: IpAddress, dst_ip: IpAddress) -> bytes:
        """Serialise with a checksum over pseudo header + header + payload."""
        header_no_cksum = (
            pack_u16(self.src_port)
            + pack_u16(self.dst_port)
            + pack_u16(self.length)
            + pack_u16(0)
        )
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, self.length)
        checksum = internet_checksum(pseudo + header_no_cksum + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        return (
            pack_u16(self.src_port)
            + pack_u16(self.dst_port)
            + pack_u16(self.length)
            + pack_u16(checksum)
            + self.payload
        )

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        src_ip: IpAddress = None,
        dst_ip: IpAddress = None,
        verify: bool = True,
    ) -> "UdpDatagram":
        """Parse wire bytes; checksum verified when both IPs are supplied."""
        if len(data) < HEADER_LEN:
            raise PacketError(f"UDP datagram of {len(data)} bytes is too short")
        length = read_u16(data, 4)
        if length < HEADER_LEN or length > len(data):
            raise PacketError(
                f"UDP length field {length} inconsistent with {len(data)} bytes"
            )
        checksum = read_u16(data, 6)
        if verify and checksum != 0 and src_ip is not None and dst_ip is not None:
            pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
            if internet_checksum(pseudo + data[:length]) != 0:
                raise ChecksumError("UDP checksum mismatch")
        return cls(
            src_port=read_u16(data, 0),
            dst_port=read_u16(data, 2),
            payload=data[HEADER_LEN:length],
        )

    def __repr__(self) -> str:
        return (
            f"UdpDatagram({self.src_port} -> {self.dst_port}, "
            f"{len(self.payload)}B payload)"
        )
