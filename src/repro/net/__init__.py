"""Byte-accurate network substrate.

Ethernet/IPv4/UDP/TCP codecs whose wire offsets match the paper's filter
scripts, plus NICs, links, hubs/buses and learning switches with a shared
bandwidth/propagation/bit-error service model.
"""

from .addresses import IpAddress, MacAddress
from .bytesutil import hexdump, internet_checksum, patch_bytes, verify_checksum
from .frame import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_RETHER,
    ETHERTYPE_RLL,
    ETHERTYPE_VW_CONTROL,
    EthernetFrame,
)
from .ip import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Ipv4Packet
from .link import (
    DEFAULT_BANDWIDTH_BPS,
    DEFAULT_PROPAGATION_NS,
    DEFAULT_QUEUE_FRAMES,
    Hub,
    Medium,
    PointToPointLink,
    SharedBus,
)
from .nic import Nic
from .packet import FrameView, build_tcp_frame, build_udp_frame
from .switch import LearningSwitch
from .tcp_segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    FLAG_URG,
    TcpSegment,
    flags_to_str,
)
from .topology import Topology
from .udp import UdpDatagram

__all__ = [
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_PROPAGATION_NS",
    "DEFAULT_QUEUE_FRAMES",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_RETHER",
    "ETHERTYPE_RLL",
    "ETHERTYPE_VW_CONTROL",
    "EthernetFrame",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "FLAG_URG",
    "FrameView",
    "Hub",
    "IpAddress",
    "Ipv4Packet",
    "LearningSwitch",
    "MacAddress",
    "Medium",
    "Nic",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PointToPointLink",
    "SharedBus",
    "TcpSegment",
    "Topology",
    "UdpDatagram",
    "build_tcp_frame",
    "build_udp_frame",
    "flags_to_str",
    "hexdump",
    "internet_checksum",
    "patch_bytes",
    "verify_checksum",
]
