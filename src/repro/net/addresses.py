"""MAC and IPv4 address value types.

Addresses are small immutable objects wrapping their canonical byte
representation.  They hash and compare by value, so they can key routing and
node tables, and they render in the same textual forms the paper's Node Table
uses (``00:46:61:af:fe:23`` and ``192.168.1.1``).
"""

from __future__ import annotations

import re
from typing import Union

from ..errors import AddressError

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2})(:[0-9a-fA-F]{2}){5}$")
_IP_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}$")


class MacAddress:
    """A 48-bit Ethernet hardware address."""

    __slots__ = ("_bytes",)

    BROADCAST: "MacAddress"

    def __init__(self, value: Union[str, bytes, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            self._bytes = value._bytes
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise AddressError(f"MAC address needs 6 bytes, got {len(value)}")
            self._bytes = bytes(value)
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"malformed MAC address: {value!r}")
            self._bytes = bytes(int(part, 16) for part in value.split(":"))
        else:
            raise AddressError(f"cannot build MAC address from {type(value).__name__}")

    @classmethod
    def from_index(cls, index: int) -> "MacAddress":
        """Deterministic locally-administered MAC for auto-generated testbeds."""
        if not 0 <= index < 2**32:
            raise AddressError(f"MAC index out of range: {index}")
        return cls(bytes([0x02, 0x00]) + index.to_bytes(4, "big"))

    @property
    def packed(self) -> bytes:
        """The 6-byte wire representation."""
        return self._bytes

    @property
    def is_broadcast(self) -> bool:
        return self._bytes == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        return bool(self._bytes[0] & 0x01)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._bytes == other._bytes

    def __hash__(self) -> int:
        return hash(self._bytes)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self._bytes)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


MacAddress.BROADCAST = MacAddress(b"\xff" * 6)


class IpAddress:
    """An IPv4 address."""

    __slots__ = ("_bytes",)

    def __init__(self, value: Union[str, bytes, int, "IpAddress"]) -> None:
        if isinstance(value, IpAddress):
            self._bytes = value._bytes
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise AddressError(f"IPv4 address needs 4 bytes, got {len(value)}")
            self._bytes = bytes(value)
        elif isinstance(value, int):
            if not 0 <= value < 2**32:
                raise AddressError(f"IPv4 integer out of range: {value}")
            self._bytes = value.to_bytes(4, "big")
        elif isinstance(value, str):
            if not _IP_RE.match(value):
                raise AddressError(f"malformed IPv4 address: {value!r}")
            parts = [int(p) for p in value.split(".")]
            if any(p > 255 for p in parts):
                raise AddressError(f"IPv4 octet out of range: {value!r}")
            self._bytes = bytes(parts)
        else:
            raise AddressError(f"cannot build IPv4 address from {type(value).__name__}")

    @classmethod
    def from_index(cls, index: int, network: str = "192.168.1.0") -> "IpAddress":
        """Deterministic host address inside a /24 for auto-generated testbeds."""
        if not 1 <= index <= 254:
            raise AddressError(f"host index must be in 1..254, got {index}")
        base = IpAddress(network)
        return cls(base._bytes[:3] + bytes([index]))

    @property
    def packed(self) -> bytes:
        """The 4-byte wire representation."""
        return self._bytes

    def as_int(self) -> int:
        return int.from_bytes(self._bytes, "big")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IpAddress) and self._bytes == other._bytes

    def __hash__(self) -> int:
        return hash(("ip", self._bytes))

    def __str__(self) -> str:
        return ".".join(str(b) for b in self._bytes)

    def __repr__(self) -> str:
        return f"IpAddress('{self}')"
