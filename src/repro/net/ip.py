"""IPv4 packets.

We implement the fixed 20-byte header with a real RFC 1071 header checksum
and no options, which pins the transport header at frame offset 34 — the
offset every filter in the paper's Fig 2 relies on.  Fragmentation is not
modelled (the testbed MTU is uniform), but the DF bit is carried so MODIFY
faults can flip it.
"""

from __future__ import annotations

from typing import Union

from ..errors import ChecksumError, PacketError
from .addresses import IpAddress
from .bytesutil import internet_checksum, pack_u16, read_u16

HEADER_LEN = 20
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_DEFAULT_TTL = 64


class Ipv4Packet:
    """An IPv4 packet with a fixed-length header."""

    __slots__ = (
        "src",
        "dst",
        "protocol",
        "payload",
        "ttl",
        "tos",
        "ident",
        "dont_fragment",
    )

    def __init__(
        self,
        src: Union[str, bytes, IpAddress],
        dst: Union[str, bytes, IpAddress],
        protocol: int,
        payload: bytes,
        ttl: int = _DEFAULT_TTL,
        tos: int = 0,
        ident: int = 0,
        dont_fragment: bool = True,
    ) -> None:
        self.src = IpAddress(src)
        self.dst = IpAddress(dst)
        if not 0 <= protocol <= 0xFF:
            raise PacketError(f"IP protocol out of range: {protocol}")
        if not 0 <= ttl <= 0xFF:
            raise PacketError(f"TTL out of range: {ttl}")
        if not 0 <= ident <= 0xFFFF:
            raise PacketError(f"IP ident out of range: {ident}")
        if not 0 <= tos <= 0xFF:
            raise PacketError(f"TOS out of range: {tos}")
        self.protocol = protocol
        self.payload = bytes(payload)
        self.ttl = ttl
        self.tos = tos
        self.ident = ident
        self.dont_fragment = dont_fragment

    @property
    def total_length(self) -> int:
        return HEADER_LEN + len(self.payload)

    def header_bytes(self, checksum: int) -> bytes:
        flags_frag = 0x4000 if self.dont_fragment else 0x0000
        return (
            bytes([0x45, self.tos])
            + pack_u16(self.total_length)
            + pack_u16(self.ident)
            + pack_u16(flags_frag)
            + bytes([self.ttl, self.protocol])
            + pack_u16(checksum)
            + self.src.packed
            + self.dst.packed
        )

    def to_bytes(self) -> bytes:
        """Serialise, computing the header checksum."""
        checksum = internet_checksum(self.header_bytes(0))
        return self.header_bytes(checksum) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes, verify: bool = True) -> "Ipv4Packet":
        """Parse wire bytes; *verify* controls header-checksum validation.

        Verification is skipped when a MODIFY fault may have corrupted the
        packet on purpose and the receiving stack is expected to notice.
        """
        if len(data) < HEADER_LEN:
            raise PacketError(f"IPv4 packet of {len(data)} bytes is too short")
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            raise PacketError(f"not an IPv4 packet (version nibble {version_ihl >> 4})")
        ihl = (version_ihl & 0x0F) * 4
        if ihl != HEADER_LEN:
            raise PacketError(f"IPv4 options unsupported (IHL {ihl} bytes)")
        total_length = read_u16(data, 2)
        if total_length > len(data) or total_length < HEADER_LEN:
            raise PacketError(
                f"IPv4 total length {total_length} inconsistent with {len(data)} bytes"
            )
        if verify and internet_checksum(data[:HEADER_LEN]) != 0:
            raise ChecksumError("IPv4 header checksum mismatch")
        flags_frag = read_u16(data, 6)
        if flags_frag & 0x3FFF:
            raise PacketError("IPv4 fragmentation is not modelled")
        return cls(
            src=data[12:16],
            dst=data[16:20],
            protocol=data[9],
            payload=data[HEADER_LEN:total_length],
            ttl=data[8],
            tos=data[1],
            ident=read_u16(data, 4),
            dont_fragment=bool(flags_frag & 0x4000),
        )

    def pseudo_header(self, transport_length: int) -> bytes:
        """RFC 793/768 pseudo header for the TCP/UDP checksum."""
        return (
            self.src.packed
            + self.dst.packed
            + bytes([0, self.protocol])
            + pack_u16(transport_length)
        )

    def __repr__(self) -> str:
        return (
            f"Ipv4Packet({self.src} -> {self.dst}, proto={self.protocol}, "
            f"{len(self.payload)}B payload, ttl={self.ttl})"
        )


def pseudo_header(src: IpAddress, dst: IpAddress, protocol: int, length: int) -> bytes:
    """Standalone pseudo-header builder for transport-layer codecs."""
    return src.packed + dst.packed + bytes([0, protocol]) + pack_u16(length)
