"""Ethernet II frames.

The VirtualWire filter language addresses raw frames by byte offset, so the
frame layout here matches the paper exactly: destination MAC at offset 0,
source MAC at offset 6, EtherType at offset 12, payload from offset 14.
The Rether control packets in Fig 6 match ``(12 2 0x9900)`` — the Rether
EtherType — and the TCP filters in Fig 2 assume a 14-byte Ethernet header
followed by a 20-byte IPv4 header.
"""

from __future__ import annotations

from typing import Union

from ..errors import PacketError
from .addresses import MacAddress
from .bytesutil import pack_u16, read_u16

#: Standard and project-local EtherType values.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
#: Rether control traffic (paper Fig 6: filter tuple ``(12 2 0x9900)``).
ETHERTYPE_RETHER = 0x9900
#: VirtualWire control-plane frames (paper §5.2: "payloads of raw Ethernet
#: frames").  0x88B5 is the IEEE local-experimental EtherType.
ETHERTYPE_VW_CONTROL = 0x88B5
#: Reliable Link Layer encapsulation (paper §3.3).
ETHERTYPE_RLL = 0x88B6

HEADER_LEN = 14
#: Classic Ethernet payload bound; our links enforce it.
MAX_PAYLOAD = 1500
MIN_PAYLOAD = 0  # we do not model the 46-byte physical padding floor


class EthernetFrame:
    """An immutable Ethernet II frame."""

    __slots__ = ("dst", "src", "ethertype", "payload")

    def __init__(
        self,
        dst: Union[str, bytes, MacAddress],
        src: Union[str, bytes, MacAddress],
        ethertype: int,
        payload: bytes,
    ) -> None:
        self.dst = MacAddress(dst)
        self.src = MacAddress(src)
        if not 0 <= ethertype <= 0xFFFF:
            raise PacketError(f"ethertype out of range: {ethertype:#x}")
        if len(payload) > MAX_PAYLOAD:
            raise PacketError(
                f"payload of {len(payload)} bytes exceeds Ethernet MTU {MAX_PAYLOAD}"
            )
        self.ethertype = ethertype
        self.payload = bytes(payload)

    def to_bytes(self) -> bytes:
        """Serialise to the wire representation."""
        return (
            self.dst.packed + self.src.packed + pack_u16(self.ethertype) + self.payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetFrame":
        """Parse wire bytes back into a frame."""
        if len(data) < HEADER_LEN:
            raise PacketError(f"frame of {len(data)} bytes is shorter than header")
        return cls(
            dst=data[0:6],
            src=data[6:12],
            ethertype=read_u16(data, 12),
            payload=data[HEADER_LEN:],
        )

    def __len__(self) -> int:
        return HEADER_LEN + len(self.payload)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EthernetFrame)
            and self.dst == other.dst
            and self.src == other.src
            and self.ethertype == other.ethertype
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.dst, self.src, self.ethertype, self.payload))

    def __repr__(self) -> str:
        return (
            f"EthernetFrame({self.src} -> {self.dst}, "
            f"type={self.ethertype:#06x}, {len(self.payload)}B payload)"
        )
