"""The discrete-event simulator facade.

:class:`Simulator` owns the clock, the event queue and the random registry,
and exposes the scheduling API that every other subsystem uses:

* :meth:`Simulator.at` / :meth:`Simulator.after` — schedule one-shot events;
* :meth:`Simulator.every` — periodic tasks (returns a cancellable handle);
* :meth:`Simulator.run` / :meth:`run_until` / :meth:`step` — drive the loop.

The simulator is single-threaded by construction.  "Concurrency" between
hosts is purely virtual: each scheduled callback runs to completion at one
instant of virtual time, exactly as interrupt handlers do on a real testbed
node, and the interleaving across nodes is governed only by event timestamps.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import SchedulingError, SimulationError
from .clock import Clock, format_time
from .events import Callback, EventHandle, EventQueue
from .random import RandomRegistry


class PeriodicHandle:
    """Handle for a repeating task created with :meth:`Simulator.every`."""

    __slots__ = ("_sim", "_interval", "_callback", "_label", "_event", "_stopped", "fires")

    def __init__(self, sim: "Simulator", interval: int, callback: Callback, label: str) -> None:
        if interval <= 0:
            raise SchedulingError(f"periodic interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._label = label
        self._stopped = False
        self.fires = 0
        self._event: Optional[EventHandle] = sim.after(interval, self._fire, label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fires += 1
        self._callback()
        if not self._stopped:
            self._event = self._sim.after(self._interval, self._fire, self._label)

    def stop(self) -> None:
        """Stop the periodic task; safe to call multiple times."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped


class Simulator:
    """Deterministic discrete-event simulation kernel."""

    def __init__(self, seed: int = 0) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.random = RandomRegistry(seed)
        self.events_processed = 0
        self._running = False
        self._stop_requested = False
        self._trace_hooks: List[Callable[[EventHandle], None]] = []

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self.clock.now

    # -- scheduling ---------------------------------------------------------

    def at(
        self, when: int, callback: Callback, label: str = "", pooled: bool = False
    ) -> EventHandle:
        """Schedule *callback* at absolute virtual time *when*.

        ``pooled=True`` draws the handle from the event queue's freelist
        and recycles it after firing — for fire-and-forget per-frame
        deferrals only (never retain or cancel a pooled handle).
        """
        if when < self.clock.now:
            raise SchedulingError(
                f"cannot schedule into the past: now={self.clock.now}, when={when}"
            )
        return self.queue.push(when, callback, label, pooled=pooled)

    def after(
        self, delay: int, callback: Callback, label: str = "", pooled: bool = False
    ) -> EventHandle:
        """Schedule *callback* *delay* nanoseconds from now (see :meth:`at`)."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.queue.push(self.clock.now + delay, callback, label, pooled=pooled)

    def every(self, interval: int, callback: Callback, label: str = "") -> PeriodicHandle:
        """Run *callback* every *interval* nanoseconds until stopped.

        The first firing happens one interval from now.
        """
        return PeriodicHandle(self, interval, callback, label)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled one-shot event."""
        self.queue.cancel(handle)

    # -- observation --------------------------------------------------------

    def add_trace_hook(self, hook: Callable[[EventHandle], None]) -> None:
        """Register a hook invoked before each event fires (for debugging)."""
        self._trace_hooks.append(hook)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        if not self.queue:
            return False
        handle = self.queue.pop()
        self.clock.advance_to(handle.when)
        callback = handle.callback
        handle.callback = None  # the event is consumed; free the closure
        for hook in self._trace_hooks:
            hook(handle)
        self.events_processed += 1
        if callback is not None:
            callback()
        if handle.pooled and not self._trace_hooks:
            # Recycle only when no trace hook could still be holding the
            # handle (hooks may retain it for post-run inspection).
            self.queue.recycle(handle)
        return True

    def run(self, max_events: int = 50_000_000) -> None:
        """Run until the queue drains or *max_events* have been processed.

        The event cap guards against accidental infinite self-scheduling
        loops; hitting it raises :class:`SimulationError` rather than hanging.
        """
        self._enter_run()
        try:
            remaining = max_events
            while self.queue and not self._stop_requested:
                if remaining <= 0:
                    raise SimulationError(
                        f"event cap of {max_events} exceeded at "
                        f"t={format_time(self.clock.now)}"
                    )
                self.step()
                remaining -= 1
        finally:
            self._exit_run()

    def run_until(self, deadline: int, max_events: int = 50_000_000) -> None:
        """Run events with timestamps <= *deadline*, then set clock = deadline."""
        if deadline < self.clock.now:
            raise SchedulingError(
                f"deadline {deadline} is before current time {self.clock.now}"
            )
        self._enter_run()
        try:
            remaining = max_events
            while not self._stop_requested:
                upcoming = self.queue.peek_time()
                if upcoming is None or upcoming > deadline:
                    break
                if remaining <= 0:
                    raise SimulationError(
                        f"event cap of {max_events} exceeded at "
                        f"t={format_time(self.clock.now)}"
                    )
                self.step()
                remaining -= 1
            if not self._stop_requested:
                self.clock.advance_to(deadline)
        finally:
            self._exit_run()

    def run_for(self, duration: int, max_events: int = 50_000_000) -> None:
        """Convenience wrapper: run for *duration* nanoseconds of virtual time."""
        self.run_until(self.clock.now + duration, max_events)

    def stop(self) -> None:
        """Request the current :meth:`run`/:meth:`run_until` loop to exit.

        Pending events stay queued; a subsequent run continues from them.
        """
        self._stop_requested = True

    def _enter_run(self) -> None:
        if self._running:
            raise SimulationError("simulator run loop is not reentrant")
        self._running = True
        self._stop_requested = False

    def _exit_run(self) -> None:
        self._running = False
        self._stop_requested = False

    def __repr__(self) -> str:
        return (
            f"Simulator(t={format_time(self.clock.now)}, "
            f"pending={len(self.queue)}, processed={self.events_processed})"
        )
