"""Event queue for the discrete-event simulator.

The queue is a binary heap keyed by ``(time, sequence)`` where *sequence* is
a global insertion counter.  Ties at the same virtual instant therefore fire
in the order they were scheduled, which makes every run deterministic without
any reliance on hash ordering or object identity.  Heap entries are
``(when, seq, handle)`` tuples rather than the handles themselves, so sift
comparisons stop at the integer fields and run at C speed — sequence
numbers are unique, so the handle element is never compared (docs/PERF.md).

Events are cancellable: cancellation marks the handle and the event loop
skips dead entries lazily (the standard heapq idiom), so cancellation is
O(1) and pop stays O(log n) amortised.  Long runs that cancel timers
constantly — a TCP transfer re-arms its RTO on every ACK — would otherwise
accumulate dead entries until they happen to reach the heap top, so the
queue **compacts** itself once the dead outnumber the live beyond a fixed
floor (:data:`COMPACT_MIN_DEAD`): live entries are copied out and
re-heapified, an O(n) operation amortised over the >n cancellations that
triggered it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SchedulingError

#: Type of an event callback.  Callbacks take no arguments; bind state with
#: closures or ``functools.partial`` at scheduling time.
Callback = Callable[[], None]

#: Compaction floor: never compact below this many dead entries, so small
#: queues keep the cheap lazy-discard behaviour.  Above it, a heap that is
#: more than half dead is rebuilt from its live entries.
COMPACT_MIN_DEAD = 1024

#: Freelist ceiling for pooled handles: bounds the memory a burst pins.
POOL_MAX_FREE = 4096


class EventHandle:
    """A scheduled event, returned so the caller may cancel or inspect it."""

    __slots__ = ("when", "seq", "callback", "label", "cancelled", "queue", "pooled")

    def __init__(self, when: int, seq: int, callback: Callback, label: str) -> None:
        self.when = when
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.label = label
        self.cancelled = False
        #: the owning queue, while the entry sits in its heap; the queue
        #: clears it on pop so post-fire cancels cannot skew accounting.
        self.queue: Optional["EventQueue"] = None
        #: pooled handles are recycled into the queue's freelist after they
        #: fire (see EventQueue.push) — schedulers opting in must drop the
        #: returned handle immediately and never cancel it.
        self.pooled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        if self.cancelled or self.callback is None:
            return  # already cancelled, or already fired: nothing to undo
        self.cancelled = True
        self.callback = None  # break reference cycles promptly
        if self.queue is not None:
            self.queue._on_cancel()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.when}, seq={self.seq}, {state}, {self.label!r})"


class EventQueue:
    """Deterministic priority queue of :class:`EventHandle` objects."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, EventHandle]] = []
        self._counter = itertools.count()
        self._live = 0
        #: recycled pooled handles awaiting reuse (see :meth:`push`).
        self._freelist: List[EventHandle] = []

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap length, live plus not-yet-discarded dead entries.

        Exposed for diagnostics and the compaction tests; ``len(queue)``
        remains the live count.
        """
        return len(self._heap)

    def push(
        self, when: int, callback: Callback, label: str = "", pooled: bool = False
    ) -> EventHandle:
        """Schedule *callback* at absolute time *when* and return its handle.

        With ``pooled=True`` the handle comes from (and, after firing,
        returns to) a freelist, so steady-state per-frame scheduling
        allocates nothing.  Pooled events are strictly fire-and-forget:
        the caller must not retain or cancel the returned handle, because
        the same object will be handed out again for a later event.
        """
        if callback is None:
            raise SchedulingError("cannot schedule a None callback")
        when = int(when)
        seq = next(self._counter)
        if pooled and self._freelist:
            handle = self._freelist.pop()
            handle.when = when
            handle.seq = seq
            handle.callback = callback
            handle.label = label
            handle.cancelled = False
        else:
            handle = EventHandle(when, seq, callback, label)
            handle.pooled = pooled
        handle.queue = self
        heapq.heappush(self._heap, (when, seq, handle))
        self._live += 1
        return handle

    def recycle(self, handle: EventHandle) -> None:
        """Return a fired pooled handle to the freelist.

        Called by the simulator's step loop after the callback completed;
        anything still referenced elsewhere (cancelled, or somehow back in
        a heap) is left for the garbage collector instead.
        """
        if handle.cancelled or handle.queue is not None:
            return
        handle.callback = None
        if len(self._freelist) < POOL_MAX_FREE:
            self._freelist.append(handle)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel *handle*; the heap entry is discarded lazily on pop."""
        handle.cancel()

    def _on_cancel(self) -> None:
        """Bookkeeping for a cancellation (also via ``handle.cancel()``)."""
        self._live -= 1
        dead = len(self._heap) - self._live
        if dead > COMPACT_MIN_DEAD and dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from its live entries.

        ``heapify`` over the ``(when, seq, handle)`` tuples uses the same
        ordering as the incremental pushes, so firing order — including
        same-instant insertion-order ties — is unchanged.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event, or None if empty."""
        self._discard_dead()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> EventHandle:
        """Remove and return the next live event.

        Raises :class:`SchedulingError` when no live event remains.
        """
        self._discard_dead()
        if not self._heap:
            raise SchedulingError("pop from an empty event queue")
        handle = heapq.heappop(self._heap)[2]
        handle.queue = None
        self._live -= 1
        return handle

    def clear(self) -> None:
        """Drop every pending event (used when tearing a simulator down)."""
        for _, _, handle in self._heap:
            handle.queue = None  # detach first: no per-handle accounting
            handle.cancel()
        self._heap.clear()
        self._live = 0

    def _discard_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2].queue = None

    def snapshot(self) -> List[Any]:
        """Return (time, label) for each live event, soonest first.

        Intended for debugging and tests; the cost is O(n log n).
        """
        live = [handle for _, _, handle in self._heap if handle.pending]
        live.sort()
        return [(h.when, h.label) for h in live]
