"""Event queue for the discrete-event simulator.

The queue is a binary heap keyed by ``(time, sequence)`` where *sequence* is
a global insertion counter.  Ties at the same virtual instant therefore fire
in the order they were scheduled, which makes every run deterministic without
any reliance on hash ordering or object identity.

Events are cancellable: :meth:`EventQueue.cancel` marks the handle and the
event loop skips dead entries lazily (the standard heapq idiom), so
cancellation is O(1) and pop stays O(log n) amortised.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from ..errors import SchedulingError

#: Type of an event callback.  Callbacks take no arguments; bind state with
#: closures or ``functools.partial`` at scheduling time.
Callback = Callable[[], None]


class EventHandle:
    """A scheduled event, returned so the caller may cancel or inspect it."""

    __slots__ = ("when", "seq", "callback", "label", "cancelled")

    def __init__(self, when: int, seq: int, callback: Callback, label: str) -> None:
        self.when = when
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        self.cancelled = True
        self.callback = None  # break reference cycles promptly

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.when}, seq={self.seq}, {state}, {self.label!r})"


class EventQueue:
    """Deterministic priority queue of :class:`EventHandle` objects."""

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, when: int, callback: Callback, label: str = "") -> EventHandle:
        """Schedule *callback* at absolute time *when* and return its handle."""
        if callback is None:
            raise SchedulingError("cannot schedule a None callback")
        handle = EventHandle(int(when), next(self._counter), callback, label)
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel *handle*; the heap entry is discarded lazily on pop."""
        if handle.pending:
            handle.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event, or None if empty."""
        self._discard_dead()
        return self._heap[0].when if self._heap else None

    def pop(self) -> EventHandle:
        """Remove and return the next live event.

        Raises :class:`SchedulingError` when no live event remains.
        """
        self._discard_dead()
        if not self._heap:
            raise SchedulingError("pop from an empty event queue")
        handle = heapq.heappop(self._heap)
        self._live -= 1
        return handle

    def clear(self) -> None:
        """Drop every pending event (used when tearing a simulator down)."""
        for handle in self._heap:
            handle.cancel()
        self._heap.clear()
        self._live = 0

    def _discard_dead(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def snapshot(self) -> List[Any]:
        """Return (time, label) for each live event, soonest first.

        Intended for debugging and tests; the cost is O(n log n).
        """
        live = [h for h in self._heap if h.pending]
        live.sort()
        return [(h.when, h.label) for h in live]
