"""Virtual time for the discrete-event simulator.

Time is kept as an integer count of **nanoseconds** since simulation start.
Integers keep the simulation exactly reproducible: there is no floating-point
accumulation error, and two runs with the same inputs produce bit-identical
schedules.  Helper constructors and accessors convert to and from the human
units used throughout the paper (microseconds for packet latencies,
milliseconds for protocol timers, 10 ms "jiffies" for the Linux timer
granularity the DELAY primitive inherits).
"""

from __future__ import annotations

from ..errors import SimulationError

#: Number of nanoseconds in one microsecond / millisecond / second.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000

#: Linux 2.4 software-timer granularity: one jiffy = 10 ms (paper section 5.2).
JIFFY_NS = 10 * NS_PER_MS


def ns(value: float) -> int:
    """Return *value* nanoseconds as an integer tick count."""
    return int(round(value))


def us(value: float) -> int:
    """Return *value* microseconds in nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Return *value* milliseconds in nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Return *value* seconds in nanoseconds."""
    return int(round(value * NS_PER_SEC))


def to_us(ticks: int) -> float:
    """Convert a nanosecond tick count to microseconds."""
    return ticks / NS_PER_US


def to_ms(ticks: int) -> float:
    """Convert a nanosecond tick count to milliseconds."""
    return ticks / NS_PER_MS


def to_seconds(ticks: int) -> float:
    """Convert a nanosecond tick count to seconds."""
    return ticks / NS_PER_SEC


def quantize_to_jiffies(ticks: int) -> int:
    """Round *ticks* up to the next jiffy boundary, minimum one jiffy.

    The paper notes the DELAY primitive cannot be finer than one jiffy
    because it is built on the Linux software-timer facility; we reproduce
    that quantisation here.
    """
    if ticks <= 0:
        return JIFFY_NS
    whole, rem = divmod(ticks, JIFFY_NS)
    return (whole + (1 if rem else 0)) * JIFFY_NS


def parse_duration(text: str) -> int:
    """Parse an FSL duration literal such as ``1sec``, ``250ms`` or ``40us``.

    Returns the duration in nanoseconds.  A bare number is interpreted as
    milliseconds, matching the DELAY primitive's natural unit.
    """
    raw = text.strip().lower()
    for suffix, scale in (
        ("nsec", 1),
        ("usec", NS_PER_US),
        ("msec", NS_PER_MS),
        ("sec", NS_PER_SEC),
        ("ns", 1),
        ("us", NS_PER_US),
        ("ms", NS_PER_MS),
        ("s", NS_PER_SEC),
    ):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)].strip()
            try:
                return int(round(float(number) * scale))
            except ValueError as exc:
                raise SimulationError(f"bad duration literal: {text!r}") from exc
    try:
        return int(round(float(raw) * NS_PER_MS))
    except ValueError as exc:
        raise SimulationError(f"bad duration literal: {text!r}") from exc


def format_time(ticks: int) -> str:
    """Render a tick count as a human-readable time for traces and logs."""
    if ticks >= NS_PER_SEC:
        return f"{ticks / NS_PER_SEC:.6f}s"
    if ticks >= NS_PER_MS:
        return f"{ticks / NS_PER_MS:.3f}ms"
    if ticks >= NS_PER_US:
        return f"{ticks / NS_PER_US:.3f}us"
    return f"{ticks}ns"


class Clock:
    """Monotonic virtual clock owned by the simulator.

    Only the event loop advances the clock; everything else reads it.  The
    clock refuses to move backwards, which converts scheduler bugs into loud
    failures instead of silently corrupted orderings.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def advance_to(self, when: int) -> None:
        """Move the clock forward to *when* (idempotent at the same instant)."""
        if when < self._now:
            raise SimulationError(
                f"clock cannot run backwards: at {self._now}, asked for {when}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"Clock({format_time(self._now)})"
