"""Named, seeded random streams.

Every source of randomness in the library (link bit errors, MODIFY byte
perturbation, workload jitter, ...) draws from its own named stream derived
from one master seed.  Two properties follow:

* **Reproducibility** — a scenario is fully determined by
  (topology, script, master seed).
* **Isolation** — adding a new consumer of randomness does not perturb the
  sequences seen by existing consumers, because streams are keyed by name
  rather than by draw order.
"""

from __future__ import annotations

import hashlib
import random as _stdlib_random
from typing import Dict


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable per-stream seed from the master seed and stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A single named stream; a thin deterministic wrapper over ``random.Random``."""

    __slots__ = ("name", "_rng", "_draws")

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self._rng = _stdlib_random.Random(seed)
        self._draws = 0

    @property
    def draws(self) -> int:
        """Number of values drawn so far (useful in tests)."""
        return self._draws

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        self._draws += 1
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        self._draws += 1
        return self._rng.randint(low, high)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        self._draws += 1
        return self._rng.random() < probability

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        self._draws += 1
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        """Shuffle *seq* in place."""
        self._draws += 1
        self._rng.shuffle(seq)

    def random_bytes(self, count: int) -> bytes:
        """Return *count* uniformly random bytes."""
        self._draws += 1
        return bytes(self._rng.getrandbits(8) for _ in range(count))

    def exponential(self, mean: float) -> float:
        """Exponentially distributed value with the given mean (for traffic)."""
        self._draws += 1
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def __repr__(self) -> str:
        return f"RandomStream({self.name!r}, draws={self._draws})"


class RandomRegistry:
    """Factory and cache of named :class:`RandomStream` objects."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for *name*, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        created = RandomStream(name, _derive_seed(self.master_seed, name))
        self._streams[name] = created
        return created

    def stream_names(self):
        """Names of all streams created so far, in creation order."""
        return list(self._streams)

    def __repr__(self) -> str:
        return (
            f"RandomRegistry(seed={self.master_seed}, "
            f"streams={len(self._streams)})"
        )
