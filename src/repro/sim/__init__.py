"""Deterministic discrete-event simulation kernel.

This package is the substrate replacing the paper's physical testbed: an
integer-nanosecond virtual clock, a deterministic event queue, periodic
timers, and named seeded random streams.
"""

from .clock import (
    JIFFY_NS,
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    Clock,
    format_time,
    ms,
    ns,
    parse_duration,
    quantize_to_jiffies,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)
from .events import Callback, EventHandle, EventQueue
from .random import RandomRegistry, RandomStream
from .simulator import PeriodicHandle, Simulator

__all__ = [
    "JIFFY_NS",
    "NS_PER_MS",
    "NS_PER_SEC",
    "NS_PER_US",
    "Clock",
    "Callback",
    "EventHandle",
    "EventQueue",
    "PeriodicHandle",
    "RandomRegistry",
    "RandomStream",
    "Simulator",
    "format_time",
    "ms",
    "ns",
    "parse_duration",
    "quantize_to_jiffies",
    "seconds",
    "to_ms",
    "to_seconds",
    "to_us",
    "us",
]
