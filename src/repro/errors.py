"""Exception hierarchy for the VirtualWire reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
subtree mirrors the major subsystems: simulation, packet handling, the
protocol stacks, FSL (the Fault Specification Language), and the distributed
run-time engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """A violation of simulation-kernel invariants (e.g. time travel)."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


# ---------------------------------------------------------------------------
# Packets and network elements
# ---------------------------------------------------------------------------


class PacketError(ReproError):
    """Malformed packet bytes or header fields out of range."""


class AddressError(PacketError):
    """A MAC or IP address string/byte representation is invalid."""


class ChecksumError(PacketError):
    """A received packet failed checksum verification."""


class TopologyError(ReproError):
    """Inconsistent wiring: unknown ports, double-attached NICs, etc."""


# ---------------------------------------------------------------------------
# Protocol stacks
# ---------------------------------------------------------------------------


class StackError(ReproError):
    """Errors from the layered host stack (bad layer splice, dead node...)."""


class SocketError(StackError):
    """Socket API misuse: double bind, send on closed connection, etc."""


class TcpError(StackError):
    """TCP state-machine violation detected by our own implementation."""


class RetherError(StackError):
    """Rether protocol violation detected locally (not by the FAE)."""


# ---------------------------------------------------------------------------
# FSL: the Fault Specification Language
# ---------------------------------------------------------------------------


class FslError(ReproError):
    """Base class for all FSL front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class FslLexError(FslError):
    """An unrecognised character or malformed literal in an FSL script."""


class FslParseError(FslError):
    """The token stream does not form a valid FSL script."""


class FslCompileError(FslError):
    """The script is syntactically valid but semantically inconsistent,

    e.g. a rule references an undeclared counter or an unknown node.
    """


class TableError(FslCompileError):
    """A compiled table entry is structurally invalid.

    Raised at table construction time — e.g. a filter tuple whose
    ``offset + nbytes`` reads past any plausible frame, or a mask wider
    than the field it masks.  Subclasses :class:`FslCompileError` so
    existing callers that catch compile errors keep working.
    """


# ---------------------------------------------------------------------------
# Distributed run-time engine
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """FIE/FAE run-time failure (corrupt table state, unknown ids)."""


class ControlPlaneError(EngineError):
    """Malformed or unexpected control-plane frame."""


class ControlChecksumError(ControlPlaneError):
    """An INIT frame's table checksum does not match the shipped tables.

    Raised when verifying a received INIT; the engine converts it into an
    INIT_NACK so the front-end re-sends instead of arming wrong tables.
    """


class ScenarioError(ReproError):
    """Scenario orchestration failure at the programming front-end."""
