"""The IPv4 layer of a host.

Routing is the degenerate LAN case the paper's testbeds use: every
destination is on-link, resolved through a static neighbour table the
testbed builder fills in (no ARP traffic to pollute fault scripts).
Received packets are checksum-verified and demultiplexed to the registered
transport protocol.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Union

from ..errors import ChecksumError, PacketError, StackError
from ..net.addresses import IpAddress, MacAddress
from ..net.fastpath import FRAME_CODEC_KINDS, encode_ipv4_frame, parse_ipv4_frame
from ..net.frame import ETHERTYPE_IPV4, EthernetFrame
from ..net.ip import Ipv4Packet
from ..sim import Simulator
from .costs import CostModel
from .layers import EthertypeDemux

#: Transport handler: (ip_packet) -> None.
ProtocolHandler = Callable[[Ipv4Packet], None]


class IpLayer:
    """Minimal IPv4 input/output with static neighbour resolution."""

    def __init__(
        self,
        sim: Simulator,
        demux: EthertypeDemux,
        local_mac: MacAddress,
        local_ip: IpAddress,
        costs: CostModel,
        frame_codec: str = "fast",
    ) -> None:
        self.sim = sim
        self.demux = demux
        self.local_mac = local_mac
        self.local_ip = local_ip
        self.costs = costs
        self.set_frame_codec(frame_codec)
        self._neighbors: Dict[IpAddress, MacAddress] = {local_ip: local_mac}
        self._protocols: Dict[int, ProtocolHandler] = {}
        self._ident = itertools.count(1)
        self.tx_packets = 0
        self.rx_packets = 0
        self.checksum_drops = 0
        self.misaddressed_drops = 0
        self.unclaimed_protocol_drops = 0
        demux.register(ETHERTYPE_IPV4, self._receive_frame)

    # -- configuration ------------------------------------------------------

    def set_frame_codec(self, codec: str) -> None:
        """Select the ``fast`` or ``reference`` header codec (docs/PERF.md)."""
        if codec not in FRAME_CODEC_KINDS:
            raise StackError(
                f"unknown frame codec {codec!r} "
                f"(expected one of {sorted(FRAME_CODEC_KINDS)})"
            )
        self.frame_codec = codec
        self._fast = codec == "fast"

    def add_neighbor(self, ip: Union[str, IpAddress], mac: Union[str, MacAddress]) -> None:
        """Install a static IP-to-MAC binding (the testbed's ARP substitute)."""
        self._neighbors[IpAddress(ip)] = MacAddress(mac)

    def resolve(self, ip: Union[str, IpAddress]) -> MacAddress:
        """Return the MAC for an on-link IP, raising if it is unknown."""
        ip = IpAddress(ip)
        try:
            return self._neighbors[ip]
        except KeyError:
            raise StackError(f"no neighbour entry for {ip} on {self.local_ip}") from None

    def register_protocol(self, protocol: int, handler: ProtocolHandler) -> None:
        if protocol in self._protocols:
            raise StackError(f"IP protocol {protocol} already registered")
        self._protocols[protocol] = handler

    # -- output path --------------------------------------------------------

    def send(self, dst_ip: Union[str, IpAddress], protocol: int, payload: bytes) -> None:
        """Wrap *payload* in IPv4+Ethernet and push it down the frame chain."""
        if self._fast:
            # Byte-identical to the reference path below: the ident is
            # consumed before neighbour resolution (same allocation order),
            # and the codec replicates the reference MTU check.
            if not isinstance(dst_ip, IpAddress):
                dst_ip = IpAddress(dst_ip)
            ident = next(self._ident) & 0xFFFF
            frame_bytes = encode_ipv4_frame(
                self.resolve(dst_ip).packed,
                self.local_mac.packed,
                self.local_ip.packed,
                dst_ip.packed,
                protocol,
                ident,
                payload,
            )
            self.tx_packets += 1
            if self.costs.ip_ns > 0:
                self.sim.after(
                    self.costs.ip_ns,
                    lambda: self.demux.send_frame_bytes(frame_bytes),
                    "ip:tx",
                    pooled=True,
                )
            else:
                self.demux.send_frame_bytes(frame_bytes)
            return
        dst_ip = IpAddress(dst_ip)
        packet = Ipv4Packet(
            src=self.local_ip,
            dst=dst_ip,
            protocol=protocol,
            payload=payload,
            ident=next(self._ident) & 0xFFFF,
        )
        frame = EthernetFrame(
            dst=self.resolve(dst_ip),
            src=self.local_mac,
            ethertype=ETHERTYPE_IPV4,
            payload=packet.to_bytes(),
        )
        self.tx_packets += 1
        if self.costs.ip_ns > 0:
            self.sim.after(
                self.costs.ip_ns,
                lambda: self.demux.send_frame(frame),
                "ip:tx",
                pooled=True,
            )
        else:
            self.demux.send_frame(frame)

    # -- input path ---------------------------------------------------------

    def _receive_frame(self, frame_bytes: bytes) -> None:
        try:
            if self._fast:
                packet = parse_ipv4_frame(frame_bytes)
            else:
                packet = Ipv4Packet.from_bytes(frame_bytes[14:], verify=True)
        except ChecksumError:
            self.checksum_drops += 1
            return
        except PacketError:
            self.checksum_drops += 1
            return
        if packet.dst != self.local_ip:
            self.misaddressed_drops += 1
            return
        if self.costs.ip_ns > 0:
            self.sim.after(
                self.costs.ip_ns, lambda: self._dispatch(packet), "ip:rx", pooled=True
            )
        else:
            self._dispatch(packet)

    def _dispatch(self, packet: Ipv4Packet) -> None:
        handler = self._protocols.get(packet.protocol)
        if handler is None:
            self.unclaimed_protocol_drops += 1
            return
        self.rx_packets += 1
        handler(packet)

    def __repr__(self) -> str:
        return f"IpLayer({self.local_ip}, {len(self._neighbors)} neighbours)"
