"""The device-driver layer: glue between the frame chain and the NIC.

Charges the driver's CPU cost on both paths and decouples the NIC's
delivery upcall from the rest of the stack through the simulator, so a
received frame is processed in its own "softirq" event — the same structure
Linux gives the paper's Netfilter hooks.
"""

from __future__ import annotations

from ..net.nic import Nic
from ..sim import Simulator
from .costs import CostModel
from .layers import FrameLayer


class DriverLayer(FrameLayer):
    """Bottom of every host's frame chain."""

    def __init__(self, sim: Simulator, nic: Nic, costs: CostModel) -> None:
        super().__init__(f"driver:{nic.name}")
        self.sim = sim
        self.nic = nic
        self.costs = costs
        self.tx_frames = 0
        self.rx_frames = 0
        # Metric handles (repro.analysis); None keeps the hot path free.
        self._m_tx = None
        self._m_rx = None
        nic.set_receive_handler(self._nic_receive)

    def arm_metrics(self, metrics) -> None:
        """Pre-resolve tx/rx counters from a :class:`NodeMetrics`."""
        self._m_tx = metrics.counter("driver", "tx_frames")
        self._m_rx = metrics.counter("driver", "rx_frames")

    def on_send(self, frame_bytes: bytes) -> None:
        """Frame arriving from above: charge tx cost, then hit the wire."""
        self.tx_frames += 1
        if self._m_tx is not None:
            self._m_tx.inc()
        if self.costs.driver_tx_ns > 0:
            self.sim.after(
                self.costs.driver_tx_ns,
                lambda: self.nic.transmit(frame_bytes),
                f"{self.name}:tx",
            )
        else:
            self.nic.transmit(frame_bytes)

    def _nic_receive(self, frame_bytes: bytes) -> None:
        """NIC upcall: charge rx cost, then continue up the chain."""
        self.rx_frames += 1
        if self._m_rx is not None:
            self._m_rx.inc()
        if self.costs.driver_rx_ns > 0:
            self.sim.after(
                self.costs.driver_rx_ns,
                lambda: self._rx_continue(frame_bytes),
                f"{self.name}:rx",
            )
        else:
            self._rx_continue(frame_bytes)

    def _rx_continue(self, frame_bytes: bytes) -> None:
        # The NIC may have been brought down (crash) between delivery and
        # this deferred softirq: a dead interface must not hand frames to
        # the stack.  Counted with the NIC's other down-drops.
        if not self.nic.is_up:
            self.nic.down_drops += 1
            return
        self.pass_up(frame_bytes)

    def on_receive(self, frame_bytes: bytes) -> None:
        # Nothing sits below the driver; reception enters via the NIC upcall.
        raise RuntimeError("driver layer receives frames only from its NIC")
