"""The device-driver layer: glue between the frame chain and the NIC.

Charges the driver's CPU cost on both paths and decouples the NIC's
delivery upcall from the rest of the stack through the simulator, so a
received frame is processed in its own "softirq" event — the same structure
Linux gives the paper's Netfilter hooks.

Both deferrals run through a :class:`FramePool` of reusable job objects
(plus the event queue's pooled handles), so steady-state traffic schedules
without allocating a closure per frame.  The pool is epoch-stamped: a host
crash bumps the epoch and drops the freelist, so jobs that were in flight
when the machine died are discarded on release instead of being recycled —
no reference from the previous life can leak into the rebooted node's pool
(regression-tested in tests/stack/test_frame_pool.py).
"""

from __future__ import annotations

from typing import List, Optional

from ..net.nic import Nic
from ..sim import Simulator
from .costs import CostModel
from .layers import FrameLayer


class _FrameJob:
    """One deferred frame crossing: tx toward the NIC or rx up the stack.

    The job object *is* the scheduled callback — no per-frame closure.
    """

    __slots__ = ("pool", "frame", "tx", "epoch")

    def __init__(self, pool: "FramePool") -> None:
        self.pool = pool
        self.frame: Optional[bytes] = None
        self.tx = False
        self.epoch = 0

    def __call__(self) -> None:
        pool = self.pool
        frame, tx = self.frame, self.tx
        self.frame = None
        pool.release(self)
        if tx:
            pool.driver.nic.transmit(frame)
        else:
            pool.driver._rx_continue(frame)


class FramePool:
    """Reusable deferred-frame jobs with an epoch-based crash reset."""

    #: freelist ceiling; a burst beyond it falls back to fresh allocations.
    MAX_FREE = 512

    def __init__(self, driver: "DriverLayer") -> None:
        self.driver = driver
        self.epoch = 0
        self._free: List[_FrameJob] = []

    def acquire(self, frame: bytes, tx: bool) -> _FrameJob:
        job = self._free.pop() if self._free else _FrameJob(self)
        job.frame = frame
        job.tx = tx
        job.epoch = self.epoch
        return job

    def release(self, job: _FrameJob) -> None:
        if job.epoch != self.epoch:
            return  # issued before a crash: never recycle into this life
        if len(self._free) < self.MAX_FREE:
            job.frame = None
            self._free.append(job)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def reset(self) -> None:
        """Crash with amnesia: invalidate every outstanding job.

        Bumping the epoch makes in-flight jobs from this life stale (their
        eventual release is discarded), and clearing the freelist drops any
        parked job immediately — the rebooted node starts from an empty
        pool holding no pre-crash frame references.
        """
        self.epoch += 1
        self._free.clear()


class DriverLayer(FrameLayer):
    """Bottom of every host's frame chain."""

    def __init__(self, sim: Simulator, nic: Nic, costs: CostModel) -> None:
        super().__init__(f"driver:{nic.name}")
        self.sim = sim
        self.nic = nic
        self.costs = costs
        self.tx_frames = 0
        self.rx_frames = 0
        self.pool = FramePool(self)
        self._tx_label = f"{self.name}:tx"
        self._rx_label = f"{self.name}:rx"
        # Metric handles (repro.analysis); None keeps the hot path free.
        self._m_tx = None
        self._m_rx = None
        nic.set_receive_handler(self._nic_receive)

    def arm_metrics(self, metrics) -> None:
        """Pre-resolve tx/rx counters from a :class:`NodeMetrics`."""
        self._m_tx = metrics.counter("driver", "tx_frames")
        self._m_rx = metrics.counter("driver", "rx_frames")

    def on_send(self, frame_bytes: bytes) -> None:
        """Frame arriving from above: charge tx cost, then hit the wire."""
        self.tx_frames += 1
        if self._m_tx is not None:
            self._m_tx.inc()
        if self.costs.driver_tx_ns > 0:
            self.sim.after(
                self.costs.driver_tx_ns,
                self.pool.acquire(frame_bytes, tx=True),
                self._tx_label,
                pooled=True,
            )
        else:
            self.nic.transmit(frame_bytes)

    def _nic_receive(self, frame_bytes: bytes) -> None:
        """NIC upcall: charge rx cost, then continue up the chain."""
        self.rx_frames += 1
        if self._m_rx is not None:
            self._m_rx.inc()
        if self.costs.driver_rx_ns > 0:
            self.sim.after(
                self.costs.driver_rx_ns,
                self.pool.acquire(frame_bytes, tx=False),
                self._rx_label,
                pooled=True,
            )
        else:
            self._rx_continue(frame_bytes)

    def _rx_continue(self, frame_bytes: bytes) -> None:
        # The NIC may have been brought down (crash) between delivery and
        # this deferred softirq: a dead interface must not hand frames to
        # the stack.  Counted with the NIC's other down-drops.
        if not self.nic.is_up:
            self.nic.down_drops += 1
            return
        self.pass_up(frame_bytes)

    def on_receive(self, frame_bytes: bytes) -> None:
        # Nothing sits below the driver; reception enters via the NIC upcall.
        raise RuntimeError("driver layer receives frames only from its NIC")

    def on_host_crash(self) -> None:
        """Crash with amnesia: no pooled job survives into the next life."""
        self.pool.reset()
