"""A testbed host: NIC + frame chain + IP/UDP/TCP stack.

The host is the unit the paper's Node Table names (hostname, MAC address,
IP address).  ``FAIL(node)`` faults call :meth:`Host.fail`, which models a
crash: the NIC goes down and the alive flag flips, so the node neither
sends nor receives — but no graceful shutdown happens anywhere, exactly
like pulling the power.
"""

from __future__ import annotations

from typing import Optional, Union

from ..net.addresses import IpAddress, MacAddress
from ..net.nic import Nic
from ..sim import Simulator
from .costs import CostModel
from .driver import DriverLayer
from .layers import LayerChain
from .ipstack import IpLayer
from .udp_stack import UdpLayer


class Host:
    """One testbed node with a full protocol stack."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: Union[str, MacAddress],
        ip: Union[str, IpAddress],
        costs: Optional[CostModel] = None,
        install_tcp: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.costs = costs if costs is not None else CostModel()
        self.is_alive = True
        self.nic = Nic(sim, mac, name=f"{name}-eth0")
        self.chain = LayerChain(sim, self)
        self.driver = DriverLayer(sim, self.nic, self.costs)
        self.chain.set_bottom(self.driver)
        self.ip_layer = IpLayer(
            sim, self.chain.demux, self.nic.mac, IpAddress(ip), self.costs
        )
        self.udp = UdpLayer(sim, self.ip_layer, self.costs)
        self.tcp = None
        if install_tcp:
            # Local import: repro.tcp builds on repro.stack, not vice versa.
            from ..tcp.layer import TcpLayer

            self.tcp = TcpLayer(sim, self, self.costs)
        self.rether = None  # installed on demand by repro.rether

    # -- identity -------------------------------------------------------------

    @property
    def mac(self) -> MacAddress:
        return self.nic.mac

    @property
    def ip(self) -> IpAddress:
        return self.ip_layer.local_ip

    # -- configuration ----------------------------------------------------------

    def add_neighbor(self, ip: Union[str, IpAddress], mac: Union[str, MacAddress]) -> None:
        """Teach this host another station's IP-to-MAC binding."""
        self.ip_layer.add_neighbor(ip, mac)

    def learn_neighbors(self, hosts) -> None:
        """Add neighbour entries for every host in *hosts* (self included OK)."""
        for other in hosts:
            self.ip_layer.add_neighbor(other.ip, other.mac)

    # -- fault hooks ------------------------------------------------------------

    def fail(self) -> None:
        """Crash the node (the FAIL(node) fault primitive)."""
        self.is_alive = False
        self.nic.bring_down()

    def recover(self) -> None:
        """Bring a crashed node back (used by extension scenarios)."""
        self.is_alive = True
        self.nic.bring_up()

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "FAILED"
        return f"Host({self.name}, {self.mac}, {self.ip}, {state})"
