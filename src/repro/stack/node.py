"""A testbed host: NIC + frame chain + IP/UDP/TCP stack.

The host is the unit the paper's Node Table names (hostname, MAC address,
IP address).  ``FAIL(node)`` faults call :meth:`Host.fail`, which models a
crash: the NIC goes down and the alive flag flips, so the node neither
sends nor receives — but no graceful shutdown happens anywhere, exactly
like pulling the power.
"""

from __future__ import annotations

from typing import Optional, Union

from ..net.addresses import IpAddress, MacAddress
from ..net.nic import Nic
from ..sim import Simulator
from .costs import CostModel
from .driver import DriverLayer
from .layers import LayerChain
from .ipstack import IpLayer
from .udp_stack import UdpLayer


class Host:
    """One testbed node with a full protocol stack."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: Union[str, MacAddress],
        ip: Union[str, IpAddress],
        costs: Optional[CostModel] = None,
        install_tcp: bool = True,
        frame_codec: str = "fast",
    ) -> None:
        self.sim = sim
        self.name = name
        self.costs = costs if costs is not None else CostModel()
        self.is_alive = True
        self.frame_codec = frame_codec
        self.nic = Nic(sim, mac, name=f"{name}-eth0")
        self.chain = LayerChain(sim, self)
        self.driver = DriverLayer(sim, self.nic, self.costs)
        self.chain.set_bottom(self.driver)
        self.ip_layer = IpLayer(
            sim,
            self.chain.demux,
            self.nic.mac,
            IpAddress(ip),
            self.costs,
            frame_codec=frame_codec,
        )
        self.udp = UdpLayer(sim, self.ip_layer, self.costs)
        self.tcp = None
        if install_tcp:
            # Local import: repro.tcp builds on repro.stack, not vice versa.
            from ..tcp.layer import TcpLayer

            self.tcp = TcpLayer(sim, self, self.costs)
        self.rether = None  # installed on demand by repro.rether
        #: repro.analysis NodeMetrics when the testbed enabled metrics;
        #: layers check it in attached() to pre-resolve their handles.
        self.metrics = None
        self._awaiting_resync = False  # set by reboot(), cleared once re-armed

    # -- identity -------------------------------------------------------------

    @property
    def mac(self) -> MacAddress:
        return self.nic.mac

    @property
    def ip(self) -> IpAddress:
        return self.ip_layer.local_ip

    # -- configuration ----------------------------------------------------------

    def add_neighbor(self, ip: Union[str, IpAddress], mac: Union[str, MacAddress]) -> None:
        """Teach this host another station's IP-to-MAC binding."""
        self.ip_layer.add_neighbor(ip, mac)

    def learn_neighbors(self, hosts) -> None:
        """Add neighbour entries for every host in *hosts* (self included OK)."""
        for other in hosts:
            self.ip_layer.add_neighbor(other.ip, other.mac)

    def set_frame_codec(self, codec: str) -> None:
        """Switch the whole stack between the ``fast`` and ``reference``
        header codecs (docs/PERF.md).  Call before traffic flows — spliced
        layers that window frames must not change representation mid-run."""
        self.ip_layer.set_frame_codec(codec)  # validates the name
        self.frame_codec = codec
        self.udp._fast = self.ip_layer._fast
        if self.tcp is not None:
            self.tcp._fast = self.ip_layer._fast
        for layer in self.chain.layers:
            setter = getattr(layer, "set_frame_codec", None)
            if setter is not None:
                setter(codec)

    def enable_metrics(self, node_metrics) -> None:
        """Arm telemetry: layers spliced later pick the handle up in
        ``attached()``; the driver (built before metrics existed) is armed
        here explicitly."""
        self.metrics = node_metrics
        self.driver.arm_metrics(node_metrics)

    # -- fault hooks ------------------------------------------------------------

    def fail(self) -> None:
        """Crash the node (the FAIL(node) fault primitive)."""
        self.is_alive = False
        self.nic.bring_down()

    def recover(self) -> None:
        """Bring a crashed node back (used by extension scenarios)."""
        self.is_alive = True
        self.nic.bring_up()

    # -- crash/restart lifecycle (the CRASH/RESTART fault primitives) -----------

    def crash(self) -> None:
        """Crash with amnesia: NIC down plus total loss of soft state.

        Unlike :meth:`fail` (power cut observed only from outside), this
        also destroys everything a real reboot would lose — TCP
        connections and socket buffers, UDP bindings, and every spliced
        layer's session state via its ``on_host_crash`` hook.
        """
        self.is_alive = False
        self.nic.bring_down()
        self._wipe_soft_state()

    def reboot(self) -> None:
        """Boot the crashed node back up into a blank-state machine.

        Re-runs the teardown first so a node taken down with plain
        :meth:`fail` still comes up with amnesia, then raises the NIC and
        marks the host as awaiting resynchronisation: layers get their
        ``on_host_resynced`` hook (and resume protocol work) only once
        :meth:`on_engine_started` reports the re-shipped fault tables are
        armed.
        """
        self._wipe_soft_state()
        self.is_alive = True
        self.nic.bring_up()
        self._awaiting_resync = True
        for layer in self.chain.layers:
            layer.on_host_reboot()

    def on_peer_reboot(self, mac: MacAddress) -> None:
        """A peer crashed and rebooted: layers forget its session state."""
        for layer in self.chain.layers:
            layer.on_peer_reboot(mac)

    def on_engine_started(self) -> None:
        """The local engine re-armed its tables after a reboot."""
        if getattr(self, "_awaiting_resync", False):
            self._awaiting_resync = False
            for layer in self.chain.layers:
                layer.on_host_resynced()

    def _wipe_soft_state(self) -> None:
        if self.tcp is not None:
            self.tcp.crash()
        self.udp.crash()
        for layer in self.chain.layers:
            layer.on_host_crash()

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "FAILED"
        return f"Host({self.name}, {self.mac}, {self.ip}, {state})"
