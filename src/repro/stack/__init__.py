"""Layered host protocol stack.

Reproduces the structure the paper's engine splices into: NIC, device
driver, an explicit frame chain with hook points (the Netfilter
substitute), IPv4, UDP sockets, and a per-layer CPU cost model.
"""

from .costs import FREE, CostModel
from .driver import DriverLayer
from .ipstack import IpLayer
from .layers import EthertypeDemux, FrameLayer, LayerChain
from .node import Host
from .udp_stack import UdpLayer, UdpSocket

__all__ = [
    "CostModel",
    "DriverLayer",
    "EthertypeDemux",
    "FrameLayer",
    "FREE",
    "Host",
    "IpLayer",
    "LayerChain",
    "UdpLayer",
    "UdpSocket",
]
