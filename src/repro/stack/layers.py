"""The layered frame path of a host, with named splice points.

The paper inserts its engine "between the network interface card's device
driver and the IP protocol stack" using Netfilter hooks (§3.3, §5.2).  We
reproduce that structure explicitly: every host owns a :class:`LayerChain`
of :class:`FrameLayer` objects running from the driver (bottom) to the
EtherType demultiplexer (top).  The VirtualWire FIE/FAE and the Reliable
Link Layer are ordinary :class:`FrameLayer` subclasses spliced into the
chain at run time — the host OS code is never modified, which is the
paper's headline deployment property.

Frames move through the chain as raw bytes; layers that need structure
parse on demand via :class:`repro.net.FrameView`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import StackError
from ..net.frame import EthernetFrame
from ..net.bytesutil import read_u16
from ..sim import Simulator


class FrameLayer:
    """One element of a host's frame path.

    Subclasses override :meth:`on_send` (frame travelling toward the wire)
    and :meth:`on_receive` (frame travelling toward the IP stack).  Each
    hook decides the frame's fate by calling :meth:`pass_down` /
    :meth:`pass_up`, holding the frame for later, or dropping it by simply
    not forwarding.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.lower: Optional["FrameLayer"] = None
        self.upper: Optional["FrameLayer"] = None
        self.host = None  # set when spliced into a chain

    # -- overridable hooks --------------------------------------------------

    def on_send(self, frame_bytes: bytes) -> None:
        """Handle a frame moving down; default is transparent forwarding."""
        self.pass_down(frame_bytes)

    def on_receive(self, frame_bytes: bytes) -> None:
        """Handle a frame moving up; default is transparent forwarding."""
        self.pass_up(frame_bytes)

    def attached(self) -> None:
        """Called once the layer is spliced in and ``self.host`` is set."""

    # -- host lifecycle hooks (crash/restart, all default no-ops) -----------

    def on_host_crash(self) -> None:
        """The owning host crashed: drop all soft state, cancel timers."""

    def on_host_reboot(self) -> None:
        """The owning host is booting back up with blank state."""

    def on_peer_reboot(self, mac) -> None:
        """The peer at *mac* crashed and rebooted: forget its session state."""

    def on_host_resynced(self) -> None:
        """The rebooted host's tables are re-armed; resume protocol work."""

    # -- forwarding helpers ---------------------------------------------------

    def pass_down(self, frame_bytes: bytes) -> None:
        if self.lower is None:
            raise StackError(f"layer {self.name!r} has nothing below it")
        self.lower.on_send(frame_bytes)

    def pass_up(self, frame_bytes: bytes) -> None:
        if self.upper is None:
            raise StackError(f"layer {self.name!r} has nothing above it")
        self.upper.on_receive(frame_bytes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class EthertypeDemux(FrameLayer):
    """Top of the frame chain: dispatches received frames by EtherType.

    Protocol modules (IP, Rether, ...) register handlers; to transmit they
    call :meth:`send_frame`, which enters the chain from the top.
    """

    def __init__(self) -> None:
        super().__init__("demux")
        self._handlers: Dict[int, Callable[[bytes], None]] = {}
        self.unclaimed_frames = 0

    def register(self, ethertype: int, handler: Callable[[bytes], None]) -> None:
        if ethertype in self._handlers:
            raise StackError(f"ethertype {ethertype:#06x} already has a handler")
        self._handlers[ethertype] = handler

    def unregister(self, ethertype: int) -> None:
        self._handlers.pop(ethertype, None)

    def send_frame(self, frame: EthernetFrame) -> None:
        """Serialise *frame* and send it down the chain."""
        self.on_send(frame.to_bytes())

    def send_frame_bytes(self, frame_bytes: bytes) -> None:
        self.on_send(frame_bytes)

    def on_receive(self, frame_bytes: bytes) -> None:
        if len(frame_bytes) < 14:
            self.unclaimed_frames += 1
            return
        handler = self._handlers.get(read_u16(frame_bytes, 12))
        if handler is None:
            self.unclaimed_frames += 1
            return
        handler(frame_bytes)


class LayerChain:
    """Assembles and re-splices the ordered list of frame layers."""

    def __init__(self, sim: Simulator, host) -> None:
        self.sim = sim
        self.host = host
        self.demux = EthertypeDemux()
        self.demux.host = host
        self._layers: List[FrameLayer] = []  # bottom first, demux excluded
        self._bottom: Optional[FrameLayer] = None

    def set_bottom(self, layer: FrameLayer) -> None:
        """Install the driver layer; must happen before any splicing."""
        if self._bottom is not None:
            raise StackError("bottom layer already installed")
        self._bottom = layer
        layer.host = self.host
        self._relink()
        layer.attached()

    def splice_above_driver(self, layer: FrameLayer) -> None:
        """Insert *layer* directly above the driver (e.g. the RLL)."""
        self._insert(0, layer)

    def splice_below_ip(self, layer: FrameLayer) -> None:
        """Insert *layer* directly below the demux/IP (the FIE/FAE spot)."""
        self._insert(len(self._layers), layer)

    def _insert(self, index: int, layer: FrameLayer) -> None:
        if self._bottom is None:
            raise StackError("install the driver before splicing layers")
        if layer in self._layers:
            raise StackError(f"layer {layer.name!r} already spliced")
        layer.host = self.host
        self._layers.insert(index, layer)
        self._relink()
        layer.attached()

    def remove(self, layer: FrameLayer) -> None:
        """Unsplice *layer*; the chain closes around the gap."""
        try:
            self._layers.remove(layer)
        except ValueError:
            raise StackError(f"layer {layer.name!r} is not in the chain") from None
        layer.lower = layer.upper = None
        self._relink()

    def _relink(self) -> None:
        ordered: List[FrameLayer] = []
        if self._bottom is not None:
            ordered.append(self._bottom)
        ordered.extend(self._layers)
        ordered.append(self.demux)
        for below, above in zip(ordered, ordered[1:]):
            below.upper = above
            above.lower = below
        ordered[0].lower = None
        ordered[-1].upper = None

    @property
    def layers(self) -> List[FrameLayer]:
        """Bottom-to-top list including driver and demux."""
        ordered: List[FrameLayer] = []
        if self._bottom is not None:
            ordered.append(self._bottom)
        ordered.extend(self._layers)
        ordered.append(self.demux)
        return ordered

    def __repr__(self) -> str:
        names = " <-> ".join(layer.name for layer in self.layers)
        return f"LayerChain({names})"
