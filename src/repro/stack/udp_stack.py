"""UDP layer and datagram sockets."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..errors import ChecksumError, PacketError, SocketError
from ..net.addresses import IpAddress
from ..net.fastpath import encode_udp_datagram, parse_udp_datagram
from ..net.ip import PROTO_UDP, Ipv4Packet
from ..net.udp import UdpDatagram
from ..sim import Simulator
from .costs import CostModel
from .ipstack import IpLayer

#: Socket upcall: (payload, src_ip, src_port) -> None.
DatagramHandler = Callable[[bytes, IpAddress, int], None]

_EPHEMERAL_BASE = 49152


class UdpSocket:
    """A bound UDP endpoint."""

    def __init__(self, layer: "UdpLayer", port: int) -> None:
        self._layer = layer
        self.port = port
        self.on_receive: Optional[DatagramHandler] = None
        self.closed = False
        self.tx_datagrams = 0
        self.rx_datagrams = 0

    def sendto(self, payload: bytes, dst_ip: Union[str, IpAddress], dst_port: int) -> None:
        """Send *payload* to (dst_ip, dst_port)."""
        if self.closed:
            raise SocketError(f"sendto on closed UDP socket port {self.port}")
        self.tx_datagrams += 1
        self._layer.send_datagram(self.port, IpAddress(dst_ip), dst_port, payload)

    def deliver(self, payload: bytes, src_ip: IpAddress, src_port: int) -> None:
        """Called by the layer when a datagram for this socket arrives."""
        self.rx_datagrams += 1
        if self.on_receive is not None:
            self.on_receive(payload, src_ip, src_port)

    def close(self) -> None:
        """Release the port; safe to call twice."""
        if not self.closed:
            self.closed = True
            self._layer.release_port(self.port)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"UdpSocket(port={self.port}, {state})"


class UdpLayer:
    """Port demultiplexing and checksummed datagram I/O over an IpLayer."""

    def __init__(self, sim: Simulator, ip_layer: IpLayer, costs: CostModel) -> None:
        self.sim = sim
        self.ip_layer = ip_layer
        self.costs = costs
        self._fast = ip_layer._fast
        self._sockets: Dict[int, UdpSocket] = {}
        self._next_ephemeral = _EPHEMERAL_BASE
        self.checksum_drops = 0
        self.unclaimed_port_drops = 0
        ip_layer.register_protocol(PROTO_UDP, self._receive)

    # -- socket management ----------------------------------------------------

    def bind(self, port: int = 0) -> UdpSocket:
        """Bind a socket to *port* (0 picks an ephemeral port)."""
        if port == 0:
            port = self._pick_ephemeral()
        if port in self._sockets:
            raise SocketError(f"UDP port {port} is already bound")
        socket = UdpSocket(self, port)
        self._sockets[port] = socket
        return socket

    def release_port(self, port: int) -> None:
        self._sockets.pop(port, None)

    def crash(self) -> None:
        """Host crash: every binding vanishes without close() running."""
        for socket in self._sockets.values():
            socket.closed = True
        self._sockets.clear()

    def _pick_ephemeral(self) -> int:
        for _ in range(0xFFFF - _EPHEMERAL_BASE):
            candidate = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 0xFFFF:
                self._next_ephemeral = _EPHEMERAL_BASE
            if candidate not in self._sockets:
                return candidate
        raise SocketError("ephemeral UDP port space exhausted")

    # -- datapath -------------------------------------------------------------

    def send_datagram(
        self, src_port: int, dst_ip: IpAddress, dst_port: int, payload: bytes
    ) -> None:
        datagram = UdpDatagram(src_port, dst_port, payload)
        if self._fast:
            wire = encode_udp_datagram(datagram, self.ip_layer.local_ip, dst_ip)
        else:
            wire = datagram.to_bytes(self.ip_layer.local_ip, dst_ip)
        if self.costs.udp_ns > 0:
            self.sim.after(
                self.costs.udp_ns,
                lambda: self.ip_layer.send(dst_ip, PROTO_UDP, wire),
                "udp:tx",
                pooled=True,
            )
        else:
            self.ip_layer.send(dst_ip, PROTO_UDP, wire)

    def _receive(self, packet: Ipv4Packet) -> None:
        try:
            if self._fast:
                datagram = parse_udp_datagram(packet.payload, packet.src, packet.dst)
            else:
                datagram = UdpDatagram.from_bytes(
                    packet.payload, packet.src, packet.dst, verify=True
                )
        except (ChecksumError, PacketError):
            self.checksum_drops += 1
            return
        socket = self._sockets.get(datagram.dst_port)
        if socket is None:
            self.unclaimed_port_drops += 1
            return
        if self.costs.udp_ns > 0:
            self.sim.after(
                self.costs.udp_ns,
                lambda: socket.deliver(datagram.payload, packet.src, datagram.src_port),
                "udp:rx",
                pooled=True,
            )
        else:
            socket.deliver(datagram.payload, packet.src, datagram.src_port)
