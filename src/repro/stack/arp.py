"""ARP: dynamic IPv4-to-MAC resolution (RFC 826 subset).

The testbed pre-fills static neighbour tables by default so fault scripts
stay minimal, but a real LAN resolves addresses with ARP — and ARP itself
is a protocol worth injecting faults into (drop the replies and watch the
sender stall).  Installing :class:`ArpService` on a host replaces the
static table as the resolution path: outgoing packets to unknown IPs are
queued, a broadcast ARP request goes out, and the queue drains when the
reply arrives.  Requests and replies are ordinary frames through the full
chain, so the VirtualWire engine sees and can manipulate them.

Wire format (EtherType 0x0806, Ethernet/IPv4 hardware/protocol types):

====== ==== =================================
offset size field
====== ==== =================================
14     2    hardware type (1 = Ethernet)
16     2    protocol type (0x0800)
18     1    hardware size (6)
19     1    protocol size (4)
20     2    opcode (1 request, 2 reply)
22     6    sender MAC
28     4    sender IP
32     6    target MAC (zero in requests)
38     4    target IP
====== ==== =================================
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..errors import PacketError
from ..net.addresses import IpAddress, MacAddress
from ..net.bytesutil import pack_u16, read_u16
from ..net.frame import ETHERTYPE_ARP, EthernetFrame
from ..sim import NS_PER_MS, NS_PER_SEC, Simulator

OP_REQUEST = 1
OP_REPLY = 2
PAYLOAD_LEN = 28

#: Re-ask after this long without a reply.
DEFAULT_RETRY_NS = 100 * NS_PER_MS
#: Give up (and drop queued packets) after this many requests.
DEFAULT_MAX_REQUESTS = 5
#: Cache entries expire after this long.
DEFAULT_CACHE_TTL_NS = 60 * NS_PER_SEC
#: Bound on packets queued per unresolved destination.
DEFAULT_PENDING_LIMIT = 16


class ArpMessage:
    """A decoded ARP request or reply."""

    __slots__ = ("opcode", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(self, opcode, sender_mac, sender_ip, target_mac, target_ip) -> None:
        if opcode not in (OP_REQUEST, OP_REPLY):
            raise PacketError(f"bad ARP opcode {opcode}")
        self.opcode = opcode
        self.sender_mac = MacAddress(sender_mac)
        self.sender_ip = IpAddress(sender_ip)
        self.target_mac = MacAddress(target_mac)
        self.target_ip = IpAddress(target_ip)

    @property
    def is_request(self) -> bool:
        return self.opcode == OP_REQUEST

    def to_payload(self) -> bytes:
        return (
            pack_u16(1)  # Ethernet
            + pack_u16(0x0800)  # IPv4
            + bytes([6, 4])
            + pack_u16(self.opcode)
            + self.sender_mac.packed
            + self.sender_ip.packed
            + self.target_mac.packed
            + self.target_ip.packed
        )

    @classmethod
    def parse(cls, payload: bytes) -> "ArpMessage":
        if len(payload) < PAYLOAD_LEN:
            raise PacketError(f"ARP payload of {len(payload)} bytes is too short")
        if read_u16(payload, 0) != 1 or read_u16(payload, 2) != 0x0800:
            raise PacketError("unsupported ARP hardware/protocol types")
        return cls(
            opcode=read_u16(payload, 6),
            sender_mac=payload[8:14],
            sender_ip=payload[14:18],
            target_mac=payload[18:24],
            target_ip=payload[24:28],
        )

    def __repr__(self) -> str:
        kind = "REQUEST" if self.is_request else "REPLY"
        return (
            f"ArpMessage({kind}, {self.sender_ip}/{self.sender_mac} -> "
            f"{self.target_ip})"
        )


class _PendingResolution:
    __slots__ = ("packets", "attempts", "timer")

    def __init__(self) -> None:
        self.packets: Deque[Tuple[int, bytes]] = deque()  # (protocol, payload)
        self.attempts = 0
        self.timer = None


class ArpService:
    """Dynamic resolution replacing a host's static neighbour table."""

    def __init__(
        self,
        host,
        retry_ns: int = DEFAULT_RETRY_NS,
        max_requests: int = DEFAULT_MAX_REQUESTS,
        cache_ttl_ns: int = DEFAULT_CACHE_TTL_NS,
        pending_limit: int = DEFAULT_PENDING_LIMIT,
    ) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.retry_ns = retry_ns
        self.max_requests = max_requests
        self.cache_ttl_ns = cache_ttl_ns
        self.pending_limit = pending_limit
        self._cache: Dict[IpAddress, Tuple[MacAddress, int]] = {}
        self._pending: Dict[IpAddress, _PendingResolution] = {}
        # Statistics.
        self.requests_sent = 0
        self.replies_sent = 0
        self.replies_received = 0
        self.resolution_failures = 0
        self.packets_dropped = 0
        host.chain.demux.register(ETHERTYPE_ARP, self._receive_frame)
        # Take over the IP layer's resolution/output path.
        self._ip = host.ip_layer
        self._original_send = self._ip.send
        self._ip.send = self._send_with_resolution  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------

    def lookup(self, ip: IpAddress) -> Optional[MacAddress]:
        """A cached, unexpired binding, or None."""
        entry = self._cache.get(IpAddress(ip))
        if entry is None:
            return None
        mac, stamp = entry
        if self.sim.now - stamp > self.cache_ttl_ns:
            del self._cache[IpAddress(ip)]
            return None
        return mac

    def _learn(self, ip: IpAddress, mac: MacAddress) -> None:
        self._cache[ip] = (mac, self.sim.now)
        self._ip.add_neighbor(ip, mac)  # keep the fast path in sync
        pending = self._pending.pop(ip, None)
        if pending is not None:
            if pending.timer is not None:
                pending.timer.cancel()
            for protocol, payload in pending.packets:
                self._original_send(ip, protocol, payload)

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------

    def _send_with_resolution(self, dst_ip, protocol: int, payload: bytes) -> None:
        dst_ip = IpAddress(dst_ip)
        if self.lookup(dst_ip) is not None:
            self._original_send(dst_ip, protocol, payload)
            return
        pending = self._pending.get(dst_ip)
        if pending is None:
            pending = _PendingResolution()
            self._pending[dst_ip] = pending
            self._ask(dst_ip, pending)
        if len(pending.packets) >= self.pending_limit:
            self.packets_dropped += 1
            return
        pending.packets.append((protocol, payload))

    def _ask(self, dst_ip: IpAddress, pending: _PendingResolution) -> None:
        pending.attempts += 1
        if pending.attempts > self.max_requests:
            # Resolution failed: RFC behaviour is to drop queued traffic.
            self.resolution_failures += 1
            self.packets_dropped += len(pending.packets)
            self._pending.pop(dst_ip, None)
            return
        self.requests_sent += 1
        request = ArpMessage(
            OP_REQUEST,
            self.host.mac,
            self.host.ip,
            MacAddress(b"\x00" * 6),
            dst_ip,
        )
        frame = EthernetFrame(
            MacAddress.BROADCAST, self.host.mac, ETHERTYPE_ARP, request.to_payload()
        )
        self.host.chain.demux.send_frame(frame)
        pending.timer = self.sim.after(
            self.retry_ns, lambda: self._ask(dst_ip, pending), "arp:retry"
        )

    # ------------------------------------------------------------------
    # Input path
    # ------------------------------------------------------------------

    def _receive_frame(self, frame_bytes: bytes) -> None:
        try:
            message = ArpMessage.parse(frame_bytes[14:])
        except PacketError:
            return
        # Opportunistic learning from any ARP traffic naming the sender.
        self._learn(message.sender_ip, message.sender_mac)
        if message.is_request and message.target_ip == self.host.ip:
            self.replies_sent += 1
            reply = ArpMessage(
                OP_REPLY,
                self.host.mac,
                self.host.ip,
                message.sender_mac,
                message.sender_ip,
            )
            frame = EthernetFrame(
                message.sender_mac, self.host.mac, ETHERTYPE_ARP, reply.to_payload()
            )
            self.host.chain.demux.send_frame(frame)
        elif not message.is_request:
            self.replies_received += 1

    def __repr__(self) -> str:
        return (
            f"ArpService({self.host.name}, cache={len(self._cache)}, "
            f"pending={len(self._pending)})"
        )


def install_arp(hosts, clear_static: bool = True, **kwargs) -> Dict[str, ArpService]:
    """Install ARP on each host; optionally purge static neighbour entries

    (keeping each host's own binding) so resolution genuinely exercises
    the protocol.
    """
    services = {}
    for host in hosts:
        if clear_static:
            host.ip_layer._neighbors = {host.ip: host.mac}
        services[host.name] = ArpService(host, **kwargs)
    return services
