"""Per-layer CPU cost model.

The paper's Fig 8 measures VirtualWire's *added* protocol-processing latency
on Pentium-4 hosts.  We replace wall-clock CPU time with explicit virtual
costs charged as each packet crosses a layer.  The defaults below are sized
so a 1000-byte UDP echo between two hosts on a 100 Mbps switch has a
round-trip time of a few hundred microseconds — the regime of the paper's
testbed — and so the engine's linear filter-scan cost lands in the same few
percent range the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Virtual CPU time (nanoseconds) charged at each processing step."""

    #: Device driver interrupt/DMA handling, each direction.
    driver_tx_ns: int = 5_000
    driver_rx_ns: int = 5_000
    #: IPv4 input/output processing (checksum, routing, demux).
    ip_ns: int = 10_000
    #: UDP socket delivery / send path.
    udp_ns: int = 8_000
    #: TCP segment processing (state machine, timers, buffer copies).
    tcp_ns: int = 15_000
    #: VirtualWire engine: fixed entry cost per intercepted packet.
    engine_base_ns: int = 500
    #: VirtualWire engine: one filter-table entry comparison (linear scan).
    #: Calibrated so 25 filters cost ~2-3% of a 1000-byte echo RTT and the
    #: full Fig 8 configuration lands around the paper's ~7% ceiling.
    filter_match_ns: int = 40
    #: VirtualWire engine: executing one triggered action (table updates).
    action_ns: int = 40
    #: VirtualWire engine: one counter/term/condition table touch.
    table_touch_ns: int = 20
    #: Reliable Link Layer: per-frame encapsulation/window bookkeeping.
    rll_frame_ns: int = 1_000

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by *factor*.

        Useful for sensitivity/ablation studies on the cost calibration.
        """
        return CostModel(
            driver_tx_ns=int(self.driver_tx_ns * factor),
            driver_rx_ns=int(self.driver_rx_ns * factor),
            ip_ns=int(self.ip_ns * factor),
            udp_ns=int(self.udp_ns * factor),
            tcp_ns=int(self.tcp_ns * factor),
            engine_base_ns=int(self.engine_base_ns * factor),
            filter_match_ns=int(self.filter_match_ns * factor),
            action_ns=int(self.action_ns * factor),
            table_touch_ns=int(self.table_touch_ns * factor),
            rll_frame_ns=int(self.rll_frame_ns * factor),
        )


#: Model with every cost zeroed, for tests that want pure wire timing.
FREE = CostModel(
    driver_tx_ns=0,
    driver_rx_ns=0,
    ip_ns=0,
    udp_ns=0,
    tcp_ns=0,
    engine_base_ns=0,
    filter_match_ns=0,
    action_ns=0,
    table_touch_ns=0,
    rll_frame_ns=0,
)
