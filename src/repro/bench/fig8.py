"""Figure 8: protocol-processing latency overhead vs number of filters.

The paper measures UDP echo round-trip latency between two hosts with the
VirtualWire layer inserted, sweeping the number of packet-type definitions
from 1 to 25, in three configurations: (i) filters only, (ii) filters plus
25 actions triggered per packet match, (iii) case (ii) with the Reliable
Link Layer enabled.  Because the engine scans the filter table linearly,
the added latency grows linearly in the filter count and stays below ~7%
of the baseline RTT.

This module regenerates the experiment: it synthesises an FSL script with
``n`` packet definitions arranged so the echo traffic matches the *last*
entry (worst-case scan, as in the paper's exact-match search), optionally
attaches a 25-action rule to every hook crossing, and compares the mean
echo RTT against a VirtualWire-free baseline testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.tables import CompiledProgram
from ..sim import ms, seconds
from ..workloads.echo import EchoClient, EchoServer
from .harness import percent_increase, two_node_testbed

#: The paper triggers 25 actions per packet match in configuration (ii).
ACTIONS_PER_MATCH = 25
MODES = ("filters", "actions", "actions+rll")


def build_script(
    node_table_fsl: str, n_filters: int, with_actions: bool, traffic: str = "udp"
) -> str:
    """Synthesise the Fig 8 scenario script.

    ``n_filters - 2`` decoy packet definitions (matching an EtherType that
    never appears) precede the two live ones — UDP echo probe/reply by
    default, or the TCP data/ack pair for the Fig 7 pump — so every
    classification scans the full table.  Each decoy is referenced by a
    counter, keeping it in the pruned filter table that actually ships to
    the engines.
    """
    if n_filters < 2:
        raise ValueError("need at least 2 filters (forward + reverse)")
    lines = ["FILTER_TABLE"]
    decoys = n_filters - 2
    for index in range(decoys):
        lines.append(f"  decoy{index}: (12 2 0x9{index % 10}{(index // 10) % 10}1)")
    if traffic == "udp":
        # Probe: UDP to the echo port (offset 36 = UDP destination port);
        # echo: UDP from the echo port (offset 34 = UDP source port).
        lines.append("  fwd_pkt: (12 2 0x0800), (23 1 0x11), (36 2 0x0007)")
        lines.append("  rev_pkt: (12 2 0x0800), (23 1 0x11), (34 2 0x0007)")
    elif traffic == "tcp":
        # The paper's own TCP definitions (Fig 2): data from port 0x6000,
        # acks from port 0x4000, ACK flag set.
        lines.append("  fwd_pkt: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)")
        lines.append("  rev_pkt: (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)")
    else:
        raise ValueError(f"unknown traffic kind {traffic!r}")
    lines.append("END")
    lines.append(node_table_fsl)
    lines.append(f"SCENARIO fig8_latency_{traffic}")
    for index in range(decoys):
        lines.append(f"  D{index}: (decoy{index}, node1, node2, SEND)")
    lines.append("  FwdOut: (fwd_pkt, node1, node2, SEND)")
    lines.append("  FwdIn:  (fwd_pkt, node1, node2, RECV)")
    lines.append("  RevOut: (rev_pkt, node2, node1, SEND)")
    lines.append("  RevIn:  (rev_pkt, node2, node1, RECV)")
    if with_actions:
        # One rule per hook crossing; each fires ACTIONS_PER_MATCH actions
        # (the reset that re-arms the rule plus 24 counter updates).
        for tag, counter, node in (
            ("fo", "FwdOut", "node1"),
            ("fi", "FwdIn", "node2"),
            ("ro", "RevOut", "node2"),
            ("ri", "RevIn", "node1"),
        ):
            lines.append(f"  X{tag}: ({node})")
            body = [f"RESET_CNTR( {counter} )"]
            body += [f"INCR_CNTR( X{tag}, 1 )"] * (ACTIONS_PER_MATCH - 1)
            lines.append(f"  (({counter} = 1)) >> " + "; ".join(body) + ";")
    lines.append("END")
    return "\n".join(lines)


@dataclass
class Fig8Point:
    """One measured cell of Fig 8."""

    mode: str
    n_filters: int
    mean_rtt_ns: float
    baseline_rtt_ns: float

    @property
    def overhead_percent(self) -> float:
        return percent_increase(self.mean_rtt_ns, self.baseline_rtt_ns)


def measure_baseline(probes: int = 50, payload: int = 1000, seed: int = 0) -> float:
    """Mean echo RTT with no VirtualWire anywhere (the 'without' curve)."""
    tb, node1, node2 = two_node_testbed(seed=seed, install_vw=False)
    EchoServer(node2)
    client = EchoClient(node1, node2.ip, probes=probes, payload_size=payload)
    client.start()
    tb.sim.run_until(seconds(30))
    if not client.done:
        raise RuntimeError("baseline echo run did not complete")
    return client.mean_rtt_ns


def fig8_script(mode: str, n_filters: int) -> str:
    """One cell's scenario source, for the canonical two-node testbed."""
    from ..scripts import canonical_node_table

    return build_script(
        canonical_node_table(2), n_filters, with_actions=mode != "filters"
    )


def measure_point(
    mode: str,
    n_filters: int,
    baseline_rtt_ns: float,
    probes: int = 50,
    payload: int = 1000,
    seed: int = 0,
    engine_config=None,
    program: Optional[CompiledProgram] = None,
    frame_codec: str = "fast",
) -> Fig8Point:
    """Measure one (mode, n_filters) cell.

    *engine_config* selects the engine tuning (e.g. the linear reference
    classifier); because the cost model charges the *linear-equivalent*
    scan count either way, the measured virtual-time curve must not
    depend on it.  Likewise *frame_codec* (fast/reference) must not move
    any virtual-time number (tests/differential/).  *program* is an
    optional pre-compiled :func:`fig8_script` (the sweep engine's
    compile-once path).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    tb, node1, node2 = two_node_testbed(
        seed=seed,
        install_vw=True,
        rll=(mode == "actions+rll"),
        engine_config=engine_config,
        frame_codec=frame_codec,
    )
    script = (
        program
        if program is not None
        else build_script(tb.node_table_fsl(), n_filters, with_actions=mode != "filters")
    )
    server = EchoServer(node2)
    state: Dict[str, EchoClient] = {}

    def workload() -> None:
        client = EchoClient(node1, node2.ip, probes=probes, payload_size=payload)
        state["client"] = client
        client.start()

    tb.run_scenario(script, workload=workload, max_time=seconds(60), inactivity_ns=ms(500))
    client = state["client"]
    if not client.done or not client.rtts_ns:
        raise RuntimeError(f"fig8 echo run incomplete (mode={mode}, n={n_filters})")
    server.close()
    return Fig8Point(mode, n_filters, client.mean_rtt_ns, baseline_rtt_ns)


def fig8_campaign(
    baseline_rtt_ns: float,
    filter_counts: Sequence[int] = (2, 5, 10, 15, 20, 25),
    modes: Sequence[str] = MODES,
    probes: int = 50,
    seed: int = 0,
):
    """The figure as a sweep campaign: one task per (mode, filter count).

    The baseline RTT is measured once by the caller (it is shared by every
    cell) and shipped as a plain number; each cell's script is compiled
    once here in the parent.
    """
    from ..sweep import SweepSpec, fig8_point_task

    spec = SweepSpec("fig8_latency", base_seed=seed)
    for mode in modes:
        for n_filters in filter_counts:
            spec.add(
                f"{mode}@{n_filters}",
                fig8_point_task,
                mode=mode,
                n_filters=n_filters,
                baseline_rtt_ns=baseline_rtt_ns,
                probes=probes,
                seed=seed,
                script=fig8_script(mode, n_filters),
            )
    return spec


def run_fig8(
    filter_counts: Sequence[int] = (2, 5, 10, 15, 20, 25),
    modes: Sequence[str] = MODES,
    probes: int = 50,
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
    baseline_rtt_ns: Optional[float] = None,
) -> List[Fig8Point]:
    """Regenerate the full figure: every (mode, filter count) cell."""
    from ..sweep import run_sweep

    baseline = (
        baseline_rtt_ns
        if baseline_rtt_ns is not None
        else measure_baseline(probes=probes, seed=seed)
    )
    outcome = run_sweep(
        fig8_campaign(
            baseline, filter_counts=filter_counts, modes=modes, probes=probes, seed=seed
        ),
        backend=backend,
        workers=workers,
    )
    failures = [row for row in outcome.rows if not row.ok]
    if failures:
        raise RuntimeError(f"fig8 campaign failed: {failures[0].error}")
    return [
        Fig8Point(
            mode=row.payload["mode"],
            n_filters=row.payload["n_filters"],
            mean_rtt_ns=row.payload["mean_rtt_ns"],
            baseline_rtt_ns=row.payload["baseline_rtt_ns"],
        )
        for row in outcome.rows
    ]


def render_table(points: List[Fig8Point]) -> str:
    """The figure as text: % RTT increase by filter count, one row per mode."""
    counts = sorted({p.n_filters for p in points})
    header = "filters:        " + "".join(f"{c:>8d}" for c in counts)
    lines = [header]
    for mode in MODES:
        row = [p for p in points if p.mode == mode]
        if not row:
            continue
        by_count = {p.n_filters: p for p in row}
        cells = "".join(
            f"{by_count[c].overhead_percent:>7.2f}%" if c in by_count else "      --"
            for c in counts
        )
        lines.append(f"{mode:<16s}{cells}")
    return "\n".join(lines)
