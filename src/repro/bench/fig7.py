"""Figure 7: TCP throughput vs offered load with the FIE layer inserted.

The paper pumps a TCP connection between two hosts at offered rates from
10 to 100 Mbps with 25 packet-type filters, 25 actions per match and the
Reliable Link Layer on, and plots the achieved throughput.  Throughput
tracks the offered rate until ~90 Mbps and then degrades — the RLL
encapsulates both TCP data and TCP acks, and its own acknowledgements
contend with data on the shared segment — but the loss stays within 10%.

We reproduce the experiment on a shared 100 Mbps segment (the contention
medium; see DESIGN.md) with a rate-paced TCP sender.  Both curves are
produced: the baseline without VirtualWire and the full
25-filter/25-action/RLL configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.tables import CompiledProgram
from ..scripts import canonical_node_table
from ..sim import NS_PER_SEC, ms, seconds
from ..workloads.bulk import BulkReceiver, PacedSender
from .fig8 import build_script
from .harness import RECEIVER_PORT, SENDER_PORT, two_node_testbed

#: The paper's engine configuration for this figure.
N_FILTERS = 25


@dataclass
class Fig7Point:
    """One measured point: offered rate vs achieved goodput."""

    offered_mbps: float
    with_virtualwire: bool
    goodput_mbps: float
    retransmissions: int


def _tcp_script(node_table_fsl: str) -> str:
    """The synthetic 25-filter/25-action script targeting the TCP pump:

    every data and ack packet pays the full linear scan and triggers 25
    actions at each hook crossing, exactly the paper's configuration.
    """
    return build_script(node_table_fsl, N_FILTERS, with_actions=True, traffic="tcp")


def fig7_script() -> str:
    """The figure's (single) scenario script, for the canonical two-node
    testbed whose auto-generated addresses ``canonical_node_table`` mirrors
    — campaigns compile it once in the parent and ship the program."""
    return _tcp_script(canonical_node_table(2))


def measure_point(
    offered_mbps: float,
    with_virtualwire: bool,
    duration_ns: int = int(0.3 * NS_PER_SEC),
    seed: int = 0,
    program: Optional[CompiledProgram] = None,
    frame_codec: str = "fast",
) -> Fig7Point:
    """Measure goodput at one offered rate.

    *program* is an optional pre-compiled :func:`fig7_script` (the sweep
    engine's compile-once path); without it the script is compiled here.
    *frame_codec* selects the fast or reference header codec — the figure's
    numbers are identical either way (tests/differential/); the wall-clock
    difference is what BENCH_FRAMES.json tracks.
    """
    tb, node1, node2 = two_node_testbed(
        seed=seed,
        medium="hub",
        install_vw=with_virtualwire,
        rll=with_virtualwire,
        frame_codec=frame_codec,
    )
    receiver = BulkReceiver(node2, RECEIVER_PORT)
    state: Dict[str, PacedSender] = {}

    def workload() -> None:
        state["sender"] = PacedSender(
            node1,
            node2.ip,
            RECEIVER_PORT,
            offered_bps=offered_mbps * 1e6,
            duration_ns=duration_ns,
            local_port=SENDER_PORT,
        )

    if with_virtualwire:
        script = program if program is not None else _tcp_script(tb.node_table_fsl())
        tb.run_scenario(
            script,
            workload=workload,
            max_time=duration_ns + seconds(5),
            inactivity_ns=ms(200),
        )
    else:
        workload()
        tb.sim.run_until(duration_ns + seconds(2))
    sender = state["sender"]
    return Fig7Point(
        offered_mbps=offered_mbps,
        with_virtualwire=with_virtualwire,
        goodput_mbps=receiver.goodput_bps() / 1e6,
        retransmissions=sender.connection.retransmissions,
    )


def fig7_campaign(
    offered_rates: Sequence[float],
    duration_ns: int = int(0.3 * NS_PER_SEC),
    seed: int = 0,
):
    """The figure as a sweep campaign: one task per (configuration, rate)."""
    from ..sweep import SweepSpec, fig7_point_task

    spec = SweepSpec("fig7_throughput", base_seed=seed)
    script = fig7_script()
    for with_vw in (False, True):
        for rate in offered_rates:
            label = f"{'virtualwire' if with_vw else 'baseline'}@{rate:g}Mbps"
            params = dict(
                offered_mbps=rate,
                with_virtualwire=with_vw,
                duration_ns=duration_ns,
                seed=seed,
            )
            if with_vw:
                params["script"] = script  # compiled once, shipped to workers
            spec.add(label, fig7_point_task, **params)
    return spec


def run_fig7(
    offered_rates: Sequence[float] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100),
    duration_ns: int = int(0.3 * NS_PER_SEC),
    seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> List[Fig7Point]:
    """Regenerate the full figure (both curves) as a sweep campaign."""
    from ..sweep import run_sweep

    outcome = run_sweep(
        fig7_campaign(offered_rates, duration_ns=duration_ns, seed=seed),
        backend=backend,
        workers=workers,
    )
    failures = [row for row in outcome.rows if not row.ok]
    if failures:
        raise RuntimeError(f"fig7 campaign failed: {failures[0].error}")
    return [
        Fig7Point(
            offered_mbps=row.payload["offered_mbps"],
            with_virtualwire=row.payload["with_virtualwire"],
            goodput_mbps=row.payload["goodput_mbps"],
            retransmissions=row.payload["retransmissions"],
        )
        for row in outcome.rows
    ]


def render_table(points: List[Fig7Point]) -> str:
    """The figure as text: goodput by offered rate for both configurations."""
    rates = sorted({p.offered_mbps for p in points})
    lines = ["offered Mbps:   " + "".join(f"{r:>8.0f}" for r in rates)]
    for with_vw, label in ((False, "baseline"), (True, "virtualwire+rll")):
        by_rate = {
            p.offered_mbps: p for p in points if p.with_virtualwire == with_vw
        }
        cells = "".join(
            f"{by_rate[r].goodput_mbps:>8.1f}" if r in by_rate else "      --"
            for r in rates
        )
        lines.append(f"{label:<16s}{cells}")
    return "\n".join(lines)
