"""Shared benchmark scaffolding: canonical two-node testbeds.

The paper's evaluation testbed is two Pentium-4 hosts on a 100 Mbps
switched LAN (§7).  :func:`two_node_testbed` builds the simulated
equivalent; Fig 7 uses the shared-segment variant because the throughput
effect it measures is contention between data and the RLL's acknowledgement
traffic.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.engine import EngineConfig
from ..core.testbed import Testbed
from ..stack.costs import CostModel
from ..stack.node import Host

#: Well-known ports used across the benchmarks (matching the paper's
#: examples: 0x6000 = 24576 on the sender, 0x4000 = 16384 on the receiver).
SENDER_PORT = 0x6000
RECEIVER_PORT = 0x4000


def two_node_testbed(
    seed: int = 0,
    medium: str = "switch",
    install_vw: bool = True,
    rll: bool = False,
    costs: Optional[CostModel] = None,
    engine_config: Optional[EngineConfig] = None,
    frame_codec: str = "fast",
    **medium_kwargs,
) -> Tuple[Testbed, Host, Host]:
    """Build the canonical 2-host testbed.

    *medium* is ``"switch"``, ``"hub"`` or ``"link"``.  When *install_vw*
    is False the testbed is the baseline (no engine anywhere); otherwise
    VirtualWire is installed on both hosts with node1 as the control node,
    optionally with the RLL below the engines and with *engine_config*
    applied to every engine (e.g. to pin the reference classifier when
    checking Fig 8 parity).  *frame_codec* selects the fast or reference
    header codec for the whole testbed (an explicit *engine_config* wins).
    """
    tb = Testbed(seed=seed, costs=costs, frame_codec=frame_codec)
    node1 = tb.add_host("node1")
    node2 = tb.add_host("node2")
    factory = {
        "switch": tb.add_switch,
        "hub": tb.add_hub,
        "bus": tb.add_bus,
        "link": tb.add_link,
    }[medium]
    factory("m0", **medium_kwargs)
    tb.connect("m0", node1, node2)
    if install_vw:
        tb.install_virtualwire(control="node1", rll=rll, engine_config=engine_config)
    return tb, node1, node2


def percent_increase(value: float, baseline: float) -> float:
    """Percentage by which *value* exceeds *baseline*."""
    if baseline <= 0:
        return 0.0
    return (value - baseline) * 100.0 / baseline
