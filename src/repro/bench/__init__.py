"""Benchmark support: workload builders for the paper's Figs 7 and 8."""

from .fig7 import Fig7Point, measure_point as measure_fig7_point, run_fig7
from .fig8 import (
    Fig8Point,
    build_script,
    measure_baseline,
    measure_point as measure_fig8_point,
    run_fig8,
)
from .harness import RECEIVER_PORT, SENDER_PORT, percent_increase, two_node_testbed

__all__ = [
    "Fig7Point",
    "Fig8Point",
    "RECEIVER_PORT",
    "SENDER_PORT",
    "build_script",
    "measure_baseline",
    "measure_fig7_point",
    "measure_fig8_point",
    "percent_increase",
    "run_fig7",
    "run_fig8",
    "two_node_testbed",
]
