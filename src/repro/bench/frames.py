"""Frames-per-second trajectory for the frame hot path (``BENCH_FRAMES.json``).

Two benches, both driven by the Fig 7 bulk-transfer traffic:

``fig7_hotpath`` (the canonical codec measurement) replays the wire frames
captured from one Fig 7 cell — RLL-encapsulated TCP data, TCP acks and RLL
pure acks under the 25-filter/25-action configuration — through exactly the
per-frame work each codec performs in the pipeline: RLL decap, twice-per-hook
classification, endpoint lookup, IP+TCP parse with checksum verification,
and the transmit-side re-serialisation back to wire bytes (asserted equal to
the captured frame, so the replay is itself a differential check).  Because
the replay strips the shared simulator/TCP-state-machine cost, its
frames/sec ratio between ``frame_codec="fast"`` and ``"reference"`` isolates
the hot path this module's trajectory pins — the ISSUE 7 ≥3x acceptance pair.

``fig7_bulk`` times one *end-to-end* Fig 7 cell in wall clock, normalised by
the frames the two device drivers moved.  Frame counts are a virtual-time
fact and byte-identical across codecs (tests/differential/), so this entry
tracks whole-system throughput (event loop + TCP + engine included); its
codec ratio is naturally smaller than the hotpath ratio because the shared
simulator cost dilutes it (docs/PERF.md discusses the split).

``BENCH_FRAMES.json`` at the repo root is an append-only JSON list.  Its
first two entries record the reference and fast codecs of ``fig7_hotpath``
on the same host, and every benchmark run appends more entries, so per-PR
regressions are visible as a trajectory.  CI runs
``python -m repro.bench.frames --codec both --min-speedup 2.4 --check ...``:
``--min-speedup`` gates the fast/reference ratio (host-independent) and
``--check`` fails when frames/sec drops more than 20% below the last
same-bench/same-codec entry (override with ``--min-ratio``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional, Tuple

from ..core.classify import make_classifier
from ..core.tables import CompiledProgram
from ..core.testbed import Testbed
from ..errors import ScenarioError
from ..net.fastpath import (
    encode_ipv4_frame,
    encode_tcp_segment,
    parse_ipv4_frame,
    parse_tcp_segment,
)
from ..net.frame import ETHERTYPE_IPV4, ETHERTYPE_RLL, EthernetFrame
from ..net.ip import PROTO_TCP, Ipv4Packet
from ..net.tcp_segment import TcpSegment
from ..rll.frames import (
    KIND_ACK,
    RllFrame,
    decap_data_fast,
    encap_ack_fast,
    encap_data_fast,
)
from ..sim import NS_PER_SEC, ms, seconds
from ..workloads.bulk import BulkReceiver, PacedSender
from .fig7 import _tcp_script
from .harness import RECEIVER_PORT, SENDER_PORT, two_node_testbed

#: Default virtual pumping time: long enough that per-frame work dominates
#: script compilation and testbed setup in the wall-clock figure.
DEFAULT_DURATION_NS = int(0.2 * NS_PER_SEC)
DEFAULT_OFFERED_MBPS = 90.0
#: The canonical trajectory file, at the repo root.
DEFAULT_TRAJECTORY = "BENCH_FRAMES.json"


@dataclass
class FramesResult:
    """One wall-clock measurement of the frame hot path."""

    bench: str
    frame_codec: str
    frames: int
    wall_s: float
    frames_per_sec: float
    goodput_mbps: float
    offered_mbps: float
    duration_ns: int
    seed: int


def measure_frames_point(
    frame_codec: str = "fast",
    offered_mbps: float = DEFAULT_OFFERED_MBPS,
    duration_ns: int = DEFAULT_DURATION_NS,
    seed: int = 0,
) -> FramesResult:
    """Run one Fig 7 bulk-transfer cell and time it in wall clock.

    Frames are counted at the two device drivers (tx + rx on both hosts):
    every data, ack, RLL and control frame that crossed the hot path,
    whichever codec moved it.
    """
    started = time.perf_counter()
    tb, node1, node2 = two_node_testbed(
        seed=seed, medium="hub", install_vw=True, rll=True, frame_codec=frame_codec
    )
    receiver = BulkReceiver(node2, RECEIVER_PORT)
    senders = {}

    def workload() -> None:
        senders["s"] = PacedSender(
            node1,
            node2.ip,
            RECEIVER_PORT,
            offered_bps=offered_mbps * 1e6,
            duration_ns=duration_ns,
            local_port=SENDER_PORT,
        )

    tb.run_scenario(
        _tcp_script(tb.node_table_fsl()),
        workload=workload,
        max_time=duration_ns + seconds(5),
        inactivity_ns=ms(200),
    )
    wall_s = time.perf_counter() - started
    frames = sum(
        node.driver.tx_frames + node.driver.rx_frames for node in (node1, node2)
    )
    return FramesResult(
        bench="fig7_bulk",
        frame_codec=frame_codec,
        frames=frames,
        wall_s=round(wall_s, 4),
        frames_per_sec=round(frames / wall_s, 1),
        goodput_mbps=round(receiver.goodput_bps() / 1e6, 3),
        offered_mbps=offered_mbps,
        duration_ns=duration_ns,
        seed=seed,
    )


# -- the hotpath replay bench -----------------------------------------------

#: Virtual capture time for the replay stream: a couple thousand frames.
HOTPATH_CAPTURE_NS = int(0.05 * NS_PER_SEC)
#: Replay passes per codec; the stream is identical for both, so repeats
#: only narrow the wall-clock jitter.
HOTPATH_REPEATS = 3


def capture_fig7_stream(
    seed: int = 0,
    offered_mbps: float = DEFAULT_OFFERED_MBPS,
    duration_ns: int = HOTPATH_CAPTURE_NS,
) -> Tuple[List[bytes], CompiledProgram]:
    """Run one short Fig 7 cell and record every data-plane wire frame.

    The tap sits at the NICs' transmit entry (below the drivers), so the
    stream holds exactly the on-wire bytes in transmission order:
    RLL-encapsulated TCP data and acks plus RLL pure acks.  Control-plane
    frames are filtered out — they cross the engine's control path, not
    the per-frame hot path this bench times.  Wire bytes are codec-
    independent (tests/differential/), so one capture serves both codecs.
    """
    tb, node1, node2 = two_node_testbed(
        seed=seed, medium="hub", install_vw=True, rll=True, frame_codec="fast"
    )
    BulkReceiver(node2, RECEIVER_PORT)
    stream: List[bytes] = []
    for node in (node1, node2):
        nic = node.driver.nic
        def tap(frame_bytes, _transmit=nic.transmit):
            stream.append(frame_bytes)
            _transmit(frame_bytes)
        nic.transmit = tap

    def workload() -> None:
        PacedSender(
            node1,
            node2.ip,
            RECEIVER_PORT,
            offered_bps=offered_mbps * 1e6,
            duration_ns=duration_ns,
            local_port=SENDER_PORT,
        )

    script = _tcp_script(tb.node_table_fsl())
    tb.run_scenario(
        script,
        workload=workload,
        max_time=duration_ns + seconds(5),
        inactivity_ns=ms(200),
    )
    program = Testbed.compile_cached(script)

    def is_data_plane(frame: bytes) -> bool:
        ethertype = (frame[12] << 8) | frame[13]
        if ethertype == ETHERTYPE_IPV4:
            return True
        if ethertype != ETHERTYPE_RLL:
            return False  # raw control-plane frame
        if frame[14] == KIND_ACK:
            return True
        # RLL DATA also carries control frames; keep only IPv4 payloads.
        return ((frame[20] << 8) | frame[21]) == ETHERTYPE_IPV4

    data_plane = [frame for frame in stream if is_data_plane(frame)]
    if not data_plane:
        raise ScenarioError("fig7 capture produced no data-plane frames")
    return data_plane, program


def _replay_reference(stream: List[bytes], classifier, nodes) -> None:
    """One pass of the reference per-frame pipeline over *stream*.

    Per frame, the object path's full journey: Ethernet parse, RLL shim
    parse + unwrap + inner re-serialisation (what the reference RLL layer
    hands upward), classification at both engine hooks, endpoint lookup,
    verified IPv4+TCP parse, then the transmit side's object-tree
    re-serialisation back to wire bytes — checked against the capture.
    """
    for data in stream:
        outer = EthernetFrame.from_bytes(data)
        if outer.ethertype == ETHERTYPE_RLL:
            shim = RllFrame.parse(outer.payload)
            if shim.kind == KIND_ACK:
                out = RllFrame.pure_ack(shim.ack).wrap(outer.dst, outer.src).to_bytes()
                if out != data:
                    raise ScenarioError("reference RLL ack round-trip diverged")
                continue
            inner_bytes = shim.unwrap(outer).to_bytes()
        else:
            shim = None
            inner_bytes = data
        classifier.classify(inner_bytes)  # sender-side hook
        classifier.classify(inner_bytes)  # receiver-side hook
        nodes.by_mac_bytes(inner_bytes[6:12])
        nodes.by_mac_bytes(inner_bytes[0:6])
        packet = Ipv4Packet.from_bytes(inner_bytes[14:], verify=True)
        if packet.protocol != PROTO_TCP:
            continue
        seg = TcpSegment.from_bytes(packet.payload, packet.src, packet.dst, verify=True)
        rebuilt = Ipv4Packet(
            src=packet.src,
            dst=packet.dst,
            protocol=packet.protocol,
            payload=seg.to_bytes(packet.src, packet.dst),
            ttl=packet.ttl,
            tos=packet.tos,
            ident=packet.ident,
            dont_fragment=packet.dont_fragment,
        )
        inner2 = EthernetFrame(outer.dst, outer.src, ETHERTYPE_IPV4, rebuilt.to_bytes())
        if shim is not None:
            out = (
                RllFrame.data_for(inner2, shim.seq, shim.ack)
                .wrap(outer.dst, outer.src)
                .to_bytes()
            )
        else:
            out = inner2.to_bytes()
        if out != data:
            raise ScenarioError("reference frame round-trip diverged")


def _replay_fast(stream: List[bytes], classifier, nodes) -> None:
    """One pass of the fast per-frame pipeline over *stream*.

    The same journey as :func:`_replay_reference` through the zero-copy
    codec: splice-based RLL decap, flattened classification, lazy verified
    parses, and the fast one-shot encoders on the transmit side — checked
    byte-for-byte against the capture.
    """
    for data in stream:
        if ((data[12] << 8) | data[13]) == ETHERTYPE_RLL:
            if data[14] == KIND_ACK:
                ack = (data[18] << 8) | data[19]
                out = encap_ack_fast(data[:6], data[6:12], ack)
                if out != data:
                    raise ScenarioError("fast RLL ack round-trip diverged")
                continue
            shim_seq = (data[16] << 8) | data[17]
            shim_ack = (data[18] << 8) | data[19]
            inner_bytes = decap_data_fast(data)
            rll = True
        else:
            rll = False
            inner_bytes = data
        classifier.classify(inner_bytes)  # sender-side hook
        classifier.classify(inner_bytes)  # receiver-side hook
        nodes.by_mac_bytes(inner_bytes[6:12])
        nodes.by_mac_bytes(inner_bytes[0:6])
        packet = parse_ipv4_frame(inner_bytes)
        if packet.protocol != PROTO_TCP:
            continue
        seg = parse_tcp_segment(packet.payload, packet.src, packet.dst)
        frame2 = encode_ipv4_frame(
            inner_bytes[:6],
            inner_bytes[6:12],
            packet.src.packed,
            packet.dst.packed,
            packet.protocol,
            packet.ident,
            encode_tcp_segment(seg, packet.src, packet.dst),
        )
        out = encap_data_fast(frame2, shim_seq, shim_ack) if rll else frame2
        if out != data:
            raise ScenarioError("fast frame round-trip diverged")


def measure_hotpath_point(
    frame_codec: str = "fast",
    stream: Optional[List[bytes]] = None,
    program: Optional[CompiledProgram] = None,
    repeats: int = HOTPATH_REPEATS,
    offered_mbps: float = DEFAULT_OFFERED_MBPS,
    duration_ns: int = HOTPATH_CAPTURE_NS,
    seed: int = 0,
) -> FramesResult:
    """Time the per-frame hot path over the captured Fig 7 stream.

    Pass the same (*stream*, *program*) from :func:`capture_fig7_stream`
    to both codecs so the frame counts are identical and only the codec
    varies; when omitted a fresh capture is made.
    """
    if stream is None or program is None:
        stream, program = capture_fig7_stream(
            seed=seed, offered_mbps=offered_mbps, duration_ns=duration_ns
        )
    kind = "compiled" if frame_codec == "fast" else "indexed"
    classifier = make_classifier(program.filters, kind)
    replay = _replay_fast if frame_codec == "fast" else _replay_reference
    nodes = program.nodes
    started = time.perf_counter()
    for _ in range(repeats):
        replay(stream, classifier, nodes)
    wall_s = time.perf_counter() - started
    frames = len(stream) * repeats
    return FramesResult(
        bench="fig7_hotpath",
        frame_codec=frame_codec,
        frames=frames,
        wall_s=round(wall_s, 4),
        frames_per_sec=round(frames / wall_s, 1),
        goodput_mbps=0.0,
        offered_mbps=offered_mbps,
        duration_ns=duration_ns,
        seed=seed,
    )


# -- the trajectory file ----------------------------------------------------


def trajectory_entry(result: FramesResult, note: str = "") -> dict:
    """A JSON-able trajectory entry: the measurement plus host provenance."""
    entry = {
        "utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": platform.node(),
        "python": platform.python_version(),
        **asdict(result),
    }
    if note:
        entry["note"] = note
    return entry


def load_trajectory(path) -> list:
    path = Path(path)
    if not path.exists():
        return []
    return json.loads(path.read_text())


def append_entry(path, entry: dict) -> None:
    path = Path(path)
    entries = load_trajectory(path)
    entries.append(entry)
    path.write_text(json.dumps(entries, indent=2) + "\n")


def last_entry(
    path, bench: str = "fig7_hotpath", frame_codec: str = "fast"
) -> Optional[dict]:
    """The most recent trajectory entry for (*bench*, *frame_codec*)."""
    for entry in reversed(load_trajectory(path)):
        if entry.get("bench") == bench and entry.get("frame_codec") == frame_codec:
            return entry
    return None


def check_regression(
    path, result: FramesResult, min_ratio: float = 0.8
) -> "tuple[bool, str]":
    """Compare *result* to the last same-codec trajectory entry.

    Returns ``(ok, message)``; *ok* is False when frames/sec fell below
    ``min_ratio`` of the recorded figure.  A missing baseline passes (the
    first run on a fresh trajectory has nothing to regress against).
    """
    baseline = last_entry(path, bench=result.bench, frame_codec=result.frame_codec)
    if baseline is None:
        return True, f"no {result.frame_codec} baseline in {path}; nothing to compare"
    if baseline.get("host") != platform.node():
        return True, (
            f"baseline host {baseline.get('host', '?')} differs from "
            f"{platform.node()}; wall-clock comparison skipped "
            "(--min-speedup still gates the codec ratio)"
        )
    recorded = float(baseline["frames_per_sec"])
    ratio = result.frames_per_sec / recorded
    message = (
        f"{result.bench}[{result.frame_codec}]: {result.frames_per_sec:,.0f} frames/s "
        f"vs recorded {recorded:,.0f} ({ratio:.2f}x, floor {min_ratio:.2f}x, "
        f"baseline host {baseline.get('host', '?')})"
    )
    return ratio >= min_ratio, message


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure fig7 frame hot-path frames/sec; maintain BENCH_FRAMES.json"
    )
    parser.add_argument(
        "--bench", choices=("hotpath", "bulk"), default="hotpath",
        help="hotpath replays captured fig7 frames through the codec "
        "pipeline; bulk times the end-to-end fig7 cell",
    )
    parser.add_argument(
        "--codec", choices=("fast", "reference", "both"), default="fast"
    )
    parser.add_argument("--offered-mbps", type=float, default=DEFAULT_OFFERED_MBPS)
    parser.add_argument(
        "--duration-ns", type=int, default=None,
        help="virtual pumping time (bulk) or capture time (hotpath)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=HOTPATH_REPEATS,
        help="hotpath replay passes per codec",
    )
    parser.add_argument(
        "--append", metavar="PATH", default=None,
        help="append each measurement to this trajectory file",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="fail when frames/sec drops below --min-ratio of the last "
        "same-bench, same-codec entry in this trajectory file",
    )
    parser.add_argument("--min-ratio", type=float, default=0.8)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="with --codec both: fail when fast/reference frames/sec "
        "falls below this ratio (host-independent gate)",
    )
    parser.add_argument("--note", default="")
    args = parser.parse_args(argv)

    codecs = ("reference", "fast") if args.codec == "both" else (args.codec,)
    results = {}
    if args.bench == "hotpath":
        duration_ns = args.duration_ns or HOTPATH_CAPTURE_NS
        stream, program = capture_fig7_stream(
            seed=args.seed, offered_mbps=args.offered_mbps, duration_ns=duration_ns
        )
        for codec in codecs:
            results[codec] = measure_hotpath_point(
                frame_codec=codec,
                stream=stream,
                program=program,
                repeats=args.repeats,
                offered_mbps=args.offered_mbps,
                duration_ns=duration_ns,
                seed=args.seed,
            )
    else:
        for codec in codecs:
            results[codec] = measure_frames_point(
                frame_codec=codec,
                offered_mbps=args.offered_mbps,
                duration_ns=args.duration_ns or DEFAULT_DURATION_NS,
                seed=args.seed,
            )
    for codec, result in results.items():
        goodput = (
            f" (goodput {result.goodput_mbps:.1f} Mbps)" if result.goodput_mbps else ""
        )
        print(
            f"{result.bench}[{codec}]: {result.frames:,} frames in "
            f"{result.wall_s:.2f}s = {result.frames_per_sec:,.0f} frames/s{goodput}"
        )
        if args.append:
            append_entry(args.append, trajectory_entry(result, note=args.note))
    status = 0
    if len(results) == 2:
        speedup = results["fast"].frames_per_sec / results["reference"].frames_per_sec
        print(f"fast/reference speedup: {speedup:.2f}x")
        if args.min_speedup is not None and speedup < args.min_speedup:
            print(f"REGRESSION speedup {speedup:.2f}x below floor {args.min_speedup:.2f}x")
            status = 1
    if args.check:
        for result in results.values():
            ok, message = check_regression(args.check, result, args.min_ratio)
            print(("OK " if ok else "REGRESSION ") + message)
            if not ok:
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
