"""An on/off UDP source for background-traffic and fault-matrix tests."""

from __future__ import annotations

from ..sim import Simulator
from ..stack.node import Host


class OnOffSource:
    """Sends UDP datagrams in exponentially distributed on/off bursts."""

    def __init__(
        self,
        host: Host,
        dst_ip,
        dst_port: int,
        rate_pps: float = 1000.0,
        mean_on_ns: int = 10_000_000,
        mean_off_ns: int = 10_000_000,
        payload_size: int = 512,
    ) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.rate_pps = rate_pps
        self.mean_on_ns = mean_on_ns
        self.mean_off_ns = mean_off_ns
        self.payload_size = payload_size
        self.socket = host.udp.bind(0)
        self.sent = 0
        self._running = False
        self._on = False
        self._rng = self.sim.random.stream(f"onoff:{host.name}")

    def start(self) -> None:
        self._running = True
        self._enter_on()

    def stop(self) -> None:
        self._running = False

    def _enter_on(self) -> None:
        if not self._running:
            return
        self._on = True
        span = int(self._rng.exponential(self.mean_on_ns)) + 1
        self.sim.after(span, self._enter_off, "onoff:off")
        self._emit()

    def _enter_off(self) -> None:
        self._on = False
        if not self._running:
            return
        span = int(self._rng.exponential(self.mean_off_ns)) + 1
        self.sim.after(span, self._enter_on, "onoff:on")

    def _emit(self) -> None:
        if not self._running or not self._on:
            return
        self.socket.sendto(bytes(self.payload_size), self.dst_ip, self.dst_port)
        self.sent += 1
        gap = max(1, int(1e9 / self.rate_pps))
        self.sim.after(gap, self._emit, "onoff:emit")
