"""Traffic generators used by the examples, tests and benchmarks."""

from .bulk import BulkReceiver, BulkSender, PacedSender
from .echo import EchoClient, EchoServer
from .onoff import OnOffSource

__all__ = [
    "BulkReceiver",
    "BulkSender",
    "EchoClient",
    "EchoServer",
    "OnOffSource",
    "PacedSender",
]
