"""Bulk and rate-paced TCP senders — the workloads behind Fig 7.

:class:`BulkSender` pushes a fixed byte count as fast as TCP allows.
:class:`PacedSender` offers data at a configured rate ("offered data
pumping rate" on Fig 7's x axis), so throughput can be measured as a
function of offered load.
"""

from __future__ import annotations

from typing import Optional

from ..sim import NS_PER_SEC, Simulator
from ..stack.node import Host
from ..tcp.connection import TcpConnection


class BulkReceiver:
    """Listens and counts received bytes (optionally retaining them)."""

    def __init__(self, host: Host, port: int, retain: bool = False) -> None:
        self.host = host
        self.port = port
        self.retain = retain
        self.bytes_received = 0
        self.data = bytearray()
        self.connection: Optional[TcpConnection] = None
        self.first_byte_at: Optional[int] = None
        self.last_byte_at: Optional[int] = None
        host.tcp.listen(port, self._on_accept)

    def _on_accept(self, conn: TcpConnection) -> None:
        self.connection = conn
        conn.on_data = self._on_data

    def _on_data(self, data: bytes) -> None:
        if self.first_byte_at is None:
            self.first_byte_at = self.host.sim.now
        self.last_byte_at = self.host.sim.now
        self.bytes_received += len(data)
        if self.retain:
            self.data.extend(data)

    def goodput_bps(self) -> float:
        """Application-level throughput over the active transfer window."""
        if (
            self.first_byte_at is None
            or self.last_byte_at is None
            or self.last_byte_at <= self.first_byte_at
        ):
            return 0.0
        elapsed = self.last_byte_at - self.first_byte_at
        return self.bytes_received * 8 * NS_PER_SEC / elapsed


class BulkSender:
    """Connects and sends *total_bytes* as fast as the window allows."""

    def __init__(
        self,
        host: Host,
        server_ip,
        server_port: int,
        total_bytes: int,
        local_port: int = 0,
        chunk: int = 64 * 1024,
    ) -> None:
        self.host = host
        self.total_bytes = total_bytes
        self.chunk = chunk
        self._sent = 0
        self.connection = host.tcp.connect(
            server_ip, server_port, local_port=local_port
        )
        self.connection.on_established = self._feed

    def _feed(self) -> None:
        # Keep the socket buffer topped up without materialising the whole
        # transfer at once.
        while (
            self._sent < self.total_bytes
            and self.connection.send_queue_bytes < self.chunk
        ):
            size = min(self.chunk, self.total_bytes - self._sent)
            self.connection.send(bytes(size))
            self._sent += size
        if self._sent < self.total_bytes:
            self.host.sim.after(1_000_000, self._feed, "bulk:feed")


class PacedSender:
    """Offers data to TCP at a fixed rate for a fixed duration.

    The offered rate is enforced by handing TCP one MSS-sized chunk every
    ``chunk_bits / rate`` of virtual time; if TCP cannot drain the socket
    buffer at that rate the buffer is capped, so the *offered* load stays
    constant while the *carried* load is whatever the path sustains —
    exactly the semantics of Fig 7's x axis.
    """

    def __init__(
        self,
        host: Host,
        server_ip,
        server_port: int,
        offered_bps: float,
        duration_ns: int,
        local_port: int = 0,
        chunk: int = 1024,
        buffer_cap: int = 256 * 1024,
    ) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.offered_bps = offered_bps
        self.duration_ns = duration_ns
        self.chunk = chunk
        self.buffer_cap = buffer_cap
        self.offered_bytes = 0
        self.refused_bytes = 0
        self._deadline = None
        self.connection = host.tcp.connect(server_ip, server_port, local_port=local_port)
        self.connection.on_established = self._begin

    def _begin(self) -> None:
        self._deadline = self.sim.now + self.duration_ns
        self._interval = max(1, int(self.chunk * 8 * NS_PER_SEC / self.offered_bps))
        self._tick()

    def _tick(self) -> None:
        if self.sim.now >= self._deadline or not self.connection.is_established:
            return
        if self.connection.send_queue_bytes < self.buffer_cap:
            self.connection.send(bytes(self.chunk))
            self.offered_bytes += self.chunk
        else:
            self.refused_bytes += self.chunk
        self.sim.after(self._interval, self._tick, "paced:tick")
