"""UDP echo client/server — the workload behind the paper's Fig 8.

The client sends fixed-size datagrams, one at a time, and measures the
round-trip time of each echo.  Per-packet RTTs feed the latency-overhead
benchmark: Fig 8 plots the percentage increase in RTT caused by inserting
the VirtualWire layer, as a function of the number of filter rules.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Simulator
from ..stack.node import Host

DEFAULT_PAYLOAD = 1000
DEFAULT_PORT = 7  # the traditional echo port


class EchoServer:
    """Echoes every datagram back to its sender."""

    def __init__(self, host: Host, port: int = DEFAULT_PORT) -> None:
        self.host = host
        self.socket = host.udp.bind(port)
        self.socket.on_receive = self._echo
        self.echoed = 0

    def _echo(self, payload: bytes, src_ip, src_port: int) -> None:
        self.echoed += 1
        self.socket.sendto(payload, src_ip, src_port)

    def close(self) -> None:
        self.socket.close()


class EchoClient:
    """Ping-pong client: sends the next probe when the echo returns."""

    def __init__(
        self,
        host: Host,
        server_ip,
        server_port: int = DEFAULT_PORT,
        payload_size: int = DEFAULT_PAYLOAD,
        probes: int = 100,
        timeout_ns: int = 1_000_000_000,
    ) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.server_ip = server_ip
        self.server_port = server_port
        self.payload_size = payload_size
        self.probes_target = probes
        self.timeout_ns = timeout_ns
        self.socket = host.udp.bind(0)
        self.socket.on_receive = self._on_echo
        self.rtts_ns: List[int] = []
        self.timeouts = 0
        self._sent_at: Optional[int] = None
        self._seq = 0
        self._timer = None
        self.done = False
        self.on_done = None

    def start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        if self._seq >= self.probes_target:
            self._finish()
            return
        self._seq += 1
        payload = self._seq.to_bytes(4, "big") + bytes(self.payload_size - 4)
        self._sent_at = self.sim.now
        self.socket.sendto(payload, self.server_ip, self.server_port)
        self._timer = self.sim.after(self.timeout_ns, self._on_timeout, "echo:timeout")

    def _on_echo(self, payload: bytes, src_ip, src_port: int) -> None:
        if self._sent_at is None or len(payload) < 4:
            return
        if int.from_bytes(payload[:4], "big") != self._seq:
            return  # a late echo of an already timed-out probe
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.rtts_ns.append(self.sim.now - self._sent_at)
        self._sent_at = None
        self._send_next()

    def _on_timeout(self) -> None:
        self._timer = None
        self.timeouts += 1
        self._sent_at = None
        self._send_next()

    def _finish(self) -> None:
        if not self.done:
            self.done = True
            if self.on_done is not None:
                self.on_done()

    @property
    def mean_rtt_ns(self) -> float:
        if not self.rtts_ns:
            return 0.0
        return sum(self.rtts_ns) / len(self.rtts_ns)

    def close(self) -> None:
        self.socket.close()
        if self._timer is not None:
            self._timer.cancel()
