"""Reliable Link Layer frame format.

An RLL frame re-uses the outer Ethernet addressing of the frame it carries
and replaces the EtherType with :data:`repro.net.ETHERTYPE_RLL`.  The
payload is a small shim header followed, for DATA frames, by the original
EtherType and payload — so decapsulation can reconstruct the original frame
byte-for-byte, and the VirtualWire engine above the RLL keeps seeing
exactly the offsets its filter table was written against.

Shim layout (big endian):

====== ======= =====================================
offset size    field
====== ======= =====================================
0      1       kind: 1 = DATA, 2 = ACK
1      1       reserved (zero)
2      2       seq   (DATA: this frame's sequence)
4      2       ack   (cumulative: next seq expected)
6      2       original EtherType (DATA only)
====== ======= =====================================
"""

from __future__ import annotations

import struct
from typing import Optional

from ..errors import PacketError
from ..net.bytesutil import pack_u16, read_u16
from ..net.frame import ETHERTYPE_RLL, MAX_PAYLOAD, EthernetFrame

KIND_DATA = 1
KIND_ACK = 2

SHIM_LEN = 8
#: Sequence numbers live modulo 2^16.
SEQ_MOD = 1 << 16


def seq_add(seq: int, delta: int) -> int:
    return (seq + delta) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed distance from *b* to *a* in mod-2^16 space."""
    delta = (a - b) % SEQ_MOD
    return delta - SEQ_MOD if delta >= SEQ_MOD // 2 else delta


class RllFrame:
    """A decoded RLL shim plus (for DATA) the encapsulated original frame."""

    __slots__ = ("kind", "seq", "ack", "inner_ethertype", "inner_payload")

    def __init__(
        self,
        kind: int,
        seq: int,
        ack: int,
        inner_ethertype: int = 0,
        inner_payload: bytes = b"",
    ) -> None:
        if kind not in (KIND_DATA, KIND_ACK):
            raise PacketError(f"bad RLL frame kind: {kind}")
        self.kind = kind
        self.seq = seq % SEQ_MOD
        self.ack = ack % SEQ_MOD
        self.inner_ethertype = inner_ethertype
        self.inner_payload = bytes(inner_payload)

    # -- encapsulation ---------------------------------------------------

    @classmethod
    def data_for(cls, original: EthernetFrame, seq: int, ack: int) -> "RllFrame":
        """Build the DATA shim carrying *original*'s type and payload."""
        return cls(KIND_DATA, seq, ack, original.ethertype, original.payload)

    @classmethod
    def pure_ack(cls, ack: int) -> "RllFrame":
        return cls(KIND_ACK, 0, ack)

    def shim_bytes(self) -> bytes:
        return (
            bytes([self.kind, 0])
            + pack_u16(self.seq)
            + pack_u16(self.ack)
            + pack_u16(self.inner_ethertype)
            + self.inner_payload
        )

    def wrap(self, dst, src) -> EthernetFrame:
        """Produce the on-wire RLL Ethernet frame."""
        return EthernetFrame(dst, src, ETHERTYPE_RLL, self.shim_bytes())

    def unwrap(self, outer: EthernetFrame) -> EthernetFrame:
        """Reconstruct the original frame a DATA shim carries."""
        if self.kind != KIND_DATA:
            raise PacketError("only DATA frames carry an inner frame")
        return EthernetFrame(outer.dst, outer.src, self.inner_ethertype, self.inner_payload)

    # -- decoding ------------------------------------------------------------

    @classmethod
    def parse(cls, payload: bytes) -> "RllFrame":
        if len(payload) < SHIM_LEN:
            raise PacketError(f"RLL shim of {len(payload)} bytes is too short")
        return cls(
            kind=payload[0],
            seq=read_u16(payload, 2),
            ack=read_u16(payload, 4),
            inner_ethertype=read_u16(payload, 6),
            inner_payload=payload[SHIM_LEN:],
        )

    @classmethod
    def maybe_parse(cls, frame: EthernetFrame) -> Optional["RllFrame"]:
        """Parse if *frame* is an RLL frame, else None."""
        if frame.ethertype != ETHERTYPE_RLL:
            return None
        return cls.parse(frame.payload)

    def __repr__(self) -> str:
        kind = "DATA" if self.kind == KIND_DATA else "ACK"
        return f"RllFrame({kind}, seq={self.seq}, ack={self.ack})"


# -- fast-codec helpers (byte-identical to the RllFrame/EthernetFrame path) --

#: RLL EtherType + kind + reserved + seq + ack, the 8 bytes inserted at
#: offset 12 when encapsulating (the inner EtherType slides to offset 20).
_SHIM_INSERT = struct.Struct(">HBBHH")


def encap_data_fast(frame_bytes: bytes, seq: int, ack: int) -> bytes:
    """DATA encapsulation on raw bytes.

    Equals ``RllFrame.data_for(frame, seq, ack).wrap(frame.dst,
    frame.src).to_bytes()``: the outer frame keeps the inner addressing, so
    the wire form is the original frame with 8 shim bytes spliced in after
    the source MAC.  Replicates the wrap path's Ethernet MTU check.
    """
    if len(frame_bytes) - 6 > MAX_PAYLOAD:
        raise PacketError(
            f"payload of {len(frame_bytes) - 6} bytes exceeds Ethernet MTU {MAX_PAYLOAD}"
        )
    return (
        frame_bytes[:12]
        + _SHIM_INSERT.pack(ETHERTYPE_RLL, KIND_DATA, 0, seq, ack)
        + frame_bytes[12:]
    )


#: EtherType + full 8-byte shim of a pure ACK (inner EtherType zero).
_ACK_TAIL = struct.Struct(">HBBHHH")


def encap_ack_fast(dst_packed: bytes, src_packed: bytes, ack: int) -> bytes:
    """Pure-ACK frame bytes, equal to ``pure_ack(ack).wrap(dst, src).to_bytes()``."""
    return dst_packed + src_packed + _ACK_TAIL.pack(ETHERTYPE_RLL, KIND_ACK, 0, 0, ack, 0)


def decap_data_fast(frame_bytes: bytes) -> bytes:
    """Reconstruct the original frame from DATA frame bytes.

    Equals ``shim.unwrap(outer).to_bytes()``: strip the 8 shim bytes so the
    inner EtherType (at offset 20) lands back at offset 12.
    """
    return frame_bytes[:12] + frame_bytes[20:]
