"""The Reliable Link Layer (paper §3.3).

A go-back-N sliding-window protocol spliced *below* the VirtualWire engine
and above the device driver.  Its job in the paper is to make the testbed a
truly controlled environment: MAC-level bit errors (which the engine cannot
see) must never manifest as packet loss, so the only losses a protocol
under test experiences are the ones the fault script injected.

Properties:

* per-peer windows, cumulative ACKs, retransmission on timeout;
* in-order exactly-once delivery of unicast frames to the layer above;
* broadcast/multicast frames bypass the window (they are not acked) —
  link-level reliability for them would need true multicast consensus,
  which neither the paper nor any Ethernet provides;
* a retry cap so a crashed peer (FAIL fault) cannot generate an infinite
  retransmission storm.

The ACK traffic this layer adds in both directions is exactly the overhead
the paper measures in Figs 7 and 8.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..errors import PacketError
from ..net.addresses import MacAddress
from ..net.fastpath import intern_mac
from ..net.frame import HEADER_LEN, MAX_PAYLOAD, EthernetFrame
from ..sim import NS_PER_MS, Simulator
from ..stack.layers import FrameLayer
from .frames import (
    KIND_ACK,
    KIND_DATA,
    SHIM_LEN,
    RllFrame,
    decap_data_fast,
    encap_ack_fast,
    encap_data_fast,
    seq_add,
    seq_diff,
)

#: Outstanding unacked frames allowed per peer.
DEFAULT_WINDOW = 8
#: Retransmission timeout: a couple of LAN round trips.
DEFAULT_RTO_NS = 2 * NS_PER_MS
#: Give up on a frame after this many retransmissions (dead peer).
DEFAULT_MAX_RETRIES = 20


class _PeerState:
    """Window state for one (local, remote) unicast pairing."""

    __slots__ = (
        "snd_base",
        "snd_next",
        "window",
        "unacked",
        "backlog",
        "rcv_next",
        "retries",
        "timer",
    )

    def __init__(self) -> None:
        self.snd_base = 0
        self.snd_next = 0
        self.window: Deque[Tuple[int, EthernetFrame]] = deque()
        self.unacked = 0  # frames currently in the window
        self.backlog: Deque[EthernetFrame] = deque()
        self.rcv_next = 0
        self.retries = 0
        self.timer = None


class RllLayer(FrameLayer):
    """Reliable Link Layer as a splice-in frame layer."""

    def __init__(
        self,
        sim: Simulator,
        window: int = DEFAULT_WINDOW,
        rto_ns: int = DEFAULT_RTO_NS,
        max_retries: int = DEFAULT_MAX_RETRIES,
        frame_cost_ns: Optional[int] = None,
    ) -> None:
        super().__init__("rll")
        self.sim = sim
        self.window_size = window
        self.rto_ns = rto_ns
        self.max_retries = max_retries
        self._frame_cost_ns = frame_cost_ns
        #: Fast codec flag, resolved from the host in attached().  Windows
        #: and backlogs hold raw frame bytes in fast mode, EthernetFrame
        #: objects in reference mode — never switch codecs mid-flight.
        self._fast = False
        self._peers: Dict[MacAddress, _PeerState] = {}
        # Statistics.
        self.data_sent = 0
        self.data_received = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.retransmissions = 0
        self.duplicates_discarded = 0
        self.out_of_order_discarded = 0
        self.abandoned_frames = 0
        self.bypass_frames = 0
        # Metric handles (repro.analysis); None keeps the hot path free.
        self._m_rtx = None
        self._m_abandoned = None
        self._m_backlog = None

    def attached(self) -> None:
        if self._frame_cost_ns is None:
            self._frame_cost_ns = self.host.costs.rll_frame_ns if self.host else 0
        self._fast = getattr(self.host, "frame_codec", "reference") == "fast"
        metrics = getattr(self.host, "metrics", None)
        if metrics is not None:
            self._m_rtx = metrics.counter("rll", "retransmissions")
            self._m_abandoned = metrics.counter("rll", "abandoned_frames")
            self._m_backlog = metrics.gauge("rll", "backlog_depth")

    def set_frame_codec(self, codec: str) -> None:
        """Select fast/reference framing; call only while no frames are
        windowed (the two modes store different window element types)."""
        self._fast = codec == "fast"

    def _charge(self, thunk, label: str) -> None:
        if self._frame_cost_ns:
            self.sim.after(self._frame_cost_ns, thunk, label, pooled=True)
        else:
            thunk()

    def _peer(self, mac: MacAddress) -> _PeerState:
        state = self._peers.get(mac)
        if state is None:
            state = _PeerState()
            self._peers[mac] = state
        return state

    # ------------------------------------------------------------------
    # Host lifecycle
    # ------------------------------------------------------------------

    def on_host_crash(self) -> None:
        """Host crash: every window, backlog and timer is gone."""
        for peer in self._peers.values():
            self._cancel_timer(peer)
        self._peers.clear()

    def on_peer_reboot(self, mac: MacAddress) -> None:
        """A peer rebooted with sequence numbers back at zero: forget the
        old pairing so the fresh exchange is not discarded as duplicates."""
        peer = self._peers.pop(mac, None)
        if peer is not None:
            self._cancel_timer(peer)

    # ------------------------------------------------------------------
    # Downward path: encapsulate and window
    # ------------------------------------------------------------------

    def on_send(self, frame_bytes: bytes) -> None:
        if self._fast:
            # Same checks EthernetFrame.from_bytes would have applied;
            # window/backlog hold the raw bytes, never a parsed frame.
            n = len(frame_bytes)
            if n < HEADER_LEN:
                raise PacketError(f"frame of {n} bytes is shorter than header")
            if n - HEADER_LEN > MAX_PAYLOAD:
                raise PacketError(
                    f"payload of {n - HEADER_LEN} bytes exceeds "
                    f"Ethernet MTU {MAX_PAYLOAD}"
                )
            if frame_bytes[0] & 0x01:
                self.bypass_frames += 1
                self.pass_down(frame_bytes)
                return
            dst = intern_mac(frame_bytes[:6])
            frame = frame_bytes
        else:
            parsed = EthernetFrame.from_bytes(frame_bytes)
            if parsed.dst.is_multicast:
                self.bypass_frames += 1
                self.pass_down(frame_bytes)
                return
            dst = parsed.dst
            frame = parsed
        peer = self._peer(dst)
        if peer.unacked >= self.window_size:
            peer.backlog.append(frame)
            if self._m_backlog is not None:
                self._m_backlog.set(len(peer.backlog))
            return
        self._charge(lambda: self._send_data(dst, peer, frame), "rll:tx")

    def _send_data(self, dst: MacAddress, peer: _PeerState, frame) -> None:
        seq = peer.snd_next
        peer.snd_next = seq_add(peer.snd_next, 1)
        peer.window.append((seq, frame))
        peer.unacked += 1
        self.data_sent += 1
        self._emit_data(dst, frame, seq, peer.rcv_next)
        if peer.timer is None:
            self._arm_timer(dst, peer)

    def _emit_data(self, dst: MacAddress, frame, seq: int, ack: int) -> None:
        if self._fast:
            self.pass_down(encap_data_fast(frame, seq, ack))
            return
        shim = RllFrame.data_for(frame, seq, ack)
        self.pass_down(shim.wrap(dst, frame.src).to_bytes())

    # ------------------------------------------------------------------
    # Upward path: decapsulate, ack, deliver in order
    # ------------------------------------------------------------------

    def on_receive(self, frame_bytes: bytes) -> None:
        if self._fast:
            self._receive_fast(frame_bytes)
            return
        outer = EthernetFrame.from_bytes(frame_bytes)
        shim = RllFrame.maybe_parse(outer)
        if shim is None:
            # Not RLL traffic (e.g. a peer without RLL, or multicast bypass).
            self.bypass_frames += 1
            self.pass_up(frame_bytes)
            return
        peer = self._peer(outer.src)
        if shim.kind == KIND_ACK:
            self.acks_received += 1
            self._process_ack(outer.src, peer, shim.ack)
            return
        if shim.kind == KIND_DATA:
            self._charge(
                lambda: self._process_data(outer, shim, peer), "rll:rx"
            )

    def _receive_fast(self, frame_bytes: bytes) -> None:
        # Field-by-field twin of the reference path above, including every
        # reject the reference parsers would have raised.
        n = len(frame_bytes)
        if n < HEADER_LEN:
            raise PacketError(f"frame of {n} bytes is shorter than header")
        if n - HEADER_LEN > MAX_PAYLOAD:
            raise PacketError(
                f"payload of {n - HEADER_LEN} bytes exceeds Ethernet MTU {MAX_PAYLOAD}"
            )
        if frame_bytes[12] != 0x88 or frame_bytes[13] != 0xB6:
            self.bypass_frames += 1
            self.pass_up(frame_bytes)
            return
        if n - HEADER_LEN < SHIM_LEN:
            raise PacketError(f"RLL shim of {n - HEADER_LEN} bytes is too short")
        kind = frame_bytes[14]
        if kind != KIND_DATA and kind != KIND_ACK:
            raise PacketError(f"bad RLL frame kind: {kind}")
        src = intern_mac(frame_bytes[6:12])
        peer = self._peer(src)
        ack = (frame_bytes[18] << 8) | frame_bytes[19]
        if kind == KIND_ACK:
            self.acks_received += 1
            self._process_ack(src, peer, ack)
            return
        seq = (frame_bytes[16] << 8) | frame_bytes[17]
        self._charge(
            lambda: self._process_data_fast(frame_bytes, src, seq, ack, peer),
            "rll:rx",
        )

    def _process_data_fast(
        self, frame_bytes: bytes, src: MacAddress, seq: int, ack: int, peer: _PeerState
    ) -> None:
        self._process_ack(src, peer, ack)
        delta = seq_diff(seq, peer.rcv_next)
        if delta == 0:
            peer.rcv_next = seq_add(peer.rcv_next, 1)
            self.data_received += 1
            self._send_ack(src, peer)
            self.pass_up(decap_data_fast(frame_bytes))
        elif delta < 0:
            self.duplicates_discarded += 1
            self._send_ack(src, peer)
        else:
            self.out_of_order_discarded += 1
            self._send_ack(src, peer)

    def _process_data(self, outer: EthernetFrame, shim: RllFrame, peer: _PeerState) -> None:
        # Piggybacked cumulative ack is valid on every DATA frame.
        self._process_ack(outer.src, peer, shim.ack)
        delta = seq_diff(shim.seq, peer.rcv_next)
        if delta == 0:
            peer.rcv_next = seq_add(peer.rcv_next, 1)
            self.data_received += 1
            self._send_ack(outer.src, peer)
            self.pass_up(shim.unwrap(outer).to_bytes())
        elif delta < 0:
            # Duplicate of something we already delivered: re-ack, discard.
            self.duplicates_discarded += 1
            self._send_ack(outer.src, peer)
        else:
            # Go-back-N: a gap means the earlier frame is in flight again;
            # discard and re-ack the last in-order point.
            self.out_of_order_discarded += 1
            self._send_ack(outer.src, peer)

    def _send_ack(self, dst: MacAddress, peer: _PeerState) -> None:
        self.acks_sent += 1
        src = self.host.mac if self.host is not None else dst
        if self._fast:
            self.pass_down(encap_ack_fast(dst.packed, src.packed, peer.rcv_next))
            return
        shim = RllFrame.pure_ack(peer.rcv_next)
        self.pass_down(shim.wrap(dst, src).to_bytes())

    def _process_ack(self, dst: MacAddress, peer: _PeerState, ack: int) -> None:
        advanced = False
        while peer.window and seq_diff(peer.window[0][0], ack) < 0:
            peer.window.popleft()
            peer.unacked -= 1
            advanced = True
        if advanced:
            peer.snd_base = ack
            peer.retries = 0
            self._cancel_timer(peer)
            if peer.window:
                self._arm_timer(dst, peer)
            self._drain_backlog(dst, peer)

    def _drain_backlog(self, dst: MacAddress, peer: _PeerState) -> None:
        while peer.backlog and peer.unacked < self.window_size:
            frame = peer.backlog.popleft()
            self._send_data(dst, peer, frame)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------

    def _arm_timer(self, dst: MacAddress, peer: _PeerState) -> None:
        self._cancel_timer(peer)
        peer.timer = self.sim.after(
            self.rto_ns, lambda: self._on_timeout(dst, peer), "rll:rto"
        )

    def _cancel_timer(self, peer: _PeerState) -> None:
        if peer.timer is not None:
            peer.timer.cancel()
            peer.timer = None

    def _on_timeout(self, dst: MacAddress, peer: _PeerState) -> None:
        peer.timer = None
        if not peer.window:
            return
        peer.retries += 1
        if peer.retries > self.max_retries:
            # The peer is gone (e.g. a FAIL fault): abandon its traffic so
            # the simulation can quiesce instead of retrying forever.
            self.abandoned_frames += len(peer.window) + len(peer.backlog)
            if self._m_abandoned is not None:
                self._m_abandoned.inc(len(peer.window) + len(peer.backlog))
            peer.window.clear()
            peer.backlog.clear()
            peer.unacked = 0
            peer.retries = 0
            return
        # Go-back-N: resend everything outstanding, oldest first.
        for seq, frame in peer.window:
            self.retransmissions += 1
            if self._m_rtx is not None:
                self._m_rtx.inc()
            self._emit_data(dst, frame, seq, peer.rcv_next)
        self._arm_timer(dst, peer)

    def __repr__(self) -> str:
        return (
            f"RllLayer(window={self.window_size}, peers={len(self._peers)}, "
            f"rtx={self.retransmissions})"
        )
