"""Reliable Link Layer: sliding-window reliability below the engine.

Masks MAC-level bit errors so the only packet losses a protocol under test
ever sees are the ones the fault script injected (paper §3.3).
"""

from .frames import KIND_ACK, KIND_DATA, RllFrame, SEQ_MOD, seq_add, seq_diff
from .layer import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_RTO_NS,
    DEFAULT_WINDOW,
    RllLayer,
)

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RTO_NS",
    "DEFAULT_WINDOW",
    "KIND_ACK",
    "KIND_DATA",
    "RllFrame",
    "RllLayer",
    "SEQ_MOD",
    "seq_add",
    "seq_diff",
]
