"""Command-line interface: inspect, lint and sweep FSL scripts.

The paper's front-end accepts scripts "through a command line interface"
(§5.1).  This module provides that surface for the reproduction::

    python -m repro check  scenario.fsl            # parse + compile
    python -m repro tables scenario.fsl            # dump the six tables
    python -m repro lint   scenario.fsl --strict   # static analysis
    python -m repro sweep  scenario.fsl --seeds 0,1,2 --workers 4
    python -m repro worker --port 7777 --slots 4      # serve a fleet slot

``sweep`` runs a whole campaign — the Cartesian product of seeds, media
and control-loss rates — on the testbed reconstructed from the script's
own node table, compiled once and fanned out over a process pool with a
deterministic merge (docs/SWEEP.md).  With ``--backend tcp --hosts
host:port,...`` the same campaign dispatches to a fleet of ``repro
worker`` processes instead, byte-identical rows included.  Bespoke
topologies and workloads remain Python code by design (see examples/).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.fsl import compile_text, parse_script
from .core.lint import Severity, lint_program
from .core.tables import CompiledProgram, CounterKind, TermMode, VarRef
from .errors import FslError, ReproError
from .sim import format_time


def _load(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------


def render_summary(program: CompiledProgram) -> str:
    sizes = program.table_sizes()
    timeout = (
        format_time(program.timeout_ns) if program.timeout_ns else "none (quiescence)"
    )
    lines = [
        f"scenario  : {program.scenario_name}",
        f"timeout   : {timeout}",
        "tables    : "
        + ", ".join(f"{name}={count}" for name, count in sizes.items()),
        f"nodes     : {', '.join(program.nodes.names())}",
    ]
    return "\n".join(lines)


def render_tables(program: CompiledProgram) -> str:
    lines = [render_summary(program), "", "FILTER TABLE (scan order)"]
    for position, entry in enumerate(program.filters.entries):
        tuples = ", ".join(
            f"({t.offset} {t.nbytes}"
            + (f" {t.mask:#x}" if t.mask is not None else "")
            + (
                f" {t.pattern.name}"
                if isinstance(t.pattern, VarRef)
                else f" {t.pattern:#x}"
            )
            + ")"
            for t in entry.tuples
        )
        lines.append(f"  [{position}] {entry.name}: {tuples}")
    lines.append("")
    lines.append("NODE TABLE")
    for entry in program.nodes.entries:
        lines.append(f"  {entry.name}: {entry.mac} {entry.ip}")
    lines.append("")
    lines.append("COUNTER TABLE")
    for counter in program.counters:
        if counter.kind is CounterKind.EVENT:
            spec = (
                f"({counter.pkt_type}, {counter.src_node} -> "
                f"{counter.dst_node}, {counter.direction.value})"
            )
            armed = "armed" if counter.initially_enabled else "disabled at start"
            detail = f"{spec}, home {counter.home_node}, {armed}"
        else:
            detail = f"local variable on {counter.home_node}"
        subs = (
            f", mirrored to {sorted(counter.mirror_subscribers)}"
            if counter.mirror_subscribers
            else ""
        )
        lines.append(f"  [{counter.counter_id}] {counter.name}: {detail}{subs}")
    lines.append("")
    lines.append("TERM TABLE")
    for term in program.terms:
        def operand(op):
            if op.is_counter:
                return program.counters[op.counter_id].name
            return str(op.constant)

        mode = (
            f"evaluated at {term.home_node}, status to "
            f"{sorted(n for n in term.consumer_nodes if n != term.home_node) or 'local'}"
            if term.mode is TermMode.LOCAL_BROADCAST
            else f"mirrored values, evaluated at {sorted(term.consumer_nodes)}"
        )
        lines.append(
            f"  [{term.term_id}] {operand(term.lhs)} {term.op.value} "
            f"{operand(term.rhs)}  ({mode})"
        )
    lines.append("")
    lines.append("CONDITION / ACTION TABLES")
    for condition in program.conditions:
        kind = "TRUE rule" if condition.is_true_rule else f"line {condition.line}"
        lines.append(f"  [{condition.condition_id}] ({kind})")
        for node, action_id in condition.triggers:
            action = program.actions[action_id]
            extras = []
            if action.counter_id is not None:
                extras.append(program.counters[action.counter_id].name)
                if action.kind.value in ("INCR_CNTR", "DECR_CNTR", "ASSIGN_CNTR"):
                    extras.append(str(action.value))
            if action.is_packet_fault:
                extras.append(
                    f"{action.pkt_type}, {action.src_node} -> {action.dst_node}, "
                    f"{action.direction.value}"
                )
                if action.kind.value == "DELAY":
                    extras.append(format_time(action.delay_ns))
            detail = f"({', '.join(extras)})" if extras else ""
            lines.append(
                f"      -> [{action_id}] {action.kind.value}{detail} @ {node}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_check(args: argparse.Namespace, out) -> int:
    program = compile_text(_load(args.script), args.scenario)
    print(render_summary(program), file=out)
    return 0


def cmd_tables(args: argparse.Namespace, out) -> int:
    program = compile_text(_load(args.script), args.scenario)
    print(render_tables(program), file=out)
    return 0


def cmd_lint(args: argparse.Namespace, out) -> int:
    program = compile_text(_load(args.script), args.scenario)
    findings = lint_program(program)
    for finding in findings:
        print(finding.render(), file=out)
    if not findings:
        print("clean: no findings", file=out)
        return 0
    if args.strict and any(
        not finding.severity < Severity.WARNING for finding in findings
    ):
        return 1
    return 0


def cmd_scenarios(args: argparse.Namespace, out) -> int:
    script = parse_script(_load(args.script))
    for scenario in script.scenarios:
        timeout = format_time(scenario.timeout_ns) if scenario.timeout_ns else "-"
        print(
            f"{scenario.name}  (counters={len(scenario.counters)}, "
            f"rules={len(scenario.rules)}, timeout={timeout})",
            file=out,
        )
    return 0


def cmd_sweep(args: argparse.Namespace, out) -> int:
    import json

    from .sim import NS_PER_SEC
    from .sweep import SweepSpec, run_script_task, run_sweep

    script = _load(args.script)
    seeds = [int(s) for s in args.seeds.split(",") if s != ""]
    media = [m for m in args.media.split(",") if m != ""]
    losses = (
        [float(x) for x in args.loss.split(",") if x != ""] if args.loss else [0.0]
    )
    if not seeds or not media or not losses:
        raise ReproError("sweep needs at least one seed, medium and loss rate")
    spec = SweepSpec(args.script, base_seed=seeds[0])
    for seed in seeds:
        for medium in media:
            for rate in losses:
                label = f"seed={seed},medium={medium}"
                if args.loss:
                    label += f",loss={rate:g}"
                spec.add(
                    label,
                    run_script_task,
                    script=script,
                    scenario=args.scenario,
                    seed=seed,
                    medium=medium,
                    control_loss={args.loss_node: rate} if rate else {},
                    rll=args.rll,
                    rether=args.rether,
                    workload={"kind": args.workload},
                    max_time_ns=int(args.max_time * NS_PER_SEC),
                )
    journal, resume = args.journal, False
    if args.resume:
        if journal is not None and journal != args.resume:
            raise ReproError(
                "--journal and --resume point at different files; "
                "--resume PATH already names the journal"
            )
        journal, resume = args.resume, True
    secret = None
    if args.secret_file is not None:
        from .sweep import resolve_secret

        secret = resolve_secret(secret_file=args.secret_file)
    extra = {} if args.retries is None else {"retries": args.retries}
    outcome = run_sweep(
        spec,
        backend=args.backend,
        workers=args.workers,
        fail_fast=args.fail_fast,
        journal=journal,
        resume=resume,
        cache_dir=args.cache_dir,
        task_timeout=args.task_timeout,
        hosts=args.hosts,
        secret=secret,
        **extra,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "aborted": outcome.aborted,
                    "backend": outcome.backend,
                    "cached_rows": outcome.cached_rows,
                    "fleet": outcome.fleet,
                    "interrupted": outcome.interrupted,
                    "passed": outcome.passed,
                    "resumed": outcome.resumed,
                    "rows": [row.canonical() for row in outcome.rows],
                    "timed_out": outcome.timed_out,
                    "workers": outcome.workers,
                },
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    else:
        print(outcome.render(), file=out)
    return 0 if outcome.passed else 1


def cmd_worker(args: argparse.Namespace, out) -> int:
    import signal as _signal

    from .sweep.remote import WorkerServer

    server = WorkerServer(
        host=args.host,
        port=args.port,
        slots=args.slots,
        secret_file=args.secret_file,
        max_idle=args.max_idle,
    )
    # The parent discovers an ephemeral port (--port 0) from this line;
    # tests and CI scrape it, so the format is part of the interface.
    print(f"LISTENING {server.host}:{server.port}", file=out)
    try:
        out.flush()
    except (AttributeError, OSError):
        pass

    def _shutdown(signum, frame):  # noqa: ANN001 — signal handler signature
        server.stop()

    for signame in ("SIGTERM", "SIGINT"):
        if hasattr(_signal, signame):
            try:
                _signal.signal(getattr(_signal, signame), _shutdown)
            except (ValueError, OSError):
                pass  # non-main thread: rely on KeyboardInterrupt
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    note = " (idle limit reached)" if server.idle_exit else ""
    print(
        f"worker stopped after {server.campaigns_served} campaign(s){note}",
        file=out,
    )
    return 0


def cmd_analyze(args: argparse.Namespace, out) -> int:
    import json

    from .analysis import render_journeys, render_metrics
    from .sim import NS_PER_SEC
    from .sweep import SweepSpec, run_script_task, run_sweep

    if args.row:
        with open(args.row, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        # Accept either a bare payload or a canonical sweep row.
        if "payload" in payload and isinstance(payload["payload"], dict):
            payload = payload["payload"]
    else:
        if not args.script:
            raise ReproError("analyze needs a script (or --row FILE)")
        spec = SweepSpec(args.script, base_seed=args.seed)
        spec.add(
            "analyze",
            run_script_task,
            script=_load(args.script),
            scenario=args.scenario,
            seed=args.seed,
            medium=args.medium,
            rll=args.rll,
            rether=args.rether,
            capture=True,
            audit=True,
            metrics=True,
            workload={"kind": args.workload},
            max_time_ns=int(args.max_time * NS_PER_SEC),
        )
        outcome = run_sweep(spec, backend="serial")
        row = outcome.rows[0]
        if not row.ok:
            print(f"error: scenario run failed: {row.error}", file=out)
            return 2
        payload = row.payload
    journeys = payload.get("journeys", [])
    metrics = payload.get("metrics", {})
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            for journey in journeys:
                handle.write(json.dumps(journey, sort_keys=True) + "\n")
    if args.json:
        print(
            json.dumps(
                {"journeys": journeys, "metrics": metrics},
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    else:
        verdict = payload.get("passed")
        print(
            f"scenario {payload.get('scenario')!r}: "
            f"{'PASS' if verdict else 'FAIL' if verdict is False else '?'} "
            f"({payload.get('end_reason')}), "
            f"{len(journeys)} frame journeys",
            file=out,
        )
        dropped = payload.get("trace_records_dropped") or 0
        if dropped:
            print(
                f"WARNING: capture saturated, {dropped} frames dropped — "
                f"journeys may be incomplete",
                file=out,
            )
        print("", file=out)
        rendered = render_journeys(
            journeys, limit=args.journeys, faults_only=not args.all
        )
        if rendered:
            print(rendered, file=out)
        if metrics:
            print("", file=out)
            print("metrics:", file=out)
            print(render_metrics(metrics), file=out)
    if args.check and (not journeys or not metrics):
        print("error: --check: expected non-empty journeys and metrics", file=out)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VirtualWire reproduction: FSL script tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and compile a script")
    check.add_argument("script")
    check.add_argument("--scenario", default=None)
    check.set_defaults(handler=cmd_check)

    tables = sub.add_parser("tables", help="dump the compiled six tables")
    tables.add_argument("script")
    tables.add_argument("--scenario", default=None)
    tables.set_defaults(handler=cmd_tables)

    lint = sub.add_parser("lint", help="static analysis of a script")
    lint.add_argument("script")
    lint.add_argument("--scenario", default=None)
    lint.add_argument(
        "--strict", action="store_true", help="exit 1 on warnings"
    )
    lint.set_defaults(handler=cmd_lint)

    scenarios = sub.add_parser("scenarios", help="list a script's scenarios")
    scenarios.add_argument("script")
    scenarios.set_defaults(handler=cmd_scenarios)

    sweep = sub.add_parser(
        "sweep",
        help="run a campaign: seeds x media x loss rates, parallel by default",
    )
    sweep.add_argument("script")
    sweep.add_argument("--scenario", default=None)
    sweep.add_argument(
        "--seeds", default="0", help="comma-separated simulator seeds (default 0)"
    )
    sweep.add_argument(
        "--media",
        default="switch",
        help="comma-separated media: switch, hub, bus, link (default switch)",
    )
    sweep.add_argument(
        "--loss",
        default=None,
        help="comma-separated control-frame loss rates (e.g. 0,0.05,0.2)",
    )
    sweep.add_argument(
        "--loss-node",
        default="node2",
        help="node whose control channel the --loss rates degrade",
    )
    sweep.add_argument(
        "--workload",
        default="tcp_bulk",
        choices=("tcp_bulk", "tcp_feed", "udp_probes", "none"),
        help="traffic driven during each run (default tcp_bulk)",
    )
    sweep.add_argument(
        "--rll", action="store_true", help="enable the Reliable Link Layer"
    )
    sweep.add_argument(
        "--rether",
        action="store_true",
        help="install a Rether token ring over all scenario nodes",
    )
    sweep.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop the campaign at the first failed run",
    )
    sweep.add_argument(
        "--backend",
        default=None,
        help="execution backend by registry name (serial, parallel, tcp, "
        "or any registered SweepExecutor; default: REPRO_SWEEP_BACKEND "
        "or parallel)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, help="process-pool size (default: cores, max 4)"
    )
    sweep.add_argument(
        "--hosts",
        default=None,
        metavar="HOST:PORT,...",
        help="worker fleet for the tcp backend, e.g. "
        "127.0.0.1:7777,10.0.0.2:7777 (default: REPRO_SWEEP_HOSTS)",
    )
    sweep.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the fleet's pre-shared authentication secret "
        "for the tcp backend (default: REPRO_SWEEP_SECRET); both peers "
        "must hold the same secret",
    )
    sweep.add_argument(
        "--max-time",
        type=float,
        default=60.0,
        help="virtual-time cap per run, in seconds (default 60)",
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="print the campaign as JSON: canonical rows plus "
        "resumed/cached_rows/timed_out/aborted accounting",
    )
    sweep.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append every completed row to a crash-safe JSONL journal "
        "(CRC-checked, fsync'd per row; see docs/SWEEP.md)",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume an interrupted campaign from its journal at PATH "
        "(implies --journal PATH); only missing cells execute",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache: clean cells replay from DIR, "
        "only dirty cells execute",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-task wall-clock deadline in seconds; a hung task is "
        "retried with backoff, then recorded as a TIMEOUT row",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-queue budget per cell after a worker crash or connection "
        "loss before the cell becomes a deterministic FAILED row "
        "(default 1; rejoining workers refund their own losses)",
    )
    sweep.set_defaults(handler=cmd_sweep)

    worker = sub.add_parser(
        "worker",
        help="serve sweep tasks to a remote parent: N local process slots "
        "over the TCP job protocol (see docs/SWEEP.md)",
    )
    worker.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to listen on (default 127.0.0.1; the protocol "
        "trusts its peers — bind wider interfaces only on networks you "
        "control)",
    )
    worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to listen on (default 0: pick an ephemeral port and "
        "print it as 'LISTENING host:port')",
    )
    worker.add_argument(
        "--slots",
        type=int,
        default=None,
        help="local process slots served (default: cores, max 4, or "
        "REPRO_SWEEP_WORKERS)",
    )
    worker.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the fleet's pre-shared authentication secret "
        "(default: REPRO_SWEEP_SECRET); parents that cannot prove it are "
        "refused before any task is accepted",
    )
    worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit when no parent has connected for this long, so "
        "orphaned fleet processes don't leak on shared hosts",
    )
    worker.set_defaults(handler=cmd_worker)

    analyze = sub.add_parser(
        "analyze",
        help="run a scenario with full telemetry and render the FAE's "
        "frame journeys and per-node metrics",
    )
    analyze.add_argument("script", nargs="?", default=None)
    analyze.add_argument("--scenario", default=None)
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument(
        "--medium", default="switch", choices=("switch", "hub", "bus", "link")
    )
    analyze.add_argument(
        "--workload",
        default="tcp_bulk",
        choices=("tcp_bulk", "tcp_feed", "udp_probes", "none"),
    )
    analyze.add_argument(
        "--rll", action="store_true", help="enable the Reliable Link Layer"
    )
    analyze.add_argument(
        "--rether", action="store_true", help="install a Rether token ring"
    )
    analyze.add_argument(
        "--max-time",
        type=float,
        default=60.0,
        help="virtual-time cap, in seconds (default 60)",
    )
    analyze.add_argument(
        "--journeys",
        type=int,
        default=10,
        help="max journeys to render (default 10)",
    )
    analyze.add_argument(
        "--all",
        action="store_true",
        help="render every journey, not just faulted/retransmitted ones",
    )
    analyze.add_argument(
        "--row",
        default=None,
        help="render a saved sweep row (JSON file) instead of running",
    )
    analyze.add_argument(
        "--json", action="store_true", help="print journeys + metrics as JSON"
    )
    analyze.add_argument(
        "--jsonl", default=None, help="also dump one journey per line to FILE"
    )
    analyze.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless journeys and metrics are non-empty (CI smoke)",
    )
    analyze.set_defaults(handler=cmd_analyze)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except BrokenPipeError:
        return 0  # the consumer (e.g. `| head`) closed the pipe: fine
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    except (FslError, ReproError) as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())
