"""Command-line interface: inspect and lint FSL scripts.

The paper's front-end accepts scripts "through a command line interface"
(§5.1).  This module provides that surface for the reproduction::

    python -m repro check  scenario.fsl            # parse + compile
    python -m repro tables scenario.fsl            # dump the six tables
    python -m repro lint   scenario.fsl --strict   # static analysis

Running scenarios needs a testbed, which is Python code by design (see
examples/); the CLI covers the script-authoring loop.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.fsl import compile_text, parse_script
from .core.lint import Severity, lint_program
from .core.tables import CompiledProgram, CounterKind, TermMode, VarRef
from .errors import FslError, ReproError
from .sim import format_time


def _load(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------


def render_summary(program: CompiledProgram) -> str:
    sizes = program.table_sizes()
    timeout = (
        format_time(program.timeout_ns) if program.timeout_ns else "none (quiescence)"
    )
    lines = [
        f"scenario  : {program.scenario_name}",
        f"timeout   : {timeout}",
        "tables    : "
        + ", ".join(f"{name}={count}" for name, count in sizes.items()),
        f"nodes     : {', '.join(program.nodes.names())}",
    ]
    return "\n".join(lines)


def render_tables(program: CompiledProgram) -> str:
    lines = [render_summary(program), "", "FILTER TABLE (scan order)"]
    for position, entry in enumerate(program.filters.entries):
        tuples = ", ".join(
            f"({t.offset} {t.nbytes}"
            + (f" {t.mask:#x}" if t.mask is not None else "")
            + (
                f" {t.pattern.name}"
                if isinstance(t.pattern, VarRef)
                else f" {t.pattern:#x}"
            )
            + ")"
            for t in entry.tuples
        )
        lines.append(f"  [{position}] {entry.name}: {tuples}")
    lines.append("")
    lines.append("NODE TABLE")
    for entry in program.nodes.entries:
        lines.append(f"  {entry.name}: {entry.mac} {entry.ip}")
    lines.append("")
    lines.append("COUNTER TABLE")
    for counter in program.counters:
        if counter.kind is CounterKind.EVENT:
            spec = (
                f"({counter.pkt_type}, {counter.src_node} -> "
                f"{counter.dst_node}, {counter.direction.value})"
            )
            armed = "armed" if counter.initially_enabled else "disabled at start"
            detail = f"{spec}, home {counter.home_node}, {armed}"
        else:
            detail = f"local variable on {counter.home_node}"
        subs = (
            f", mirrored to {sorted(counter.mirror_subscribers)}"
            if counter.mirror_subscribers
            else ""
        )
        lines.append(f"  [{counter.counter_id}] {counter.name}: {detail}{subs}")
    lines.append("")
    lines.append("TERM TABLE")
    for term in program.terms:
        def operand(op):
            if op.is_counter:
                return program.counters[op.counter_id].name
            return str(op.constant)

        mode = (
            f"evaluated at {term.home_node}, status to "
            f"{sorted(n for n in term.consumer_nodes if n != term.home_node) or 'local'}"
            if term.mode is TermMode.LOCAL_BROADCAST
            else f"mirrored values, evaluated at {sorted(term.consumer_nodes)}"
        )
        lines.append(
            f"  [{term.term_id}] {operand(term.lhs)} {term.op.value} "
            f"{operand(term.rhs)}  ({mode})"
        )
    lines.append("")
    lines.append("CONDITION / ACTION TABLES")
    for condition in program.conditions:
        kind = "TRUE rule" if condition.is_true_rule else f"line {condition.line}"
        lines.append(f"  [{condition.condition_id}] ({kind})")
        for node, action_id in condition.triggers:
            action = program.actions[action_id]
            extras = []
            if action.counter_id is not None:
                extras.append(program.counters[action.counter_id].name)
                if action.kind.value in ("INCR_CNTR", "DECR_CNTR", "ASSIGN_CNTR"):
                    extras.append(str(action.value))
            if action.is_packet_fault:
                extras.append(
                    f"{action.pkt_type}, {action.src_node} -> {action.dst_node}, "
                    f"{action.direction.value}"
                )
                if action.kind.value == "DELAY":
                    extras.append(format_time(action.delay_ns))
            detail = f"({', '.join(extras)})" if extras else ""
            lines.append(
                f"      -> [{action_id}] {action.kind.value}{detail} @ {node}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_check(args: argparse.Namespace, out) -> int:
    program = compile_text(_load(args.script), args.scenario)
    print(render_summary(program), file=out)
    return 0


def cmd_tables(args: argparse.Namespace, out) -> int:
    program = compile_text(_load(args.script), args.scenario)
    print(render_tables(program), file=out)
    return 0


def cmd_lint(args: argparse.Namespace, out) -> int:
    program = compile_text(_load(args.script), args.scenario)
    findings = lint_program(program)
    for finding in findings:
        print(finding.render(), file=out)
    if not findings:
        print("clean: no findings", file=out)
        return 0
    if args.strict and any(
        not finding.severity < Severity.WARNING for finding in findings
    ):
        return 1
    return 0


def cmd_scenarios(args: argparse.Namespace, out) -> int:
    script = parse_script(_load(args.script))
    for scenario in script.scenarios:
        timeout = format_time(scenario.timeout_ns) if scenario.timeout_ns else "-"
        print(
            f"{scenario.name}  (counters={len(scenario.counters)}, "
            f"rules={len(scenario.rules)}, timeout={timeout})",
            file=out,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VirtualWire reproduction: FSL script tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and compile a script")
    check.add_argument("script")
    check.add_argument("--scenario", default=None)
    check.set_defaults(handler=cmd_check)

    tables = sub.add_parser("tables", help="dump the compiled six tables")
    tables.add_argument("script")
    tables.add_argument("--scenario", default=None)
    tables.set_defaults(handler=cmd_tables)

    lint = sub.add_parser("lint", help="static analysis of a script")
    lint.add_argument("script")
    lint.add_argument("--scenario", default=None)
    lint.add_argument(
        "--strict", action="store_true", help="exit 1 on warnings"
    )
    lint.set_defaults(handler=cmd_lint)

    scenarios = sub.add_parser("scenarios", help="list a script's scenarios")
    scenarios.add_argument("script")
    scenarios.set_defaults(handler=cmd_scenarios)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except BrokenPipeError:
        return 0  # the consumer (e.g. `| head`) closed the pipe: fine
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    except (FslError, ReproError) as exc:
        print(f"error: {exc}", file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())
