"""Fault Analysis telemetry: metrics, frame journeys, report enrichment.

The analysis layer of the paper's FIE/FAE pair (docs/OBSERVABILITY.md):

* :class:`MetricsRegistry` — per-node counters/gauges/histograms, off by
  default, fed by instrumented stack layers;
* :func:`correlate_journeys` — cross-node frame timelines joined from
  trace captures and audit decisions by flow-invariant digest;
* :func:`merge_snapshots` — associative aggregation of metric snapshots
  across sweep rows.
"""

from .journey import (
    FrameJourney,
    correlate_journeys,
    frame_digest,
    render_journeys,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NodeMetrics,
    merge_snapshots,
    merge_values,
    render_metrics,
)

__all__ = [
    "Counter",
    "FrameJourney",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeMetrics",
    "correlate_journeys",
    "frame_digest",
    "merge_snapshots",
    "merge_values",
    "render_journeys",
    "render_metrics",
]
