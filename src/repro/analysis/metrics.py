"""Per-node, per-layer metrics for the Fault Analysis Engine.

The paper's FAE is an *analysis* engine: it does not merely inject faults,
it quantifies how the protocol under test reacted (§1, §3).  This module
supplies the quantitative half of that story — a registry of counters,
gauges and virtual-time histograms that the instrumented layers (driver,
TCP, RLL, Rether, the engine itself) feed while a scenario runs.

Design rules, shared with :class:`repro.core.audit.AuditLog`:

* **Disabled by default, free when disabled.**  Every instrumented object
  pre-resolves its metric handles to ``None`` unless the testbed was built
  with ``install_virtualwire(metrics=True)``; the hot path is a single
  ``if self._m_x is not None`` check.
* **Canonical snapshots.**  :meth:`MetricsRegistry.snapshot` returns plain
  builtins with every mapping key sorted, so snapshots ship verbatim in
  sweep payloads and serialise byte-identically on any backend.
* **Associative merging.**  Sweep campaigns aggregate per-row snapshots
  with :func:`merge_snapshots`; the merge is associative (and commutative
  for counters/histograms), so the fold order — serial, pooled, sharded —
  cannot change the aggregate.

Histograms bucket by bit length (bucket ``i`` holds values ``v`` with
``v.bit_length() == i``, i.e. ``[2**(i-1), 2**i)``), the right shape for
virtual-time durations spanning nanoseconds to minutes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

MetricValue = Union["Counter", "Gauge", "Histogram"]


class Counter:
    """A monotonically increasing count; snapshots to a plain int."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A sampled level (queue depth, cwnd) with min/max/last tracking.

    Merging two gauge snapshots keeps ``min`` of mins, ``max`` of maxes,
    sums ``samples`` and takes ``max`` of lasts — the only last-combiner
    that is associative *and* commutative, documented so aggregate readers
    know ``last`` means "largest final level observed by any row".
    """

    __slots__ = ("last", "min", "max", "samples")

    def __init__(self) -> None:
        self.last = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.samples = 0

    def set(self, value: int) -> None:
        self.last = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, int]:
        return {
            "type": "gauge",
            "last": self.last,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "samples": self.samples,
        }


class Histogram:
    """Log2-bucketed distribution of non-negative integer samples."""

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        if value < 0:
            value = 0
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = value.bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "buckets": {
                str(index): self.buckets[index] for index in sorted(self.buckets)
            },
        }


class NodeMetrics:
    """One node's metric namespace; handles are get-or-create."""

    def __init__(self, node: str) -> None:
        self.node = node
        self._metrics: Dict[str, MetricValue] = {}

    def _get(self, layer: str, name: str, factory) -> MetricValue:
        key = f"{layer}.{name}"
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {key!r} on {self.node} already registered as "
                f"{type(metric).__name__}, not {factory.__name__}"
            )
        return metric

    def counter(self, layer: str, name: str) -> Counter:
        return self._get(layer, name, Counter)

    def gauge(self, layer: str, name: str) -> Gauge:
        return self._get(layer, name, Gauge)

    def histogram(self, layer: str, name: str) -> Histogram:
        return self._get(layer, name, Histogram)

    def snapshot(self) -> Dict[str, object]:
        return {key: self._metrics[key].snapshot() for key in sorted(self._metrics)}


class MetricsRegistry:
    """The testbed-wide registry: one :class:`NodeMetrics` per node."""

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeMetrics] = {}

    def node(self, name: str) -> NodeMetrics:
        metrics = self._nodes.get(name)
        if metrics is None:
            metrics = NodeMetrics(name)
            self._nodes[name] = metrics
        return metrics

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Canonical, JSON-able dump: ``{node: {layer.name: value}}``."""
        return {
            name: self._nodes[name].snapshot() for name in sorted(self._nodes)
        }


# ---------------------------------------------------------------------------
# Snapshot aggregation (sweep rows)
# ---------------------------------------------------------------------------


def merge_values(a: object, b: object) -> object:
    """Merge two snapshot values of the same metric (associative)."""
    if isinstance(a, int) and isinstance(b, int):
        return a + b  # counters
    if not (isinstance(a, dict) and isinstance(b, dict)):
        raise TypeError(f"cannot merge metric values {a!r} and {b!r}")
    kind_a, kind_b = a.get("type"), b.get("type")
    if kind_a != kind_b:
        raise TypeError(f"cannot merge metric kinds {kind_a!r} and {kind_b!r}")
    if kind_a == "gauge":
        return {
            "type": "gauge",
            "last": max(a["last"], b["last"]),
            "min": _merge_extreme(a, b, "min", "samples", min),
            "max": _merge_extreme(a, b, "max", "samples", max),
            "samples": a["samples"] + b["samples"],
        }
    if kind_a == "histogram":
        buckets: Dict[str, int] = dict(a["buckets"])
        for index, count in b["buckets"].items():
            buckets[index] = buckets.get(index, 0) + count
        return {
            "type": "histogram",
            "count": a["count"] + b["count"],
            "sum": a["sum"] + b["sum"],
            "min": _merge_extreme(a, b, "min", "count", min),
            "max": _merge_extreme(a, b, "max", "count", max),
            "buckets": {key: buckets[key] for key in sorted(buckets, key=int)},
        }
    raise TypeError(f"unknown metric kind {kind_a!r}")


def _merge_extreme(a: Dict, b: Dict, field: str, weight: str, pick) -> int:
    """min/max of two snapshots, ignoring the empty side (weight == 0)."""
    if a[weight] == 0:
        return b[field]
    if b[weight] == 0:
        return a[field]
    return pick(a[field], b[field])


def merge_snapshots(
    snapshots: List[Dict[str, Dict[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Fold per-row registry snapshots into one aggregate.

    Accepts the ``{node: {metric: value}}`` shape produced by
    :meth:`MetricsRegistry.snapshot`; nodes and metrics missing from some
    rows merge as identity.  The result is canonical (sorted keys).
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for node, metrics in snapshot.items():
            into = merged.setdefault(node, {})
            for key, value in metrics.items():
                if key in into:
                    into[key] = merge_values(into[key], value)
                else:
                    into[key] = value
    return {
        node: {key: merged[node][key] for key in sorted(merged[node])}
        for node in sorted(merged)
    }


def render_metrics(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Human-readable table of a registry snapshot (the CLI's view)."""
    lines: List[str] = []
    for node in sorted(snapshot):
        lines.append(f"{node}:")
        metrics = snapshot[node]
        for key in sorted(metrics):
            value = metrics[key]
            if isinstance(value, int):
                lines.append(f"  {key:<32} {value}")
            elif value.get("type") == "gauge":
                lines.append(
                    f"  {key:<32} last={value['last']} min={value['min']} "
                    f"max={value['max']} samples={value['samples']}"
                )
            else:
                mean = value["sum"] // value["count"] if value["count"] else 0
                lines.append(
                    f"  {key:<32} count={value['count']} mean={mean} "
                    f"min={value['min']} max={value['max']}"
                )
    return "\n".join(lines)
