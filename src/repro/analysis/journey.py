"""Cross-node frame journeys: the FAE's distributed packet narrative.

The paper motivates VirtualWire by how tedious it is to reconstruct, from
per-host tcpdump output, what actually happened to one packet: sent at A,
silently dropped by a fault at B, retransmitted at A two RTOs later (§1).
This module performs that reconstruction automatically.  Every tap capture
(:class:`repro.trace.TraceRecorder`) and every fault decision in the audit
trail (:class:`repro.core.audit.AuditLog`) is keyed by a **flow-invariant
frame digest**; grouping by digest joins the observations of every node
into one ordered timeline per logical frame — including retransmissions,
which carry the same digest as the original by construction.

Digest invariance: the IP stack stamps a fresh ``ident`` into every
transmission and recomputes checksums, so raw bytes differ between a
segment and its retransmission.  For TCP frames the digest therefore
covers only the fields that identify the logical segment — MACs, IPs,
ports, ``seq``, flags and payload — and includes ``ack`` only for pure
ACKs (no payload, no SYN/FIN/RST), whose ack number *is* their identity.
Non-TCP frames hash their raw bytes: each UDP datagram already carries a
unique ident, and Rether/control frames are never retransmitted verbatim
at the IP layer.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from ..net.packet import FrameView
from ..sim import format_time

#: TCP flag bits relevant to pure-ACK detection.
_FLAG_SYN = 0x02
_FLAG_FIN = 0x01
_FLAG_RST = 0x04

_DIGEST_BYTES = 8


def frame_digest(data: bytes) -> str:
    """A short hex digest identifying the *logical* frame.

    Retransmissions of the same TCP segment produce the same digest;
    distinct segments (and distinct UDP datagrams) produce distinct ones.
    """
    view = FrameView(data)
    tcp = view.tcp
    if tcp is not None and view.ip is not None and view.eth is not None:
        pure_ack = not tcp.payload and not (tcp.flags & (_FLAG_SYN | _FLAG_FIN | _FLAG_RST))
        material = b"|".join(
            (
                b"tcp",
                bytes(view.eth.src.packed),
                bytes(view.eth.dst.packed),
                bytes(view.ip.src.packed),
                bytes(view.ip.dst.packed),
                tcp.src_port.to_bytes(2, "big"),
                tcp.dst_port.to_bytes(2, "big"),
                tcp.seq.to_bytes(4, "big"),
                (tcp.ack if pure_ack else 0).to_bytes(4, "big"),
                (tcp.flags & 0xFF).to_bytes(1, "big"),
                tcp.payload,
            )
        )
    else:
        material = b"raw|" + bytes(data)
    return hashlib.blake2b(material, digest_size=_DIGEST_BYTES).hexdigest()


class FrameJourney:
    """One logical frame's ordered, cross-node timeline."""

    def __init__(self, digest: str, summary: str) -> None:
        self.digest = digest
        #: tcpdump-style one-liner of the first sighting.
        self.summary = summary
        #: tap sightings: (time_ns, node, "send"|"recv").
        self.hops: List[tuple] = []
        #: audit decisions: (time_ns, node, kind, detail).
        self.events: List[tuple] = []

    @property
    def first_ns(self) -> int:
        times = [h[0] for h in self.hops] + [e[0] for e in self.events]
        return min(times) if times else 0

    @property
    def last_ns(self) -> int:
        times = [h[0] for h in self.hops] + [e[0] for e in self.events]
        return max(times) if times else 0

    @property
    def retransmits(self) -> int:
        """Send sightings beyond the first at the originating node."""
        if not self.hops:
            return 0
        origin = next((h[1] for h in self.hops if h[2] == "send"), None)
        if origin is None:
            return 0
        sends = sum(1 for h in self.hops if h[2] == "send" and h[1] == origin)
        return max(0, sends - 1)

    @property
    def faults(self) -> List[tuple]:
        return [e for e in self.events if e[2] == "fault"]

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-able projection (sweep payload shape)."""
        return {
            "digest": self.digest,
            "summary": self.summary,
            "first_ns": self.first_ns,
            "last_ns": self.last_ns,
            "retransmits": self.retransmits,
            "hops": [
                {"time_ns": t, "node": node, "direction": direction}
                for t, node, direction in self.hops
            ],
            "events": [
                {"time_ns": t, "node": node, "kind": kind, "detail": detail}
                for t, node, kind, detail in self.events
            ],
        }

    def render(self) -> str:
        """Multi-line timeline: hops and fault decisions interleaved."""
        entries = [
            (t, 0, f"{format_time(t):>14}  {node:<10} {direction:<5}")
            for t, node, direction in self.hops
        ]
        entries.extend(
            (t, 1, f"{format_time(t):>14}  {node:<10} {kind}: {detail}")
            for t, node, kind, detail in self.events
        )
        lines = [f"journey {self.digest}  {self.summary}"]
        if self.retransmits:
            lines[0] += f"  ({self.retransmits} retransmit{'s' if self.retransmits != 1 else ''})"
        lines.extend(text for _, _, text in sorted(entries, key=lambda e: (e[0], e[1], e[2])))
        return "\n".join(lines)


def correlate_journeys(recorder, audit_log=None) -> List["FrameJourney"]:
    """Join tap captures (and audit decisions) into per-frame journeys.

    *recorder* is a :class:`repro.trace.TraceRecorder`; *audit_log*, when
    given, contributes every event that carries a frame digest (fault
    applications).  The result is ordered by ``(first_ns, digest)`` —
    deterministic for any capture interleaving.
    """
    journeys: Dict[str, FrameJourney] = {}
    if recorder is not None:
        for record in recorder.records:
            digest = frame_digest(record.data)
            journey = journeys.get(digest)
            if journey is None:
                journey = FrameJourney(digest, record.view.summary())
                journeys[digest] = journey
            journey.hops.append((record.when, record.where, record.direction))
    if audit_log is not None:
        for event in audit_log.events:
            digest = getattr(event, "digest", "")
            if not digest:
                continue
            journey = journeys.get(digest)
            if journey is None:
                journey = FrameJourney(digest, f"<{event.kind}>")
                journeys[digest] = journey
            journey.events.append(
                (event.time_ns, event.node, event.kind, event.detail)
            )
    return sorted(journeys.values(), key=lambda j: (j.first_ns, j.digest))


def render_journeys(
    journeys: List[Dict[str, object]],
    limit: Optional[int] = None,
    faults_only: bool = False,
) -> str:
    """Render canonical journey dicts (as stored in reports) as timelines."""
    selected = [
        j
        for j in journeys
        if not faults_only or j.get("events") or j.get("retransmits")
    ]
    shown = selected if limit is None else selected[:limit]
    lines: List[str] = []
    for journey in shown:
        header = f"journey {journey['digest']}  {journey['summary']}"
        retransmits = journey.get("retransmits", 0)
        if retransmits:
            header += f"  ({retransmits} retransmit{'s' if retransmits != 1 else ''})"
        lines.append(header)
        entries = [
            (
                hop["time_ns"],
                0,
                f"{format_time(hop['time_ns']):>14}  {hop['node']:<10} "
                f"{hop['direction']:<5}",
            )
            for hop in journey.get("hops", [])
        ]
        entries.extend(
            (
                event["time_ns"],
                1,
                f"{format_time(event['time_ns']):>14}  {event['node']:<10} "
                f"{event['kind']}: {event['detail']}",
            )
            for event in journey.get("events", [])
        )
        lines.extend(
            text for _, _, text in sorted(entries, key=lambda e: (e[0], e[1], e[2]))
        )
    if limit is not None and len(selected) > limit:
        lines.append(f"... {len(selected) - limit} more journeys not shown")
    return "\n".join(lines)
