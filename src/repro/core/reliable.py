"""Reliable delivery for the control plane (robustness layer, paper §5.2).

The paper's whole premise — "every packet loss in the testbed is one we
injected" — extends to the orchestration channel: a silently lost INIT_ACK
or COUNTER_UPDATE would hang a scenario or corrupt the distributed
counter/term evaluation.  This module wraps every control message in a
light ARQ protocol so scenarios survive lossy control paths (hubs, links
the experiment itself degrades) and the front-end can tell a slow node
from a dead one.

Per (sender, peer) the channel provides:

* **sequencing** — every reliable message carries a monotonically
  increasing 32-bit sequence number;
* **acknowledgement** — the receiver immediately answers each reliable
  message with an ``ACK`` echoing its sequence number (duplicates are
  re-acknowledged so a lost ACK cannot retransmit forever);
* **retransmission** — unacknowledged messages are re-sent on an
  exponential backoff schedule (``INITIAL_RTO_NS`` doubling up to
  ``MAX_RTO_NS``) until ``MAX_RETRIES`` is exhausted, at which point the
  peer is declared dead and ``on_peer_failed`` fires;
* **duplicate suppression** — already-delivered sequence numbers are
  dropped (and counted) before they reach the engine, so replayed
  COUNTER_UPDATE / TERM_STATUS frames are idempotent;
* **in-order release** — a message that arrives ahead of a retransmitted
  predecessor is parked and released in sequence, so a mirrored counter
  can never regress to a stale value.

Messages with ``flags == 0`` bypass all of the above (ACKs themselves,
plus hand-crafted frames in unit tests) and are delivered verbatim.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.addresses import MacAddress
from ..sim import NS_PER_MS
from .control import FLAG_RELIABLE, ControlMessage, ControlType

#: First retransmission fires this long after the original send.  Control
#: RTT on the simulated LAN is ~10 µs, so 200 µs is a comfortable bound
#: that still recovers a lost START well inside the workload grace period.
INITIAL_RTO_NS = 200_000
#: Backoff ceiling: doubling stops here.
MAX_RTO_NS = 50 * NS_PER_MS
#: Retransmissions attempted before the peer is declared unreachable.
#: With doubling from 200 µs this spans ~51 ms of silence.
MAX_RETRIES = 8


class _Pending:
    """One unacknowledged reliable message."""

    __slots__ = ("message", "retries", "rto_ns", "timer", "on_acked")

    def __init__(self, message: ControlMessage, on_acked) -> None:
        self.message = message
        self.retries = 0
        self.rto_ns = INITIAL_RTO_NS
        self.timer = None
        self.on_acked = on_acked


class _PeerState:
    """Sequencing state for one remote MAC."""

    __slots__ = ("tx_seq", "inflight", "rx_next", "rx_parked", "dead")

    def __init__(self) -> None:
        self.tx_seq = 0  # last sequence number assigned
        self.inflight: Dict[int, _Pending] = {}
        self.rx_next = 1  # next sequence number to deliver
        self.rx_parked: Dict[int, ControlMessage] = {}
        self.dead = False


class ReliableControlPlane:
    """Per-engine ARQ layer between the engine and the raw control frames.

    The engine hands it outgoing messages (:meth:`send`) and incoming
    frames (:meth:`on_frame`); the channel returns the messages that are
    ready for dispatch, in order, exactly once.
    """

    def __init__(
        self,
        sim,
        transmit: Callable[[MacAddress, ControlMessage], None],
        stats_of: Callable[[], object],
    ) -> None:
        self.sim = sim
        self._transmit = transmit
        self._stats_of = stats_of
        self._peers: Dict[bytes, _PeerState] = {}
        #: invoked with the peer MAC when its retry budget is exhausted.
        self.on_peer_failed: Optional[Callable[[MacAddress], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Forget all peer state and cancel every retransmit timer."""
        for peer in self._peers.values():
            for pending in peer.inflight.values():
                if pending.timer is not None:
                    self.sim.cancel(pending.timer)
        self._peers.clear()

    def reset_peer(self, mac: MacAddress) -> None:
        """Forget the sequencing state for one peer (it rebooted).

        Cancels that peer's pending retransmits and drops its receive
        window, so the next exchange starts from sequence 1 on both the
        send and receive side — matching the blank channel a freshly
        booted node comes up with.
        """
        state = self._peers.pop(mac.packed, None)
        if state is None:
            return
        for pending in state.inflight.values():
            if pending.timer is not None:
                self.sim.cancel(pending.timer)

    def _peer(self, mac: MacAddress) -> _PeerState:
        state = self._peers.get(mac.packed)
        if state is None:
            state = self._peers[mac.packed] = _PeerState()
        return state

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def send(
        self,
        dst: MacAddress,
        message: ControlMessage,
        reliable: bool = True,
        on_acked: Optional[Callable[[], None]] = None,
    ) -> ControlMessage:
        """Transmit *message* to *dst*; returns the message as sent.

        With *reliable* the message is sequenced, tracked and retransmitted
        until acknowledged; *on_acked* (if given) fires exactly once when
        the peer's ACK arrives.  Sends to a peer already declared dead are
        dropped and counted (``control_sends_suppressed``).
        """
        if not reliable:
            self._transmit(dst, message)
            return message
        peer = self._peer(dst)
        if peer.dead:
            self._stats_of().control_sends_suppressed += 1
            return message
        peer.tx_seq += 1
        message = ControlMessage(
            message.msg_type,
            message.a,
            message.b,
            seq=peer.tx_seq,
            flags=message.flags | FLAG_RELIABLE,
        )
        pending = _Pending(message, on_acked)
        peer.inflight[message.seq] = pending
        self._transmit(dst, message)
        self._arm_timer(dst, peer, pending)
        return message

    def _arm_timer(self, dst: MacAddress, peer: _PeerState, pending: _Pending) -> None:
        pending.timer = self.sim.after(
            pending.rto_ns,
            lambda: self._retransmit(dst, peer, pending),
            "control:rto",
        )

    def _retransmit(self, dst: MacAddress, peer: _PeerState, pending: _Pending) -> None:
        if pending.message.seq not in peer.inflight or peer.dead:
            return
        if pending.retries >= MAX_RETRIES:
            self._declare_dead(dst, peer)
            return
        pending.retries += 1
        pending.rto_ns = min(pending.rto_ns * 2, MAX_RTO_NS)
        self._stats_of().control_retransmits += 1
        self._transmit(dst, pending.message)
        self._arm_timer(dst, peer, pending)

    def _declare_dead(self, dst: MacAddress, peer: _PeerState) -> None:
        peer.dead = True
        for pending in peer.inflight.values():
            if pending.timer is not None:
                self.sim.cancel(pending.timer)
        peer.inflight.clear()
        self._stats_of().control_peer_failures += 1
        if self.on_peer_failed is not None:
            self.on_peer_failed(dst)

    def inflight_count(self, dst: MacAddress) -> int:
        state = self._peers.get(dst.packed)
        return len(state.inflight) if state else 0

    def peer_dead(self, dst: MacAddress) -> bool:
        state = self._peers.get(dst.packed)
        return state.dead if state else False

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def on_frame(self, src: MacAddress, message: ControlMessage) -> List[ControlMessage]:
        """Feed a received control message in; returns what to dispatch.

        ACKs are consumed here; unreliable messages pass straight through;
        reliable messages are acknowledged, deduplicated and released in
        sequence order (possibly unblocking parked successors).
        """
        stats = self._stats_of()
        if message.msg_type is ControlType.ACK:
            stats.control_acks_received += 1
            self._on_ack(src, message.seq)
            return []
        if not message.reliable:
            return [message]
        peer = self._peer(src)
        # Acknowledge everything, duplicates included: the peer keeps
        # retransmitting until it hears the ACK.
        stats.control_acks_sent += 1
        self._transmit(src, ControlMessage(ControlType.ACK, seq=message.seq))
        if message.seq < peer.rx_next or message.seq in peer.rx_parked:
            stats.control_duplicates_dropped += 1
            return []
        if message.seq > peer.rx_next:
            peer.rx_parked[message.seq] = message
            return []
        deliverable = [message]
        peer.rx_next += 1
        while peer.rx_next in peer.rx_parked:
            deliverable.append(peer.rx_parked.pop(peer.rx_next))
            peer.rx_next += 1
        return deliverable

    def _on_ack(self, src: MacAddress, seq: int) -> None:
        peer = self._peers.get(src.packed)
        if peer is None:
            return
        pending = peer.inflight.pop(seq, None)
        if pending is None:
            return
        if pending.timer is not None:
            self.sim.cancel(pending.timer)
        if pending.on_acked is not None:
            pending.on_acked()

    def __repr__(self) -> str:
        inflight = sum(len(p.inflight) for p in self._peers.values())
        return f"ReliableControlPlane(peers={len(self._peers)}, inflight={inflight})"
