"""Script generation from protocol specifications (the paper's §8 goal).

The paper closes with: *"as a long term goal ... it will be interesting to
investigate the possibility of generating the fault injection and packet
trace analysis scripts directly from the protocol specification.  This
will truly make the testing process completely automated."*

This module implements that extension for a useful class of protocols:
those describable as a set of **message types** (named packet definitions
with endpoints) plus **liveness expectations** (after N messages of type A
have been observed, messages of type B must keep flowing).  From such a
:class:`ProtocolSpec` it emits a family of FSL scenarios:

* ``baseline``       — no fault; the liveness expectations alone must hold;
* ``drop_<m>``       — a burst of drops of each droppable message type,
                       with the spec's recovery expectation appended;
* ``delay_<m>``      — each message type delayed past its urgency bound;
* ``dup_<m>``        — each message type duplicated (idempotency check);
* ``crash_<node>``   — each expendable node crashed mid-run, with the
                       survivors' liveness expectations kept in force.

The generated scripts are plain FSL text: they can be reviewed, version-
controlled, edited, and run through the unmodified front-end — automation
produces the same artifact a human test author would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScenarioError


@dataclass(frozen=True)
class MessageFlow:
    """One message type of the protocol under test.

    *filter_fsl* is the packet definition body (the tuples after the
    name); *src*/*dst* name the observation endpoints; *min_rate_window*
    expresses liveness: within any window of that many observed
    ``clock_message`` events, at least one message of this type must be
    seen (0 disables the check).
    """

    name: str
    filter_fsl: str
    src: str
    dst: str
    droppable: bool = True
    #: drop this many consecutive instances in the drop scenario.
    drop_burst: int = 1
    #: DELAY scenarios hold the message this long (ms).
    delay_ms: int = 50


@dataclass
class ProtocolSpec:
    """A declarative description sufficient to generate test scenarios."""

    name: str
    messages: List[MessageFlow]
    #: nodes that may be crashed without invalidating the test (i.e. the
    #: protocol promises to survive their failure).
    expendable_nodes: List[str] = field(default_factory=list)
    #: the message type whose continued arrival constitutes liveness,
    #: checked after every injected fault.
    liveness_message: Optional[str] = None
    #: how many liveness messages after the fault constitute recovery.
    recovery_count: int = 3
    #: scenario inactivity budget.
    timeout: str = "2s"

    def message(self, name: str) -> MessageFlow:
        for message in self.messages:
            if message.name == name:
                return message
        raise ScenarioError(f"spec {self.name!r} has no message {name!r}")

    def validate(self) -> None:
        names = [m.name for m in self.messages]
        if len(set(names)) != len(names):
            raise ScenarioError(f"spec {self.name!r} has duplicate message names")
        if not self.messages:
            raise ScenarioError(f"spec {self.name!r} declares no messages")
        if self.liveness_message is not None:
            self.message(self.liveness_message)


class ScriptGenerator:
    """Emits FSL scenario scripts from a :class:`ProtocolSpec`."""

    def __init__(self, spec: ProtocolSpec, node_table_fsl: str) -> None:
        spec.validate()
        self.spec = spec
        self.node_table_fsl = node_table_fsl.strip()

    # -- shared fragments ---------------------------------------------------

    def _filter_table(self) -> str:
        lines = ["FILTER_TABLE"]
        for message in self.spec.messages:
            lines.append(f"  {message.name}: {message.filter_fsl}")
        lines.append("END")
        return "\n".join(lines)

    def _liveness(self) -> Optional[MessageFlow]:
        if self.spec.liveness_message is None:
            return None
        return self.spec.message(self.spec.liveness_message)

    def _liveness_counters(self) -> List[str]:
        live = self._liveness()
        if live is None:
            return []
        return [f"  Live: ({live.name}, {live.src}, {live.dst}, RECV)"]

    def _recovery_rules(self, armed_counter: str) -> List[str]:
        """After *armed_counter* fires, expect recovery_count liveness

        messages, then STOP; the scenario's declared timeout turns a
        stalled protocol into a failure automatically.
        """
        live = self._liveness()
        if live is None:
            return []
        lines = [
            f"  Recovered: ({live.name}, {live.src}, {live.dst}, RECV)",
            f"  (({armed_counter} = 1)) >> ENABLE_CNTR( Recovered );",
            f"  ((Recovered = {self.spec.recovery_count})) >> STOP;",
        ]
        return lines

    def _header(self, scenario: str) -> List[str]:
        return [
            self._filter_table(),
            self.node_table_fsl,
            f"SCENARIO {scenario} {self.spec.timeout}",
        ]

    # -- scenario emitters ----------------------------------------------------

    def baseline(self) -> str:
        """No fault: liveness alone, a calibration/sanity scenario."""
        live = self._liveness()
        if live is None:
            raise ScenarioError("baseline scenario needs a liveness message")
        lines = self._header(f"{self.spec.name}_baseline")
        lines += [
            f"  Live: ({live.name}, {live.src}, {live.dst}, RECV)",
            f"  ((Live = {self.spec.recovery_count})) >> STOP;",
            "END",
        ]
        return "\n".join(lines)

    def drop_scenario(self, message_name: str) -> str:
        """Drop a burst of *message_name*, then expect recovery."""
        message = self.spec.message(message_name)
        if not message.droppable:
            raise ScenarioError(f"message {message_name!r} is marked undroppable")
        burst = message.drop_burst
        lines = self._header(f"{self.spec.name}_drop_{message_name}")
        lines += [
            f"  Seen: ({message.name}, {message.src}, {message.dst}, RECV)",
            f"  Armed: ({message.src})",
            f"  ((Seen >= 1) && (Seen <= {burst})) >> "
            f"DROP {message.name}, {message.src}, {message.dst}, RECV;",
            f"  ((Seen = {burst})) >> INCR_CNTR( Armed, 1 );",
        ]
        lines += self._recovery_rules("Armed")
        lines.append("END")
        return "\n".join(lines)

    def delay_scenario(self, message_name: str) -> str:
        """Hold one instance of *message_name* for its delay bound."""
        message = self.spec.message(message_name)
        lines = self._header(f"{self.spec.name}_delay_{message_name}")
        lines += [
            f"  Seen: ({message.name}, {message.src}, {message.dst}, RECV)",
            f"  Armed: ({message.src})",
            f"  ((Seen = 1)) >> "
            f"DELAY {message.name}, {message.src}, {message.dst}, RECV, "
            f"{message.delay_ms}; INCR_CNTR( Armed, 1 );",
        ]
        lines += self._recovery_rules("Armed")
        lines.append("END")
        return "\n".join(lines)

    def dup_scenario(self, message_name: str) -> str:
        """Duplicate one instance of *message_name* (idempotency)."""
        message = self.spec.message(message_name)
        lines = self._header(f"{self.spec.name}_dup_{message_name}")
        lines += [
            f"  Seen: ({message.name}, {message.src}, {message.dst}, RECV)",
            f"  Armed: ({message.src})",
            f"  ((Seen = 1)) >> "
            f"DUP {message.name}, {message.src}, {message.dst}, RECV; "
            f"INCR_CNTR( Armed, 1 );",
        ]
        lines += self._recovery_rules("Armed")
        lines.append("END")
        return "\n".join(lines)

    def crash_scenario(self, node: str, trigger_count: int = 5) -> str:
        """Crash *node* after the liveness flow is established."""
        if node not in self.spec.expendable_nodes:
            raise ScenarioError(f"node {node!r} is not marked expendable")
        live = self._liveness()
        if live is None:
            raise ScenarioError("crash scenarios need a liveness message")
        lines = self._header(f"{self.spec.name}_crash_{node}")
        lines += [
            f"  Warm: ({live.name}, {live.src}, {live.dst}, RECV)",
            f"  Armed: ({live.dst})",
            f"  ((Warm = {trigger_count})) >> FAIL( {node} ); "
            f"INCR_CNTR( Armed, 1 );",
        ]
        lines += self._recovery_rules("Armed")
        lines.append("END")
        return "\n".join(lines)

    # -- the full generated suite ---------------------------------------------

    def generate_suite(self) -> Dict[str, str]:
        """Every scenario the spec supports, keyed by scenario name."""
        suite: Dict[str, str] = {}
        if self.spec.liveness_message is not None:
            suite["baseline"] = self.baseline()
        for message in self.spec.messages:
            if message.droppable:
                suite[f"drop_{message.name}"] = self.drop_scenario(message.name)
            suite[f"delay_{message.name}"] = self.delay_scenario(message.name)
            suite[f"dup_{message.name}"] = self.dup_scenario(message.name)
        for node in self.spec.expendable_nodes:
            suite[f"crash_{node}"] = self.crash_scenario(node)
        return suite


def rether_spec(ring_nodes: Sequence[str], rt_pairs: Sequence[Tuple[str, str]]) -> ProtocolSpec:
    """The Rether protocol as a :class:`ProtocolSpec` — the spec the paper

    hand-wrote Fig 6 from, here driving the generator instead.

    *ring_nodes* is the round-robin order; *rt_pairs* the (src, dst) pairs
    carrying real-time data whose continued delivery defines liveness.
    """
    if len(ring_nodes) < 3:
        raise ScenarioError("a crashworthy Rether spec needs >= 3 ring members")
    src, dst = rt_pairs[0]
    messages = [
        MessageFlow(
            name="tr_token",
            filter_fsl="(12 2 0x9900), (14 2 0x0001)",
            src=ring_nodes[0],
            dst=ring_nodes[1],
            droppable=True,
            drop_burst=1,
            delay_ms=30,
        ),
        MessageFlow(
            name="tr_token_ack",
            filter_fsl="(12 2 0x9900), (14 2 0x0010)",
            src=ring_nodes[1],
            dst=ring_nodes[0],
            droppable=True,
            drop_burst=1,
            delay_ms=30,
        ),
        MessageFlow(
            name="rt_data",
            filter_fsl="(34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)",
            src=src,
            dst=dst,
            droppable=False,  # dropping user data tests TCP, not Rether
            delay_ms=20,
        ),
    ]
    # Nodes carrying the real-time flow are not expendable in this spec.
    carriers = {src, dst}
    expendable = [node for node in ring_nodes if node not in carriers]
    return ProtocolSpec(
        name="rether",
        messages=messages,
        expendable_nodes=expendable,
        liveness_message="rt_data",
        recovery_count=5,
        timeout="2s",
    )
