"""The Testbed facade: build a LAN, splice VirtualWire in, run scenarios.

This is the library's main entry point.  A typical session::

    from repro import Testbed, seconds

    tb = Testbed(seed=42)
    node1 = tb.add_host("node1")
    node2 = tb.add_host("node2")
    tb.add_switch("sw0")
    tb.connect("sw0", node1, node2)
    tb.install_virtualwire(control="node1")

    def workload():
        node2.tcp.listen(0x4000)
        conn = node1.tcp.connect(node2.ip, 0x4000, local_port=0x6000)
        conn.on_established = lambda: conn.send(bytes(16384))

    report = tb.run_scenario(SCRIPT, workload=workload,
                             max_time=seconds(30))
    assert report.passed, report.render()

The testbed auto-generates deterministic MAC/IP addresses, fills every
host's neighbour table, and can emit the script's ``NODE_TABLE`` section so
scripts never hard-code addresses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..analysis import MetricsRegistry, correlate_journeys
from ..errors import ScenarioError, TopologyError
from ..net.addresses import IpAddress, MacAddress
from ..net.topology import Topology
from ..rll import RllLayer
from ..sim import Simulator, seconds
from ..stack.costs import CostModel
from ..stack.node import Host
from ..trace import TapLayer, TraceRecorder
from .audit import AuditLog
from .chaos import ControlLossLayer
from .engine import EngineConfig, VirtualWireEngine
from .frontend import Frontend
from .fsl import compile_text
from .report import EndReason, ScenarioReport
from .tables import CompiledProgram

HostRef = Union[str, Host]


class Testbed:
    """A simulated LAN with VirtualWire installed on its hosts."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    #: Shared compile cache keyed by ``(script text, scenario name)``.
    #: Regression suites re-run the same string script against a fresh
    #: testbed per iteration; compiling the six tables each time is pure
    #: waste, and the sweep engine's compile-once-in-the-parent path
    #: (:mod:`repro.sweep`) goes through the same entry point.  Bounded so
    #: generated script families cannot grow it without limit.
    _compile_cache: "OrderedDict[Tuple[str, Optional[str]], CompiledProgram]" = (
        OrderedDict()
    )
    _COMPILE_CACHE_MAX = 64

    @classmethod
    def compile_cached(
        cls, script: str, scenario: Optional[str] = None
    ) -> CompiledProgram:
        """Compile *script* (or return the cached result) — LRU, shared
        across all testbeds of the process.

        Callers must treat the returned program as immutable: it may be
        handed out again for the same source text.
        """
        key = (script, scenario)
        cached = cls._compile_cache.get(key)
        if cached is not None:
            cls._compile_cache.move_to_end(key)
            return cached
        program = compile_text(script, scenario)
        cls._compile_cache[key] = program
        while len(cls._compile_cache) > cls._COMPILE_CACHE_MAX:
            cls._compile_cache.popitem(last=False)
        return program

    @classmethod
    def compile_fingerprint(
        cls, script: str, scenario: Optional[str] = None
    ) -> str:
        """Content hash of the program the compile cache would hand out
        for ``(script, scenario)`` — the sweep result cache's program key.

        Derived from the compiled tables, not the raw text, so formatting-
        only edits (whitespace, comments) do not dirty cached campaign
        cells; any table-visible change does.
        """
        return cls.compile_cached(script, scenario).content_hash()

    def __init__(
        self,
        seed: int = 0,
        costs: Optional[CostModel] = None,
        frame_codec: str = "fast",
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.topology = Topology(self.sim)
        self.costs = costs if costs is not None else CostModel()
        self.frame_codec = frame_codec
        self.hosts: Dict[str, Host] = {}
        self.engines: Dict[str, VirtualWireEngine] = {}
        self.rll_layers: Dict[str, RllLayer] = {}
        self.frontend: Optional[Frontend] = None
        self.recorder: Optional[TraceRecorder] = None
        self.audit_log: Optional[AuditLog] = None
        self.metrics: Optional[MetricsRegistry] = None
        self._host_index = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_host(
        self,
        name: str,
        mac: Optional[str] = None,
        ip: Optional[str] = None,
        install_tcp: bool = True,
    ) -> Host:
        """Create a host; addresses are auto-generated when omitted."""
        if name in self.hosts:
            raise TopologyError(f"duplicate host name {name!r}")
        self._host_index += 1
        host = Host(
            self.sim,
            name,
            mac if mac is not None else MacAddress.from_index(self._host_index),
            ip if ip is not None else IpAddress.from_index(self._host_index),
            costs=self.costs,
            install_tcp=install_tcp,
            frame_codec=self.frame_codec,
        )
        self.hosts[name] = host
        for other in self.hosts.values():
            other.add_neighbor(host.ip, host.mac)
            host.add_neighbor(other.ip, other.mac)
        return host

    def add_switch(self, name: str = "sw0", **kwargs):
        return self.topology.add_switch(name, **kwargs)

    def add_hub(self, name: str = "hub0", **kwargs):
        return self.topology.add_hub(name, **kwargs)

    def add_bus(self, name: str = "bus0", **kwargs):
        return self.topology.add_bus(name, **kwargs)

    def add_link(self, name: str = "link0", **kwargs):
        return self.topology.add_link(name, **kwargs)

    def connect(self, medium_name: str, *hosts: HostRef) -> None:
        """Attach each host's NIC to the named medium."""
        nics = [self.host(ref).nic for ref in hosts]
        self.topology.connect(medium_name, *nics)

    def host(self, ref: HostRef) -> Host:
        if isinstance(ref, Host):
            return ref
        try:
            return self.hosts[ref]
        except KeyError:
            raise TopologyError(f"unknown host {ref!r}") from None

    # ------------------------------------------------------------------
    # VirtualWire installation
    # ------------------------------------------------------------------

    def install_virtualwire(
        self,
        nodes: Optional[List[HostRef]] = None,
        control: Optional[HostRef] = None,
        rll: bool = False,
        capture: bool = False,
        audit: bool = False,
        metrics: bool = False,
        engine_config: Optional[EngineConfig] = None,
    ) -> Frontend:
        """Splice the FIE/FAE (and optionally the RLL below it) into hosts.

        *nodes* defaults to every host; *control* defaults to the first
        host and may also be a scenario node, as in the paper's Fig 1.
        With *capture* a :class:`TraceRecorder` tap is spliced above each
        engine, recording exactly what the protocols under test see; with
        *audit* every engine feeds a shared :class:`AuditLog` narrating
        rule firings and fault applications (``testbed.audit_log``); with
        *metrics* every instrumented layer feeds a shared
        :class:`~repro.analysis.MetricsRegistry` (``testbed.metrics``,
        exported via ``report.metrics`` — docs/OBSERVABILITY.md).
        *engine_config* tunes every engine (e.g.
        ``EngineConfig(classifier="linear")`` selects the reference
        classifier instead of the indexed fast path).
        """
        if self.frontend is not None:
            raise ScenarioError("VirtualWire is already installed")
        if engine_config is None:
            engine_config = EngineConfig(frame_codec=self.frame_codec)
        elif engine_config.frame_codec != self.frame_codec:
            # The engine knob wins: re-key every host's stack so one
            # EngineConfig selects the codec for the whole testbed.
            self.frame_codec = engine_config.frame_codec
            for host in self.hosts.values():
                host.set_frame_codec(engine_config.frame_codec)
        targets = (
            [self.host(ref) for ref in nodes]
            if nodes is not None
            else list(self.hosts.values())
        )
        if not targets:
            raise ScenarioError("no hosts to install VirtualWire on")
        control_host = self.host(control) if control is not None else targets[0]
        if capture:
            self.recorder = TraceRecorder(self.sim)
        if audit:
            self.audit_log = AuditLog(self.sim)
        if metrics:
            self.metrics = MetricsRegistry()
        for host in targets:
            if self.metrics is not None:
                # Before splicing: layers pre-resolve handles in attached().
                host.enable_metrics(self.metrics.node(host.name))
            if rll:
                layer = RllLayer(self.sim)
                host.chain.splice_above_driver(layer)
                self.rll_layers[host.name] = layer
            engine = VirtualWireEngine(self.sim, config=engine_config)
            engine.audit_log = self.audit_log
            host.chain.splice_below_ip(engine)
            self.engines[host.name] = engine
            if self.recorder is not None:
                host.chain.splice_below_ip(TapLayer(self.recorder, host.name))
        if control_host.name not in self.engines:
            engine = VirtualWireEngine(self.sim, config=engine_config)
            engine.audit_log = self.audit_log
            control_host.chain.splice_below_ip(engine)
            self.engines[control_host.name] = engine
        self.frontend = Frontend(
            self.sim, self.engines[control_host.name], self.engines
        )
        return self.frontend

    # ------------------------------------------------------------------
    # Control-path adversity (reliability testing)
    # ------------------------------------------------------------------

    def add_control_loss(self, ref: HostRef, rate: float) -> ControlLossLayer:
        """Make *ref*'s control path lossy: a seeded fraction of VirtualWire

        control frames crossing this host (both directions) is silently
        dropped below the engine.  The reliable channel's retransmission
        must mask the loss; returns the layer so tests can read its drop
        counters.  Call after :meth:`install_virtualwire`.
        """
        host = self.host(ref)
        layer = ControlLossLayer(self.sim, rate)
        host.chain.splice_above_driver(layer)
        return layer

    def partition(self, ref: HostRef) -> None:
        """Sever *ref* from the network entirely (NIC down, host alive).

        Models an un-scripted node loss: liveness supervision must end the
        scenario with :class:`EndReason.NODE_UNREACHABLE` naming the node.
        """
        self.host(ref).nic.bring_down()

    def crash_node(self, ref: HostRef) -> None:
        """Crash *ref* with amnesia, as a ``CRASH(node)`` action would.

        The NIC goes down and every piece of soft state — TCP connections,
        engine tables and counters, held DELAY/REORDER packets, reliable
        channel sequencing — is destroyed (docs/NODE_LIFECYCLE.md).  Call
        during a running scenario; pair with :meth:`restart_node`.
        """
        host = self.host(ref)
        engine = self.engines.get(host.name)
        if engine is None:
            raise ScenarioError(
                f"{host.name} has no VirtualWire engine; use install_virtualwire"
            )
        engine.crash_local_host()

    def restart_node(self, ref: HostRef, delay_ns: int = 0) -> None:
        """Reboot a crashed *ref* after *delay_ns*, as ``RESTART`` would.

        The node comes back with blank tables, registers with the control
        node and resumes classifying only after the CRC-verified resync
        completes.  Requires :meth:`install_virtualwire`'s front-end.
        """
        host = self.host(ref)
        if self.frontend is None:
            raise ScenarioError("restart_node requires install_virtualwire")
        self.frontend.schedule_restart(host.name, delay_ns)

    # ------------------------------------------------------------------
    # Script helpers
    # ------------------------------------------------------------------

    def node_table_fsl(self, *names: str) -> str:
        """Emit a NODE_TABLE section for the given hosts (default: all).

        Lets scripts stay address-free: the testbed knows the generated
        MAC/IP bindings.
        """
        hosts = [self.host(n) for n in names] if names else list(self.hosts.values())
        lines = ["NODE_TABLE"]
        for host in hosts:
            lines.append(f"  {host.name} {host.mac} {host.ip}")
        lines.append("END")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Scenario execution
    # ------------------------------------------------------------------

    def run_scenario(
        self,
        script: Union[str, CompiledProgram],
        scenario: Optional[str] = None,
        workload: Optional[Callable[[], None]] = None,
        max_time: int = seconds(60),
        inactivity_ns: Optional[int] = None,
        max_events: int = 50_000_000,
    ) -> ScenarioReport:
        """Compile *script*, run it to completion, and return the report.

        *workload* is invoked shortly after every engine has started, so
        protocol traffic begins only once fault injection is armed.
        *max_time* bounds virtual time as a fail-safe.
        """
        if self.frontend is None:
            raise ScenarioError("call install_virtualwire() before run_scenario()")
        program = (
            script
            if isinstance(script, CompiledProgram)
            else self.compile_cached(script, scenario)
        )
        self.topology.validate(host.nic for host in self.hosts.values())
        frontend = self.frontend
        frontend.start_scenario(program, on_running=workload, inactivity_ns=inactivity_ns)
        deadline = self.sim.now + max_time
        events_left = max_events
        while not frontend.finished:
            if events_left <= 0:
                frontend.force_finish(EndReason.MAX_TIME)
                break
            upcoming = self.sim.queue.peek_time()
            if upcoming is None:
                # Nothing left to happen: the limiting case of inactivity.
                # (QUIESCED is reserved for runs that never started.)
                frontend.force_finish(
                    EndReason.INACTIVITY if frontend.started else EndReason.QUIESCED
                )
                break
            if upcoming > deadline:
                frontend.force_finish(EndReason.MAX_TIME)
                break
            self.sim.step()
            events_left -= 1
            frontend.poll()
        # Let in-flight shutdown control frames drain briefly so engines
        # disable before the caller inspects them.
        self.sim.run_for(seconds(0.01))
        report = frontend.build_report()
        if self.audit_log is not None:
            report.audit_events_dropped = self.audit_log.dropped
        if self.recorder is not None:
            report.trace_records_dropped = self.recorder.dropped_records
            report.journeys = [
                journey.as_dict()
                for journey in correlate_journeys(self.recorder, self.audit_log)
            ]
        if self.metrics is not None:
            report.metrics = self.metrics.snapshot()
        return report

    def run_for(self, duration: int) -> None:
        """Advance the simulation without a scenario (workload warm-up)."""
        self.sim.run_for(duration)

    def __repr__(self) -> str:
        return (
            f"Testbed(hosts={sorted(self.hosts)}, "
            f"virtualwire={'installed' if self.frontend else 'absent'})"
        )
