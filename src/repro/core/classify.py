"""Packet classification against the filter and node tables.

Classification reproduces the engine's behaviour exactly as measured in the
paper's Fig 8: a **linear scan** through the packet definitions in script
order, first match wins (§6.1: "the priority of the filter rules is in
descending order of occurrence").  The scan count is returned so the
engine's cost model can charge the per-entry comparison time.

Filter tuples with a VAR pattern bind on first match (node-locally) and
compare for equality afterwards — the mechanism behind the paper's
retransmission detectors (Fig 2, ``TCP_data_rt1``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .tables import FilterEntry, FilterTable, FilterTuple, VarRef


class VarStore:
    """Run-time bindings of the script's VAR declarations (node-local)."""

    def __init__(self) -> None:
        self._bindings: Dict[str, int] = {}

    def get(self, name: str) -> Optional[int]:
        return self._bindings.get(name)

    def bind(self, name: str, value: int) -> None:
        self._bindings[name] = value

    def clear(self) -> None:
        self._bindings.clear()

    def snapshot(self) -> Dict[str, int]:
        return dict(self._bindings)


class Classifier:
    """Stateful classifier: a filter table plus this node's VAR bindings."""

    def __init__(self, filters: FilterTable) -> None:
        self.filters = filters
        self.vars = VarStore()
        self.packets_classified = 0
        self.packets_unmatched = 0
        self.entries_scanned_total = 0

    def classify(self, data: bytes) -> Tuple[Optional[str], int]:
        """Return (packet type name or None, filter entries scanned)."""
        scanned = 0
        for entry in self.filters.entries:
            scanned += 1
            bindings = self._match(entry, data)
            if bindings is not None:
                for name, value in bindings.items():
                    self.vars.bind(name, value)
                self.packets_classified += 1
                self.entries_scanned_total += scanned
                return entry.name, scanned
        self.packets_unmatched += 1
        self.entries_scanned_total += scanned
        return None, scanned

    def _match(self, entry: FilterEntry, data: bytes) -> Optional[Dict[str, int]]:
        """All tuples must match; returns new VAR bindings or None."""
        new_bindings: Dict[str, int] = {}
        for tup in entry.tuples:
            value = _read_field(data, tup)
            if value is None:
                return None
            if isinstance(tup.pattern, VarRef):
                bound = self.vars.get(tup.pattern.name)
                if bound is None:
                    bound = new_bindings.get(tup.pattern.name)
                if bound is None:
                    new_bindings[tup.pattern.name] = value
                elif value != bound:
                    return None
            else:
                pattern = tup.pattern
                if tup.mask is not None:
                    if value & tup.mask != pattern & tup.mask:
                        return None
                elif value != pattern:
                    return None
        return new_bindings


def _read_field(data: bytes, tup: FilterTuple) -> Optional[int]:
    end = tup.offset + tup.nbytes
    if end > len(data):
        return None
    return int.from_bytes(data[tup.offset : end], "big")
