"""Packet classification against the filter and node tables.

Classification reproduces the engine's behaviour exactly as measured in the
paper's Fig 8: a **linear scan** through the packet definitions in script
order, first match wins (§6.1: "the priority of the filter rules is in
descending order of occurrence").  The scan count is returned so the
engine's cost model can charge the per-entry comparison time.

Filter tuples with a VAR pattern bind on first match (node-locally) and
compare for equality afterwards — the mechanism behind the paper's
retransmission detectors (Fig 2, ``TCP_data_rt1``).

Two implementations share those semantics (see docs/CLASSIFIER.md):

* :class:`Classifier` — the paper-faithful linear scan, kept as the
  reference implementation;
* :class:`IndexedClassifier` — the production fast path.  It consults a
  :class:`FilterIndex` compiled from the table (entries bucketed by their
  most selective exact tuple; mask/VAR-keyed entries in an ordered
  residual chain) so only entries that *could* match are examined.  The
  **result is split from the cost**: the index returns the same
  ``(packet_type, scanned)`` pair the linear scan would have produced, so
  the virtual-time cost model — and the Fig 8 linear-growth reproduction —
  is unchanged while the real Python-side work becomes ~O(1) per packet.
* :class:`CompiledClassifier` — the index plus a **flattened
  match-program** per entry (tuples of ``(offset, end, mask, pattern)``
  ops) so the candidate walk runs without per-tuple attribute access or
  bindings-dict allocation.  Selected automatically by the engine when the
  testbed runs the fast frame codec (docs/PERF.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import EngineError
from .tables import FilterEntry, FilterTable, FilterTuple, VarRef

#: A bucket/chain element: the entry plus its position in file order.
_Positioned = Tuple[int, FilterEntry]


class VarStore:
    """Run-time bindings of the script's VAR declarations (node-local)."""

    def __init__(self) -> None:
        self._bindings: Dict[str, int] = {}

    def get(self, name: str) -> Optional[int]:
        return self._bindings.get(name)

    def bind(self, name: str, value: int) -> None:
        self._bindings[name] = value

    def clear(self) -> None:
        self._bindings.clear()

    def snapshot(self) -> Dict[str, int]:
        return dict(self._bindings)


class ClassifierBase:
    """Shared state and tuple-matching semantics of both implementations.

    Subclasses implement :meth:`classify`; everything observable — the
    returned ``(name, scanned)`` pair, VAR bindings, and the three stats
    counters — must be identical across implementations (enforced by the
    differential property test in ``tests/props/test_props_classify.py``).
    """

    #: registry key, e.g. for ``EngineConfig.classifier``.
    kind = "abstract"

    def __init__(self, filters: FilterTable) -> None:
        self.filters = filters
        self.vars = VarStore()
        self.packets_classified = 0
        self.packets_unmatched = 0
        #: linear-equivalent scan count (what the cost model charges).
        self.entries_scanned_total = 0
        #: entries actually probed by *this* implementation (real work;
        #: equals entries_scanned_total for the linear reference).
        self.entries_examined_total = 0

    def classify(self, data: bytes) -> Tuple[Optional[str], int]:
        """Return (packet type name or None, filter entries scanned)."""
        raise NotImplementedError

    # -- shared matching ----------------------------------------------------

    def _match(self, entry: FilterEntry, data: bytes) -> Optional[Dict[str, int]]:
        """All tuples must match; returns new VAR bindings or None."""
        new_bindings: Dict[str, int] = {}
        for tup in entry.tuples:
            value = _read_field(data, tup)
            if value is None:
                return None
            if isinstance(tup.pattern, VarRef):
                bound = self.vars.get(tup.pattern.name)
                if bound is None:
                    bound = new_bindings.get(tup.pattern.name)
                if bound is None:
                    new_bindings[tup.pattern.name] = value
                elif value != bound:
                    return None
            else:
                pattern = tup.pattern
                if tup.mask is not None:
                    if value & tup.mask != pattern & tup.mask:
                        return None
                elif value != pattern:
                    return None
        return new_bindings

    def _matched(self, entry: FilterEntry, bindings: Dict[str, int], scanned: int) -> Tuple[str, int]:
        for name, value in bindings.items():
            self.vars.bind(name, value)
        self.packets_classified += 1
        self.entries_scanned_total += scanned
        return entry.name, scanned

    def _unmatched(self, scanned: int) -> Tuple[None, int]:
        self.packets_unmatched += 1
        self.entries_scanned_total += scanned
        return None, scanned


class Classifier(ClassifierBase):
    """The paper-faithful reference: a linear scan in file order."""

    kind = "linear"

    def classify(self, data: bytes) -> Tuple[Optional[str], int]:
        scanned = 0
        for entry in self.filters.entries:
            scanned += 1
            self.entries_examined_total += 1
            bindings = self._match(entry, data)
            if bindings is not None:
                return self._matched(entry, bindings, scanned)
        return self._unmatched(scanned)


# ---------------------------------------------------------------------------
# The compiled decision index
# ---------------------------------------------------------------------------


class FilterIndex:
    """A first-match-preserving decision index over one :class:`FilterTable`.

    Compilation picks one **discriminator field** — the ``(offset, nbytes)``
    pair that appears as an exact (integer, maskless) tuple in the largest
    number of entries (ties broken toward the lowest offset, then the
    narrowest field, for determinism).  Entries carrying such a tuple at
    that field are bucketed by its pattern value; every other entry (mask
    or VAR at the discriminator, or no tuple there at all) joins the
    ordered **residual chain**, which must always be considered.

    For each bucket value the merged candidate chain (bucket ∪ residual,
    sorted by original entry position) is precomputed, so classification is
    one field read plus one dict lookup plus a walk over a — typically
    tiny — chain.  Skipping a bucketed entry with a different discriminator
    value is always sound: its exact tuple compares unequal, so the linear
    scan would have rejected it too.
    """

    def __init__(self, table: FilterTable) -> None:
        self.version = table.version
        self.size = len(table.entries)
        self.key_field: Optional[Tuple[int, int]] = self._pick_key_field(table.entries)
        self.residual: List[_Positioned] = []
        buckets: Dict[int, List[_Positioned]] = {}
        for position, entry in enumerate(table.entries):
            key = self._key_pattern(entry)
            if key is None:
                self.residual.append((position, entry))
            else:
                buckets.setdefault(key, []).append((position, entry))
        #: value -> merged (bucket + residual) chain in file order.
        self.chains: Dict[int, List[_Positioned]] = {
            value: sorted(chain + self.residual) for value, chain in buckets.items()
        }
        if self.key_field is not None:
            self._key_offset, key_nbytes = self.key_field
            self._key_end = self._key_offset + key_nbytes
        else:
            self._key_offset = self._key_end = 0

    @staticmethod
    def _pick_key_field(entries: List[FilterEntry]) -> Optional[Tuple[int, int]]:
        counts: Dict[Tuple[int, int], int] = {}
        for entry in entries:
            for field in {
                (tup.offset, tup.nbytes)
                for tup in entry.tuples
                if tup.mask is None and isinstance(tup.pattern, int)
            }:
                counts[field] = counts.get(field, 0) + 1
        if not counts:
            return None
        return min(counts, key=lambda f: (-counts[f], f[0], f[1]))

    def _key_pattern(self, entry: FilterEntry) -> Optional[int]:
        """The entry's exact pattern at the discriminator field, if any."""
        if self.key_field is None:
            return None
        for tup in entry.tuples:
            if (
                (tup.offset, tup.nbytes) == self.key_field
                and tup.mask is None
                and isinstance(tup.pattern, int)
            ):
                return tup.pattern
        return None

    def chain_for(self, data: bytes) -> List[_Positioned]:
        """The candidate entries for *data*, in file order."""
        if self.key_field is None:
            return self.residual
        if self._key_end > len(data):
            # Truncated frame: no bucketed entry can match (its
            # discriminator read fails), so only the residual remains.
            return self.residual
        value = int.from_bytes(data[self._key_offset : self._key_end], "big")
        return self.chains.get(value, self.residual)

    @classmethod
    def for_table(cls, table: FilterTable) -> "FilterIndex":
        """The table's cached index, rebuilt when the table has changed."""
        cached = table.cached_index
        if isinstance(cached, cls) and cached.version == table.version:
            return cached
        index = cls(table)
        table.cached_index = index
        return index


class IndexedClassifier(ClassifierBase):
    """Production fast path: classify via the compiled :class:`FilterIndex`.

    Observationally identical to :class:`Classifier` — same winner, same
    VAR bindings, and the same *scanned* count (the linear-equivalent
    position of the winner, or the full table size on a miss) so the
    engine's virtual-time cost model still charges the paper's linear
    scan.  Only ``entries_examined_total`` — the real Python-side work —
    differs.
    """

    kind = "indexed"

    def __init__(self, filters: FilterTable) -> None:
        super().__init__(filters)
        self._index = FilterIndex.for_table(filters)

    def classify(self, data: bytes) -> Tuple[Optional[str], int]:
        index = self._index
        if index.version != self.filters.version:
            index = self._index = FilterIndex.for_table(self.filters)
        for position, entry in index.chain_for(data):
            self.entries_examined_total += 1
            bindings = self._match(entry, data)
            if bindings is not None:
                return self._matched(entry, bindings, position + 1)
        return self._unmatched(index.size)


# ---------------------------------------------------------------------------
# The flattened match-program
# ---------------------------------------------------------------------------

#: One flattened op: (offset, end, mask, pattern).  mask is None for an
#: exact compare; for masked compares the pattern is stored pre-masked.
_MatchOp = Tuple[int, int, Optional[int], int]


def _compile_entry(entry: FilterEntry) -> Optional[Tuple[_MatchOp, ...]]:
    """Flatten one entry into a tuple of match ops, or None if it binds VARs.

    VAR-bearing entries keep the interpreted :meth:`ClassifierBase._match`
    path — binding order and first-match equality semantics live there —
    so the bytecode only covers the (overwhelmingly common) exact and
    masked tuples, where a plain predicate loop suffices.
    """
    ops: List[_MatchOp] = []
    for tup in entry.tuples:
        if isinstance(tup.pattern, VarRef):
            return None
        if tup.mask is not None:
            ops.append((tup.offset, tup.offset + tup.nbytes, tup.mask, tup.pattern & tup.mask))
        else:
            ops.append((tup.offset, tup.offset + tup.nbytes, None, tup.pattern))
    return tuple(ops)


def _compile_table(table: FilterTable) -> List[Optional[Tuple[_MatchOp, ...]]]:
    """Per-position match programs, aligned with the table's file order."""
    return [_compile_entry(entry) for entry in table.entries]


class CompiledClassifier(IndexedClassifier):
    """Index-pruned candidates matched by flattened bytecode.

    Same candidate chains as :class:`IndexedClassifier`, but each non-VAR
    entry is pre-flattened into a tuple of ``(offset, end, mask, pattern)``
    ops evaluated in a tight local loop — no :class:`FilterTuple` attribute
    access, no ``isinstance`` checks, and no per-attempt bindings dict on
    the hot path.  Entries with VAR patterns fall back to the shared
    interpreted matcher, so observable behaviour (winner, VAR bindings,
    scanned counts, stats) stays identical to both other implementations.
    """

    kind = "compiled"

    def __init__(self, filters: FilterTable) -> None:
        super().__init__(filters)
        self._programs = _compile_table(filters)
        self._programs_version = filters.version

    def classify(self, data: bytes) -> Tuple[Optional[str], int]:
        index = self._index
        if index.version != self.filters.version:
            index = self._index = FilterIndex.for_table(self.filters)
        if self._programs_version != self.filters.version:
            self._programs = _compile_table(self.filters)
            self._programs_version = self.filters.version
        programs = self._programs
        n = len(data)
        for position, entry in index.chain_for(data):
            self.entries_examined_total += 1
            ops = programs[position]
            if ops is None:  # VAR entry: interpreted semantics
                bindings = self._match(entry, data)
                if bindings is not None:
                    return self._matched(entry, bindings, position + 1)
                continue
            for offset, end, mask, pattern in ops:
                if end > n:
                    break
                value = int.from_bytes(data[offset:end], "big")
                if (value != pattern) if mask is None else (value & mask != pattern):
                    break
            else:
                return self._matched(entry, _NO_BINDINGS, position + 1)
        return self._unmatched(index.size)


#: shared empty-bindings dict for bytecode matches (never mutated).
_NO_BINDINGS: Dict[str, int] = {}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: classifier-kind knob values (``EngineConfig.classifier``).
CLASSIFIER_KINDS: Dict[str, type] = {
    Classifier.kind: Classifier,
    IndexedClassifier.kind: IndexedClassifier,
    CompiledClassifier.kind: CompiledClassifier,
}


def make_classifier(
    filters: FilterTable, kind: Union[str, type] = "indexed"
) -> ClassifierBase:
    """Instantiate the classifier implementation named by *kind*."""
    if isinstance(kind, type):
        return kind(filters)
    try:
        cls = CLASSIFIER_KINDS[kind]
    except KeyError:
        raise EngineError(
            f"unknown classifier kind {kind!r} "
            f"(expected one of {sorted(CLASSIFIER_KINDS)})"
        ) from None
    return cls(filters)


def _read_field(data: bytes, tup: FilterTuple) -> Optional[int]:
    end = tup.offset + tup.nbytes
    if end > len(data):
        return None
    return int.from_bytes(data[tup.offset : end], "big")
