"""The Fault Injection and Analysis Engine (FIE/FAE) — paper §3.3, §5.2.

One :class:`VirtualWireEngine` is spliced into each testbed node's frame
chain between the device driver (or the RLL, when enabled) and the IP
stack — our equivalent of the paper's Netfilter hook.  It intercepts every
frame in both directions and runs the Fig 4(b) control flow: classify →
update counters → evaluate terms/conditions → trigger actions, where a
fault-type action may consume, hold, duplicate or rewrite the very packet
being processed, and counter-type actions release it.

The engine also terminates the control plane: INIT/START/SHUTDOWN
orchestration from the front-end, COUNTER_UPDATE/TERM_STATUS state exchange
with peer engines, and ERROR/STOP reports back to the control node.

Processing cost is charged in virtual time — a base cost per intercepted
packet, a per-filter-entry comparison cost (the linear scan of Fig 8), and
per-table-touch/per-action costs — serialised through a per-engine
busy-until clock so bursts queue behind each other like they would on one
CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..analysis.journey import frame_digest
from ..errors import ControlChecksumError, ControlPlaneError, EngineError
from ..net.bytesutil import read_u16
from ..net.fastpath import FRAME_CODEC_KINDS
from ..net.frame import ETHERTYPE_VW_CONTROL, EthernetFrame
from ..stack.layers import FrameLayer
from .classify import CLASSIFIER_KINDS, ClassifierBase, make_classifier
from .control import ControlMessage, ControlType
from .faults import DelayQueue, ReorderBuffer, apply_modify
from .reliable import ReliableControlPlane
from .runtime import EventStats, NodeRuntime, RuntimeHooks
from .tables import ActionKind, CompiledProgram, Direction


@dataclass(frozen=True)
class EngineConfig:
    """Per-engine tuning knobs (shared by every engine of a testbed).

    *classifier* selects the packet-classification implementation:
    ``"indexed"`` (default) uses the production
    :class:`~repro.core.classify.IndexedClassifier` fast path;
    ``"linear"`` keeps the paper-faithful reference scan.  Both return
    identical results and identical *scanned* counts, so the virtual-time
    cost model is unaffected by the choice (docs/CLASSIFIER.md).

    *frame_codec* selects the per-frame header codec for the whole
    testbed's hot path: ``"fast"`` (default) uses the allocation-lean
    :mod:`repro.net.fastpath` encoders/parsers plus the engine's
    allocation-free dispatch; ``"reference"`` keeps the object-per-frame
    reference path as the differential oracle.  Wire bytes, reports,
    audit trails and virtual time are byte-identical either way, pinned
    by tests/differential/ (docs/PERF.md).
    """

    classifier: str = "indexed"
    frame_codec: str = "fast"

    def __post_init__(self) -> None:
        if self.classifier not in CLASSIFIER_KINDS:
            raise EngineError(
                f"unknown classifier kind {self.classifier!r} "
                f"(expected one of {sorted(CLASSIFIER_KINDS)})"
            )
        if self.frame_codec not in FRAME_CODEC_KINDS:
            raise EngineError(
                f"unknown frame codec {self.frame_codec!r} "
                f"(expected one of {sorted(FRAME_CODEC_KINDS)})"
            )


class EngineStats:
    """Counters describing everything an engine did during a scenario."""

    __slots__ = (
        "packets_intercepted",
        "packets_classified",
        "packets_dropped",
        "packets_delayed",
        "packets_reordered",
        "packets_duplicated",
        "packets_modified",
        "control_frames_sent",
        "control_frames_received",
        "state_frames_sent",
        "control_retransmits",
        "control_duplicates_dropped",
        "control_acks_sent",
        "control_acks_received",
        "control_peer_failures",
        "control_sends_suppressed",
        "heartbeats_sent",
        "heartbeats_received",
        "init_checksum_failures",
        "filter_entries_scanned",
        "cost_charged_ns",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}


class VirtualWireEngine(FrameLayer, RuntimeHooks):
    """The per-node FIE/FAE, implemented as a splice-in frame layer."""

    def __init__(self, sim, config: Optional[EngineConfig] = None) -> None:
        FrameLayer.__init__(self, "virtualwire")
        self.sim = sim
        self.config = config if config is not None else EngineConfig()
        self.program: Optional[CompiledProgram] = None
        self.runtime: Optional[NodeRuntime] = None
        self.classifier: Optional[ClassifierBase] = None
        self.enabled = False
        self.control_mac = None
        #: shared with the front-end: program id -> CompiledProgram.
        self.program_registry: Dict[int, CompiledProgram] = {}
        #: set on the control node's engine only.
        self.frontend = None
        #: out-of-band activity ping for the inactivity timeout (see
        #: DESIGN.md: orchestration bookkeeping, not protocol traffic).
        self.activity_hook: Optional[Callable[[], None]] = None
        #: front-end lifecycle notification: called with "crash"/"fail"
        #: the instant a scripted crash takes this host down.
        self.lifecycle_hook: Optional[Callable[[str], None]] = None
        #: optional shared audit trail (repro.core.audit.AuditLog).
        self.audit_log = None
        self.stats = EngineStats()
        #: True once a scripted FAIL took this host down (liveness
        #: supervision then treats unreachability as expected).
        self.scripted_failure = False
        #: ARQ layer: sequencing, ACKs, retransmission, dedup (§5.2).
        self.channel = ReliableControlPlane(
            sim, self._transmit_control, lambda: self.stats
        )
        self.channel.on_peer_failed = self._on_peer_failed
        self._busy_until = 0
        self._delay_queue = DelayQueue(sim, self._forward)
        self._reorder_buffer = ReorderBuffer(sim, self._forward)
        self._modify_rng = None
        #: bumped by every crash: deferred forwards from a previous life
        #: check it and die instead of delivering frames post-crash.
        self._life_epoch = 0
        # Metric handles (repro.analysis), pre-resolved in attached();
        # None unless the testbed enabled metrics — the zero-cost path.
        self._m_packets = None
        self._m_faults = None
        self._m_cost = None
        self._m_delay_depth = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attached(self) -> None:
        self._modify_rng = self.sim.random.stream(f"fault:modify:{self.host.name}")
        metrics = getattr(self.host, "metrics", None)
        if metrics is not None:
            self.arm_metrics(metrics)

    def arm_metrics(self, metrics) -> None:
        """Pre-resolve metric handles from a :class:`NodeMetrics`."""
        self._m_packets = metrics.counter("engine", "packets_intercepted")
        self._m_faults = metrics.counter("engine", "faults_applied")
        self._m_cost = metrics.histogram("engine", "cost_ns")
        self._m_delay_depth = metrics.gauge("engine", "delay_queue_depth")

    @property
    def node_name(self) -> str:
        return self.host.name if self.host is not None else "?"

    def install_program(self, program: CompiledProgram) -> None:
        """Load the six tables (normally driven by an INIT control frame)."""
        self.program = program
        self.stats = EngineStats()
        self.scripted_failure = False
        self._busy_until = 0
        if self.node_name in program.nodes:
            self.runtime = NodeRuntime(self.node_name, program, hooks=self)
            kind = self.config.classifier
            if kind == "indexed" and self.config.frame_codec == "fast":
                # The fast codec's allocation-free twin of the indexed
                # classifier: same chains, flattened match-programs.
                kind = "compiled"
            self.classifier = make_classifier(program.filters, kind)
            if self.audit_log is not None:
                self.runtime.audit = self.audit_log.recorder_for(self.node_name)
        else:
            # Not a scenario node (e.g. a dedicated control host): the
            # engine only relays control traffic.
            self.runtime = None
            self.classifier = None

    def start_scenario(self) -> None:
        self.enabled = True
        if self.runtime is not None:
            self.runtime.start()
        if self.host is not None:
            # After a reboot this releases the layers above (e.g. Rether)
            # to resume protocol work — tables are armed again first.
            self.host.on_engine_started()

    def disable(self) -> None:
        self.enabled = False
        self._reorder_buffer.flush()

    # ------------------------------------------------------------------
    # Host crash/reboot lifecycle
    # ------------------------------------------------------------------

    def on_host_crash(self) -> None:
        """Crash with amnesia: the engine's entire soft state is lost.

        Tables, runtime, classification index, channel sequencing, held
        DELAY/REORDER packets and the busy-until clock all vanish — the
        node reboots into the blank state a real machine would.  The
        ``control_mac`` survives as the node's boot configuration (how a
        real deployment would know whom to register with).
        """
        self.enabled = False
        if self.runtime is not None:
            self.runtime.crashed = True
        self.runtime = None
        self.classifier = None
        self.program = None
        self.channel.reset()
        self._delay_queue.wipe()
        self._reorder_buffer.wipe()
        self._busy_until = 0
        self._life_epoch += 1
        self.stats = EngineStats()

    def on_host_reboot(self) -> None:
        """Boot: come up with blank tables and register with control.

        The engine stays disabled — classification resumes only after the
        control node re-ships the tables (INIT, CRC-verified) and STARTs
        us again.
        """
        self.channel.reset()
        if self.control_mac is not None and self.frontend is None:
            self._send_control(
                self.control_mac, ControlMessage(ControlType.REGISTER)
            )

    def on_peer_reboot(self, mac) -> None:
        """A peer rebooted: its channel sequencing restarts from 1."""
        self.channel.reset_peer(mac)

    # ------------------------------------------------------------------
    # Frame path
    # ------------------------------------------------------------------

    def on_send(self, frame_bytes: bytes) -> None:
        if not self.enabled or self.runtime is None or _is_control(frame_bytes):
            self.pass_down(frame_bytes)
            return
        self._process(frame_bytes, Direction.SEND)

    def on_receive(self, frame_bytes: bytes) -> None:
        if _is_control(frame_bytes):
            self._handle_control(frame_bytes)
            return
        if not self.enabled or self.runtime is None:
            self.pass_up(frame_bytes)
            return
        self._process(frame_bytes, Direction.RECV)

    def _process(self, data: bytes, direction: Direction) -> None:
        self.stats.packets_intercepted += 1
        if self._m_packets is not None:
            self._m_packets.inc()
        costs = self.host.costs
        pkt_type, scanned = self.classifier.classify(data)
        self.stats.filter_entries_scanned += scanned
        cost = costs.engine_base_ns + scanned * costs.filter_match_ns
        if pkt_type is None:
            self._forward_after(cost, data, direction)
            return
        self.stats.packets_classified += 1
        src_node, dst_node = self._endpoints(data)
        runtime = self.runtime
        event = runtime.on_classified_packet(pkt_type, src_node, dst_node, direction)
        if self.activity_hook is not None:
            self.activity_hook()
        if runtime.crashed:
            return  # a CRASH rule took this host down processing the packet
        cost += self._event_cost(event)

        duplicate = False
        for action in self.runtime.armed_faults(pkt_type, src_node, dst_node, direction):
            kind = action.kind
            if self._m_faults is not None:
                self._m_faults.inc()
            if self.audit_log is not None:
                self.audit_log.record(
                    self.node_name,
                    "fault",
                    f"{kind.value} applied to {pkt_type} "
                    f"({src_node} -> {dst_node}, {direction.value})",
                    digest=frame_digest(data),
                )
            if kind is ActionKind.DROP:
                self.stats.packets_dropped += 1
                self._charge(cost)
                return
            if kind is ActionKind.DELAY:
                self.stats.packets_delayed += 1
                self._charge(cost)
                self._delay_queue.hold(data, direction, action.delay_ns)
                if self._m_delay_depth is not None:
                    self._m_delay_depth.set(self._delay_queue.in_flight)
                return
            if kind is ActionKind.REORDER:
                self.stats.packets_reordered += 1
                self._charge(cost)
                self._reorder_buffer.hold(action, data, direction)
                return
            if kind is ActionKind.MODIFY:
                self.stats.packets_modified += 1
                data = apply_modify(action, data, self._modify_rng)
            elif kind is ActionKind.DUP:
                self.stats.packets_duplicated += 1
                duplicate = True
        self._forward_after(cost, data, direction, duplicate)

    def _endpoints(self, data: bytes):
        nodes = self.program.nodes
        src = nodes.by_mac_bytes(data[6:12] if len(data) >= 12 else _ZERO_MAC)
        dst = nodes.by_mac_bytes(data[0:6] if len(data) >= 6 else _ZERO_MAC)
        return (src.name if src else None, dst.name if dst else None)

    def _event_cost(self, event: EventStats) -> int:
        costs = self.host.costs
        touches = event.counter_touches + event.terms_evaluated + event.conditions_evaluated
        return touches * costs.table_touch_ns + event.actions_fired * costs.action_ns

    # -- cost-model forwarding -------------------------------------------

    def _charge(self, cost_ns: int) -> int:
        """Occupy the engine CPU for *cost_ns*; returns the release time."""
        release = max(self.sim.now, self._busy_until) + cost_ns
        self._busy_until = release
        self.stats.cost_charged_ns += cost_ns
        if self._m_cost is not None:
            self._m_cost.observe(cost_ns)
        return release

    def _forward_after(
        self, cost_ns: int, data: bytes, direction: Direction, duplicate: bool = False
    ) -> None:
        release = self._charge(cost_ns)
        epoch = self._life_epoch

        def emit() -> None:
            if epoch != self._life_epoch:
                return  # the host crashed while this frame sat on the CPU
            self._forward(data, direction)
            if duplicate:
                self._forward(data, direction)

        if release <= self.sim.now:
            emit()
        else:
            self.sim.at(release, emit, "vw:forward", pooled=True)

    def _forward(self, data: bytes, direction: Direction) -> None:
        if direction is Direction.SEND:
            self.pass_down(data)
        else:
            self.pass_up(data)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def _transmit_control(self, dst_mac, message: ControlMessage) -> None:
        """Put one control frame on the wire (channel's raw transmit)."""
        self.stats.control_frames_sent += 1
        frame = message.wrap(dst_mac, self.host.mac)
        self.pass_down(frame.to_bytes())

    def _send_control(
        self, dst_mac, message: ControlMessage, reliable: bool = True, on_acked=None
    ) -> None:
        self.channel.send(dst_mac, message, reliable=reliable, on_acked=on_acked)

    def _on_peer_failed(self, peer_mac) -> None:
        """The channel exhausted its retry budget toward *peer_mac*."""
        if self.frontend is not None:
            self.frontend.node_unreachable(peer_mac)

    def send_init(self, node_mac, program_id: int, checksum: int = 0) -> None:
        """Front-end API (control node only): ship the tables to a node."""
        self._send_control(
            node_mac, ControlMessage(ControlType.INIT, program_id, checksum)
        )

    def send_start(self, node_mac, program_id: int, on_acked=None) -> None:
        self._send_control(
            node_mac, ControlMessage(ControlType.START, program_id), on_acked=on_acked
        )

    def send_shutdown(self, node_mac, program_id: int) -> None:
        self._send_control(node_mac, ControlMessage(ControlType.SHUTDOWN, program_id))

    def send_node_reset(self, node_mac, node_index: int, on_acked=None) -> None:
        """Front-end API: tell a peer that node *node_index* rebooted."""
        self._send_control(
            node_mac,
            ControlMessage(ControlType.NODE_RESET, node_index),
            on_acked=on_acked,
        )

    def send_heartbeat(self, node_mac) -> None:
        """Front-end API: probe a node's liveness through the channel."""
        self.stats.heartbeats_sent += 1
        self._send_control(node_mac, ControlMessage(ControlType.HEARTBEAT))

    def _handle_control(self, frame_bytes: bytes) -> None:
        self.stats.control_frames_received += 1
        frame = EthernetFrame.from_bytes(frame_bytes)
        message = ControlMessage.parse(frame.payload)
        for deliverable in self.channel.on_frame(frame.src, message):
            self._dispatch_control(frame, deliverable)

    def _dispatch_control(self, frame: EthernetFrame, message: ControlMessage) -> None:
        handler = {
            ControlType.INIT: self._on_init,
            ControlType.INIT_ACK: self._on_init_ack,
            ControlType.INIT_NACK: self._on_init_nack,
            ControlType.START: self._on_start,
            ControlType.SHUTDOWN: self._on_shutdown,
            ControlType.COUNTER_UPDATE: self._on_counter_update,
            ControlType.TERM_STATUS: self._on_term_status,
            ControlType.ERROR_REPORT: self._on_error_report,
            ControlType.STOP_REPORT: self._on_stop_report,
            ControlType.HEARTBEAT: self._on_heartbeat,
            ControlType.REGISTER: self._on_register,
            ControlType.NODE_RESET: self._on_node_reset,
            ControlType.RESTART_REPORT: self._on_restart_report,
        }[message.msg_type]
        handler(frame, message)

    def verify_init_checksum(self, program: CompiledProgram, claimed: int) -> None:
        """Check an INIT frame's table checksum against the shipped tables."""
        computed = program.checksum()
        if claimed != computed:
            raise ControlChecksumError(
                f"{self.node_name}: INIT table checksum mismatch "
                f"(claimed {claimed:#010x}, computed {computed:#010x})"
            )

    def _on_init(self, frame: EthernetFrame, message: ControlMessage) -> None:
        program = self.program_registry.get(message.a)
        if program is None:
            raise ControlPlaneError(
                f"{self.node_name}: INIT for unknown program {message.a}"
            )
        self.control_mac = frame.src
        try:
            self.verify_init_checksum(program, message.b)
        except ControlChecksumError:
            self.stats.init_checksum_failures += 1
            self._send_control(
                frame.src,
                ControlMessage(ControlType.INIT_NACK, message.a, program.checksum()),
            )
            return
        self.install_program(program)
        self._send_control(frame.src, ControlMessage(ControlType.INIT_ACK, message.a))

    def _on_init_nack(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.frontend is not None:
            self.frontend.on_init_nack(frame.src, message.a, message.b)

    def _on_heartbeat(self, frame: EthernetFrame, message: ControlMessage) -> None:
        # The channel-level ACK already answered; just account for it.
        self.stats.heartbeats_received += 1

    def _on_init_ack(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.frontend is not None:
            self.frontend.on_init_ack(frame.src, message.a)

    def _on_start(self, frame: EthernetFrame, message: ControlMessage) -> None:
        self.start_scenario()

    def _on_shutdown(self, frame: EthernetFrame, message: ControlMessage) -> None:
        self.disable()

    def _on_counter_update(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.runtime is None:
            return
        if message.a >= len(self.program.counters):
            raise ControlPlaneError(
                f"{self.node_name}: COUNTER_UPDATE for unknown counter {message.a}"
            )
        self.runtime.on_counter_update(message.a, message.b)

    def _on_term_status(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.runtime is None:
            return
        if message.a >= len(self.program.terms):
            raise ControlPlaneError(
                f"{self.node_name}: TERM_STATUS for unknown term {message.a}"
            )
        self.runtime.on_term_status(message.a, bool(message.b))

    def _on_error_report(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.frontend is not None:
            node = self.program.nodes.by_mac(frame.src) if self.program else None
            self.frontend.record_error(
                node.name if node else str(frame.src), message.a, message.b
            )

    def _on_stop_report(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.frontend is not None:
            node = self.program.nodes.by_mac(frame.src) if self.program else None
            self.frontend.record_stop(node.name if node else str(frame.src), message.a)

    def _on_register(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.frontend is not None:
            self.frontend.on_register(frame.src)

    def _on_node_reset(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.program is None:
            return
        if message.a >= len(self.program.nodes.entries):
            raise ControlPlaneError(
                f"{self.node_name}: NODE_RESET for unknown node index {message.a}"
            )
        entry = self.program.nodes.entries[message.a]
        self.host.on_peer_reboot(entry.mac)
        if self.runtime is not None:
            self.runtime.resend_state_to(entry.name)

    def _on_restart_report(self, frame: EthernetFrame, message: ControlMessage) -> None:
        if self.frontend is None:
            return
        if self.program is None or message.a >= len(self.program.nodes.entries):
            raise ControlPlaneError(
                f"{self.node_name}: RESTART_REPORT for unknown node index "
                f"{message.a}"
            )
        self.frontend.schedule_restart(
            self.program.nodes.entries[message.a].name, message.b
        )

    # ------------------------------------------------------------------
    # RuntimeHooks: outbound state exchange and reports
    # ------------------------------------------------------------------

    def send_counter_update(self, counter_id: int, value: int, nodes) -> None:
        for node in sorted(nodes):
            if node == self.node_name:
                continue
            mac = self.program.nodes.get(node).mac
            self.stats.state_frames_sent += 1
            self._send_control(
                mac, ControlMessage(ControlType.COUNTER_UPDATE, counter_id, value)
            )

    def send_term_status(self, term_id: int, status: bool, nodes) -> None:
        for node in sorted(nodes):
            if node == self.node_name:
                continue
            mac = self.program.nodes.get(node).mac
            self.stats.state_frames_sent += 1
            self._send_control(
                mac, ControlMessage(ControlType.TERM_STATUS, term_id, int(status))
            )

    def report_error(self, condition_id: int, action_id: int) -> None:
        if self.frontend is not None:
            self.frontend.record_error(self.node_name, condition_id, action_id)
        elif self.control_mac is not None:
            self._send_control(
                self.control_mac,
                ControlMessage(ControlType.ERROR_REPORT, condition_id, action_id),
            )

    def report_stop(self, condition_id: int) -> None:
        if self.frontend is not None:
            self.frontend.record_stop(self.node_name, condition_id)
        elif self.control_mac is not None:
            self._send_control(
                self.control_mac, ControlMessage(ControlType.STOP_REPORT, condition_id)
            )

    def fail_local_host(self) -> None:
        self.enabled = False
        self.scripted_failure = True
        if self.lifecycle_hook is not None:
            self.lifecycle_hook("fail")
        self.host.fail()

    def crash_local_host(self) -> None:
        """Execute a CRASH action: take this host down with amnesia."""
        self.enabled = False
        self.scripted_failure = True
        if self.lifecycle_hook is not None:
            self.lifecycle_hook("crash")
        self.host.crash()

    def request_restart(self, target_node: str, delay_ns: int) -> None:
        """Execute a RESTART action: ask the front-end to reboot *target*."""
        if self.frontend is not None:
            self.frontend.schedule_restart(target_node, delay_ns)
            return
        if self.control_mac is None or self.program is None:
            return
        for index, entry in enumerate(self.program.nodes.entries):
            if entry.name == target_node:
                self._send_control(
                    self.control_mac,
                    ControlMessage(ControlType.RESTART_REPORT, index, delay_ns),
                )
                return

    def now(self) -> int:
        return self.sim.now

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "idle"
        return f"VirtualWireEngine({self.node_name}, {state})"


def _is_control(frame_bytes: bytes) -> bool:
    return len(frame_bytes) >= 14 and read_u16(frame_bytes, 12) == ETHERTYPE_VW_CONTROL


#: what a truncated frame's missing address reads as (matches the node
#: table's view of an all-zero MAC: never a scenario node).
_ZERO_MAC = b"\x00" * 6
