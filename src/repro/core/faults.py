"""Packet-fault machinery: DELAY queues, REORDER buffers, MODIFY patching.

Implements the Table II packet faults with the paper's stated semantics
(§5.2): DELAY is quantised to the 10 ms jiffy of the Linux software-timer
facility; REORDER queues the specified number of packets and releases them
in a burst "when the bottom half is scheduled next"; MODIFY perturbs random
bytes unless explicit patches are given, in which case keeping checksums
consistent is the script author's responsibility.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..net.bytesutil import patch_bytes
from ..sim import RandomStream, Simulator, quantize_to_jiffies
from .tables import ActionSpec, Direction

#: A held packet: (frame bytes, direction it was travelling).
_Held = Tuple[bytes, Direction]

#: Forwarder the engine supplies: (frame bytes, direction) -> None.
ForwardFn = Callable[[bytes, Direction], None]


class DelayQueue:
    """Holds DELAY-ed packets until their jiffy-quantised timer expires."""

    def __init__(self, sim: Simulator, forward: ForwardFn) -> None:
        self.sim = sim
        self.forward = forward
        self.delayed_packets = 0
        self.in_flight = 0
        self._timers: set = set()

    def hold(self, data: bytes, direction: Direction, delay_ns: int) -> None:
        self.delayed_packets += 1
        self.in_flight += 1
        quantised = quantize_to_jiffies(delay_ns)
        handle_box = []

        def release() -> None:
            self._timers.discard(handle_box[0])
            self.in_flight -= 1
            self.forward(data, direction)

        handle = self.sim.after(quantised, release, "fault:delay")
        handle_box.append(handle)
        self._timers.add(handle)

    def wipe(self) -> None:
        """Drop every held packet without forwarding (host crash)."""
        for handle in self._timers:
            self.sim.cancel(handle)
        self._timers.clear()
        self.in_flight = 0


class ReorderBuffer:
    """Per-action buffers implementing REORDER."""

    def __init__(self, sim: Simulator, forward: ForwardFn) -> None:
        self.sim = sim
        self.forward = forward
        self._buffers: Dict[int, List[_Held]] = {}
        self.reordered_bursts = 0
        self.flushed_packets = 0

    def hold(self, action: ActionSpec, data: bytes, direction: Direction) -> None:
        buffer = self._buffers.setdefault(action.action_id, [])
        buffer.append((data, direction))
        if len(buffer) >= action.reorder_count:
            self._release(action)

    def _release(self, action: ActionSpec) -> None:
        buffer = self._buffers.pop(action.action_id, [])
        order = action.reorder_order or tuple(range(len(buffer), 0, -1))
        self.reordered_bursts += 1
        permuted = [buffer[i - 1] for i in order]

        def burst() -> None:
            for data, direction in permuted:
                self.forward(data, direction)

        # "Released in burst when the bottom half is scheduled next": the
        # next simulator tick, not a jiffy later.
        self.sim.after(1, burst, "fault:reorder-burst")

    def flush(self) -> None:
        """Release everything still buffered (scenario teardown)."""
        for action_id in list(self._buffers):
            buffer = self._buffers.pop(action_id)
            self.flushed_packets += len(buffer)
            for data, direction in buffer:
                self.forward(data, direction)

    def wipe(self) -> None:
        """Discard everything still buffered without forwarding (crash)."""
        self._buffers.clear()


def apply_modify(action: ActionSpec, data: bytes, rng: RandomStream) -> bytes:
    """Return the modified frame bytes for a MODIFY fault.

    Explicit patches are applied verbatim.  With no patches, one to four
    payload bytes (never the 14-byte Ethernet header, so the frame still
    reaches its destination and the corruption is observable there) are
    XOR-perturbed with non-zero values.
    """
    if action.patches:
        for offset, patch in action.patches:
            data = patch_bytes(data, offset, patch)
        return data
    if len(data) <= 14:
        return data
    mutable = bytearray(data)
    for _ in range(rng.randint(1, min(4, len(data) - 14))):
        offset = rng.randint(14, len(data) - 1)
        mutable[offset] ^= rng.randint(1, 255)
    return bytes(mutable)
