"""Scenario outcome reporting."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim import format_time


class EndReason(enum.Enum):
    #: a STOP action fired (the scenario's success criterion was met).
    STOP = "stop"
    #: the declared (or default) inactivity window elapsed.
    INACTIVITY = "inactivity"
    #: the run hit the caller's wall-clock bound without concluding.
    MAX_TIME = "max-time"
    #: the simulator ran out of events (everything quiesced).
    QUIESCED = "quiesced"
    #: liveness supervision declared a node dead mid-scenario (control
    #: retransmission budget exhausted without a scripted FAIL).
    NODE_UNREACHABLE = "node-unreachable"
    #: scenario orchestration (INIT/INIT_ACK) never completed: a node was
    #: unreachable, or its table checksum never verified, before START.
    CONTROL_TIMEOUT = "control-timeout"


@dataclass(frozen=True)
class ErrorRecord:
    """One FLAG_ERROR occurrence."""

    node: str
    condition_id: int
    action_id: int
    time_ns: int
    line: int = 0

    def render(self) -> str:
        where = f" (script line {self.line})" if self.line else ""
        return (
            f"FLAG_ERROR at {format_time(self.time_ns)} on {self.node}: "
            f"condition {self.condition_id}{where}"
        )


@dataclass
class CrashRecord:
    """One node's crash/recovery arc (CRASH or FAIL, optionally RESTART).

    Times are virtual nanoseconds; fields past ``crash_time_ns`` stay
    ``None`` when the node never restarted (or never got that far).
    ``resync_rounds`` counts INIT shipments during the rejoin (1 for a
    clean resync; +1 per checksum NACK re-send).
    """

    node: str
    #: "crash" (CRASH: amnesia) or "fail" (FAIL: NIC down only).
    kind: str
    crash_time_ns: int
    reboot_time_ns: Optional[int] = None
    register_time_ns: Optional[int] = None
    rejoin_time_ns: Optional[int] = None
    resync_rounds: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "node": self.node,
            "kind": self.kind,
            "crash_time_ns": self.crash_time_ns,
            "reboot_time_ns": self.reboot_time_ns,
            "register_time_ns": self.register_time_ns,
            "rejoin_time_ns": self.rejoin_time_ns,
            "resync_rounds": self.resync_rounds,
        }

    def render(self) -> str:
        arc = f"{self.kind.upper()} at {format_time(self.crash_time_ns)}"
        if self.reboot_time_ns is not None:
            arc += f", rebooted {format_time(self.reboot_time_ns)}"
        if self.rejoin_time_ns is not None:
            arc += (
                f", rejoined {format_time(self.rejoin_time_ns)} "
                f"({self.resync_rounds} resync round"
                f"{'s' if self.resync_rounds != 1 else ''})"
            )
        return f"{self.node}: {arc}"


@dataclass
class ScenarioReport:
    """Everything the front-end learned from one scenario run."""

    scenario_name: str
    end_reason: EndReason
    duration_ns: int
    errors: List[ErrorRecord] = field(default_factory=list)
    stop_node: Optional[str] = None
    stop_time_ns: Optional[int] = None
    #: whether the script contains a STOP action (success then requires it).
    expects_stop: bool = False
    #: whether the scenario declared an inactivity timeout (ending by
    #: inactivity is then a failure — paper §6.2).
    declared_timeout: bool = False
    #: final counter values per node (each node's local view).
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: authoritative final counter values (taken from each counter's home).
    final_counters: Dict[str, int] = field(default_factory=dict)
    #: per-node engine statistics.
    engine_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: nodes liveness supervision declared dead (unexpectedly silent).
    unreachable_nodes: List[str] = field(default_factory=list)
    #: nodes taken down by a scripted FAIL (expected deaths).
    failed_nodes: List[str] = field(default_factory=list)
    #: control-plane anomalies observed and survived (e.g. INIT NACKs).
    control_errors: List[str] = field(default_factory=list)
    #: scripted crash/recovery arcs, in crash order (docs/NODE_LIFECYCLE.md).
    crash_timeline: List[CrashRecord] = field(default_factory=list)
    #: telemetry (repro.analysis) — populated only when the corresponding
    #: subsystem was enabled at install time, so default runs keep their
    #: pre-telemetry summary() key set byte-for-byte.
    #: MetricsRegistry.snapshot() when metrics=True, else None.
    metrics: Optional[Dict[str, object]] = None
    #: canonical frame-journey dicts when capture=True, else None.
    journeys: Optional[List[Dict[str, object]]] = None
    #: events lost to AuditLog saturation (None when audit was off).
    audit_events_dropped: Optional[int] = None
    #: frames lost to TraceRecorder saturation (None when capture was off).
    trace_records_dropped: Optional[int] = None

    @property
    def truncated(self) -> bool:
        """True when any enabled log saturated: narratives are incomplete."""
        return bool(self.audit_events_dropped) or bool(self.trace_records_dropped)

    @property
    def degraded(self) -> bool:
        """True when the run concluded without full control-plane health."""
        return bool(self.unreachable_nodes) or self.end_reason in (
            EndReason.NODE_UNREACHABLE,
            EndReason.CONTROL_TIMEOUT,
        )

    @property
    def passed(self) -> bool:
        """The scenario's verdict, per the paper's semantics:

        no FLAG_ERROR fired; if the script has a STOP rule it must have
        fired; a scenario with a declared timeout must not have ended
        through inactivity or the time bound; and the control plane must
        not have lost a node it did not deliberately kill.
        """
        if self.degraded:
            return False
        if self.errors:
            return False
        if self.expects_stop and self.stop_time_ns is None:
            return False
        if self.declared_timeout and self.end_reason in (
            EndReason.INACTIVITY,
            EndReason.MAX_TIME,
        ):
            return False
        if self.end_reason is EndReason.MAX_TIME and self.expects_stop:
            return False
        return True

    def summary(self) -> Dict[str, object]:
        """The report as a plain, picklable, JSON-able dict.

        This is the form sweep campaigns ship back from worker processes
        (:mod:`repro.sweep`): only builtin container/scalar types, with
        deterministic ordering (lists sorted where the source order is a
        set-like accumulation), so two runs of the same seeded scenario
        serialise to byte-identical summaries regardless of the process
        that produced them.
        """
        summary: Dict[str, object] = {
            "scenario": self.scenario_name,
            "passed": self.passed,
            "degraded": self.degraded,
            "end_reason": self.end_reason.value,
            "duration_ns": self.duration_ns,
            "stop_node": self.stop_node,
            "stop_time_ns": self.stop_time_ns,
            "errors": [
                {
                    "node": e.node,
                    "condition_id": e.condition_id,
                    "action_id": e.action_id,
                    "time_ns": e.time_ns,
                    "line": e.line,
                }
                for e in sorted(
                    self.errors,
                    key=lambda e: (e.time_ns, e.node, e.condition_id, e.action_id),
                )
            ],
            "counters": {
                node: {name: values[name] for name in sorted(values)}
                for node, values in sorted(self.counters.items())
            },
            "final_counters": {
                name: self.final_counters[name]
                for name in sorted(self.final_counters)
            },
            "engine_stats": {
                node: {name: values[name] for name in sorted(values)}
                for node, values in sorted(self.engine_stats.items())
            },
            "unreachable_nodes": sorted(self.unreachable_nodes),
            "failed_nodes": sorted(self.failed_nodes),
            "control_errors": list(self.control_errors),
            "crash_timeline": [
                record.as_dict()
                for record in sorted(
                    self.crash_timeline,
                    key=lambda r: (r.crash_time_ns, r.node),
                )
            ],
        }
        # Telemetry keys appear only when their subsystem ran, keeping the
        # default payload identical to the pre-telemetry shape.
        if self.metrics is not None:
            summary["metrics"] = self.metrics
        if self.journeys is not None:
            summary["journeys"] = self.journeys
        if self.audit_events_dropped is not None:
            summary["audit_events_dropped"] = self.audit_events_dropped
        if self.trace_records_dropped is not None:
            summary["trace_records_dropped"] = self.trace_records_dropped
        return summary

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"scenario {self.scenario_name!r}: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({self.end_reason.value} after {format_time(self.duration_ns)})"
        ]
        if self.stop_time_ns is not None:
            lines.append(
                f"  STOP fired on {self.stop_node} at {format_time(self.stop_time_ns)}"
            )
        if self.unreachable_nodes:
            lines.append(
                "  unreachable nodes (degraded run): "
                + ", ".join(sorted(self.unreachable_nodes))
            )
        if self.failed_nodes:
            lines.append("  scripted-FAIL nodes: " + ", ".join(sorted(self.failed_nodes)))
        for record in sorted(
            self.crash_timeline, key=lambda r: (r.crash_time_ns, r.node)
        ):
            lines.append(f"  lifecycle: {record.render()}")
        for note in self.control_errors:
            lines.append(f"  control plane: {note}")
        for error in self.errors:
            lines.append(f"  {error.render()}")
        for node in sorted(self.counters):
            pairs = ", ".join(f"{k}={v}" for k, v in self.counters[node].items())
            lines.append(f"  {node}: {pairs}")
        if self.journeys:
            count = len(self.journeys)
            lines.append(
                f"  {count} frame journey{'s' if count != 1 else ''} "
                f"reconstructed (repro analyze)"
            )
        if self.audit_events_dropped:
            lines.append(
                f"  WARNING: audit log saturated, "
                f"{self.audit_events_dropped} events dropped — the audit "
                f"trail is truncated"
            )
        if self.trace_records_dropped:
            lines.append(
                f"  WARNING: trace capture saturated, "
                f"{self.trace_records_dropped} frames dropped — journeys "
                f"may be incomplete"
            )
        return "\n".join(lines)
