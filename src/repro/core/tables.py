"""The six tables of the VirtualWire engine (paper §5.1, Fig 3).

The FSL compiler turns a script into one :class:`CompiledProgram` holding:

* **filter table** — ordered packet definitions (first match wins, §6.1);
* **node table** — hostname → (MAC, IP);
* **counter table** — event counters and node-local variables, each with a
  home node and the term ids its changes must re-evaluate;
* **term table** — boolean relations between two counters or a counter and
  a constant, with the condition ids each term feeds;
* **condition table** — logical expressions over terms, with the
  (node, action) pairs to trigger when satisfied;
* **action table** — fault injections and counter manipulations.

Exactly as in the paper, the *entire* program is shipped to every node even
though each node touches only a subset of the entries.
"""

from __future__ import annotations

import enum
import hashlib
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import FslCompileError, TableError
from ..net.addresses import IpAddress, MacAddress

# ---------------------------------------------------------------------------
# Filter table
# ---------------------------------------------------------------------------

#: Largest plausible frame a filter tuple may read from: a jumbo Ethernet
#: frame (9000-byte payload + 14-byte header + 4-byte FCS).  A tuple whose
#: ``offset + nbytes`` exceeds this can never match real traffic and is a
#: script bug, so it is rejected at construction instead of silently
#: classifying nothing.
MAX_FILTER_REACH = 9018


@dataclass(frozen=True)
class VarRef:
    """A run-time-bound variable appearing as a filter pattern (paper Fig 2:

    ``(38 4 SeqNoData)``).  The first matching packet binds the variable to
    the bytes at the tuple's offset; later packets must carry equal bytes.
    """

    name: str


@dataclass(frozen=True)
class FilterTuple:
    """One (offset, nbytes, [mask], pattern) component of a packet definition."""

    offset: int
    nbytes: int
    pattern: Union[int, VarRef]
    mask: Optional[int] = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise FslCompileError(f"negative filter offset {self.offset}")
        if self.nbytes not in (1, 2, 4, 6, 8):
            raise FslCompileError(f"unsupported filter width {self.nbytes}")
        if self.offset + self.nbytes > MAX_FILTER_REACH:
            raise TableError(
                f"filter tuple ({self.offset} {self.nbytes}) reads past any "
                f"plausible frame (limit {MAX_FILTER_REACH} bytes)"
            )
        limit = 1 << (8 * self.nbytes)
        if isinstance(self.pattern, int) and not 0 <= self.pattern < limit:
            raise FslCompileError(
                f"pattern {self.pattern:#x} does not fit in {self.nbytes} bytes"
            )
        if self.mask is not None and not 0 <= self.mask < limit:
            raise TableError(
                f"mask {self.mask:#x} does not fit the {self.nbytes}-byte field"
            )


@dataclass(frozen=True)
class FilterEntry:
    """A named packet definition: the AND of its tuples."""

    name: str
    tuples: Tuple[FilterTuple, ...]


def _validate_entry(entry: FilterEntry) -> None:
    """Re-run every tuple's construction-time checks for a table entry.

    ``FilterTuple.__post_init__`` already rejects invalid tuples, but the
    table cannot assume its entries came through the normal constructor
    (deserialisation, ``dataclasses.replace`` tricks), so it re-validates.
    """
    if not isinstance(entry, FilterEntry):
        raise TableError(f"filter table entry must be a FilterEntry, got {entry!r}")
    for tup in entry.tuples:
        tup.__post_init__()


class FilterTable:
    """Ordered packet definitions; classification takes the first match.

    Tuples are validated at construction (:class:`FilterTuple` rejects
    out-of-frame reads and oversized masks with a :class:`TableError`),
    and the table re-checks every entry it is handed so a table can never
    hold an invalid definition.

    The table carries a monotonically increasing :attr:`version` plus a
    slot for the compiled classification index
    (:class:`repro.core.classify.FilterIndex`).  Mutating the table
    through :meth:`append` bumps the version, which invalidates the cached
    index; code that mutates :attr:`entries` directly must call
    :meth:`invalidate_index` itself.
    """

    def __init__(self, entries: Sequence[FilterEntry] = ()) -> None:
        self.entries: List[FilterEntry] = list(entries)
        for entry in self.entries:
            _validate_entry(entry)
        self._by_name = {e.name: e for e in self.entries}
        if len(self._by_name) != len(self.entries):
            raise FslCompileError("duplicate packet definition name")
        self._version = 0
        #: cache slot owned by repro.core.classify.FilterIndex.for_table.
        self.cached_index = None

    @property
    def version(self) -> int:
        return self._version

    def append(self, entry: FilterEntry) -> None:
        """Add a definition at the end (lowest priority) of the table."""
        _validate_entry(entry)
        if entry.name in self._by_name:
            raise FslCompileError("duplicate packet definition name")
        self.entries.append(entry)
        self._by_name[entry.name] = entry
        self.invalidate_index()

    def invalidate_index(self) -> None:
        """Mark any compiled classification index as stale."""
        self._version += 1
        self.cached_index = None

    def compile_index(self):
        """Build (or fetch) the classification index for the current table.

        Called by the FSL compiler so the index exists at compile time
        rather than on the first classified packet.
        """
        from .classify import FilterIndex

        return FilterIndex.for_table(self)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> FilterEntry:
        try:
            return self._by_name[name]
        except KeyError:
            raise FslCompileError(f"unknown packet type {name!r}") from None

    def restricted_to(self, names: Set[str]) -> "FilterTable":
        """The table pruned to *names*, preserving order.

        A scenario activates only the packet definitions it references;
        without pruning, earlier unrelated definitions (like the
        retransmission filters in the paper's Fig 2) would steal the
        first-match classification.
        """
        return FilterTable([e for e in self.entries if e.name in names])


# ---------------------------------------------------------------------------
# Node table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeEntry:
    name: str
    mac: MacAddress
    ip: IpAddress


class NodeTable:
    """hostname → hardware/IP address mapping (paper Fig 2)."""

    def __init__(self, entries: Sequence[NodeEntry] = ()) -> None:
        self.entries: List[NodeEntry] = list(entries)
        self._by_name = {e.name: e for e in self.entries}
        self._by_mac = {e.mac: e for e in self.entries}
        #: packed-bytes key for the engine's per-frame endpoint lookup —
        #: avoids constructing a MacAddress per intercepted packet.
        self._by_mac_bytes = {bytes(e.mac.packed): e for e in self.entries}
        if len(self._by_name) != len(self.entries):
            raise FslCompileError("duplicate node name in NODE_TABLE")

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> NodeEntry:
        try:
            return self._by_name[name]
        except KeyError:
            raise FslCompileError(f"unknown node {name!r}") from None

    def by_mac(self, mac: MacAddress) -> Optional[NodeEntry]:
        return self._by_mac.get(mac)

    def by_mac_bytes(self, packed: bytes) -> Optional[NodeEntry]:
        """Entry for a raw 6-byte MAC slice (the frame hot path's lookup)."""
        return self._by_mac_bytes.get(packed)

    def names(self) -> List[str]:
        return [e.name for e in self.entries]


# ---------------------------------------------------------------------------
# Counter table
# ---------------------------------------------------------------------------


class Direction(enum.Enum):
    SEND = "SEND"
    RECV = "RECV"


class CounterKind(enum.Enum):
    EVENT = "event"  # counts send/receive events of a packet type
    LOCAL = "local"  # an explicitly manipulated variable on one node


@dataclass
class CounterSpec:
    """One entry of the counter table."""

    counter_id: int
    name: str
    kind: CounterKind
    home_node: str
    #: EVENT counters only: what to count.
    pkt_type: Optional[str] = None
    src_node: Optional[str] = None
    dst_node: Optional[str] = None
    direction: Optional[Direction] = None
    #: True when the counter is armed at scenario start (a counter that is
    #: never the target of ENABLE_CNTR starts enabled; see DESIGN.md §2.3).
    initially_enabled: bool = True
    #: term ids whose value may change when this counter changes.
    term_ids: List[int] = field(default_factory=list)
    #: nodes that need COUNTER_UPDATE control frames on change.
    mirror_subscribers: Set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# Term table
# ---------------------------------------------------------------------------


class RelOp(enum.Enum):
    GT = ">"
    LT = "<"
    GE = ">="
    LE = "<="
    EQ = "="
    NE = "!="

    def evaluate(self, lhs: int, rhs: int) -> bool:
        if self is RelOp.GT:
            return lhs > rhs
        if self is RelOp.LT:
            return lhs < rhs
        if self is RelOp.GE:
            return lhs >= rhs
        if self is RelOp.LE:
            return lhs <= rhs
        if self is RelOp.EQ:
            return lhs == rhs
        return lhs != rhs


@dataclass(frozen=True)
class Operand:
    """A term operand: either a counter reference or an integer constant."""

    counter_id: Optional[int] = None
    constant: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.counter_id is None) == (self.constant is None):
            raise FslCompileError("operand must be a counter or a constant")

    @property
    def is_counter(self) -> bool:
        return self.counter_id is not None


class TermMode(enum.Enum):
    #: counter-vs-constant: evaluated at the counter's home node, status
    #: broadcast to remote consumers only when it flips (paper §5.2).
    LOCAL_BROADCAST = "local-broadcast"
    #: counter-vs-counter: consumers mirror both counter values and
    #: evaluate locally (the paper's "value sent to the other node" case).
    MIRROR = "mirror"


@dataclass
class TermSpec:
    term_id: int
    lhs: Operand
    op: RelOp
    rhs: Operand
    mode: TermMode = TermMode.LOCAL_BROADCAST
    #: the node that owns evaluation in LOCAL_BROADCAST mode.
    home_node: str = ""
    #: nodes that evaluate conditions over this term.
    consumer_nodes: Set[str] = field(default_factory=set)
    condition_ids: List[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Condition table
# ---------------------------------------------------------------------------


class ConditionExpr:
    """Expression tree node: TERM leaf or AND/OR/NOT internal node."""

    __slots__ = ("op", "term_id", "children")

    def __init__(self, op: str, term_id: int = -1, children: Sequence["ConditionExpr"] = ()) -> None:
        if op not in ("TERM", "AND", "OR", "NOT", "TRUE"):
            raise FslCompileError(f"bad condition operator {op!r}")
        self.op = op
        self.term_id = term_id
        self.children = list(children)

    def __repr__(self) -> str:
        if self.op == "TRUE":
            return "TRUE"
        if self.op == "TERM":
            return f"T{self.term_id}"
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self.op}({inner})"

    def term_ids(self) -> List[int]:
        """All term ids referenced, in first-appearance order."""
        if self.op == "TERM":
            return [self.term_id]
        seen: List[int] = []
        for child in self.children:
            for tid in child.term_ids():
                if tid not in seen:
                    seen.append(tid)
        return seen

    def evaluate(self, term_values: Dict[int, bool]) -> bool:
        if self.op == "TRUE":
            return True
        if self.op == "TERM":
            return term_values.get(self.term_id, False)
        if self.op == "NOT":
            return not self.children[0].evaluate(term_values)
        if self.op == "AND":
            return all(c.evaluate(term_values) for c in self.children)
        return any(c.evaluate(term_values) for c in self.children)


@dataclass
class ConditionSpec:
    condition_id: int
    expr: ConditionExpr
    #: actions to trigger, as (node, action_id), in script order.
    triggers: List[Tuple[str, int]] = field(default_factory=list)
    #: True for the special (TRUE) initialisation rules.
    is_true_rule: bool = False
    #: source line, for error reports.
    line: int = 0

    def nodes(self) -> Set[str]:
        return {node for node, _ in self.triggers}


# ---------------------------------------------------------------------------
# Action table
# ---------------------------------------------------------------------------


class ActionKind(enum.Enum):
    # Counter manipulation (paper Table I).
    ASSIGN_CNTR = "ASSIGN_CNTR"
    ENABLE_CNTR = "ENABLE_CNTR"
    DISABLE_CNTR = "DISABLE_CNTR"
    INCR_CNTR = "INCR_CNTR"
    DECR_CNTR = "DECR_CNTR"
    RESET_CNTR = "RESET_CNTR"
    SET_CURTIME = "SET_CURTIME"
    ELAPSED_TIME = "ELAPSED_TIME"
    # Fault injection / scenario control (paper Table II).
    DROP = "DROP"
    DELAY = "DELAY"
    REORDER = "REORDER"
    DUP = "DUP"
    MODIFY = "MODIFY"
    FAIL = "FAIL"
    CRASH = "CRASH"
    RESTART = "RESTART"
    STOP = "STOP"
    FLAG_ERROR = "FLAG_ERROR"


#: Fault kinds that apply to packets crossing the engine.
PACKET_FAULTS = {
    ActionKind.DROP,
    ActionKind.DELAY,
    ActionKind.REORDER,
    ActionKind.DUP,
    ActionKind.MODIFY,
}

#: Counter-manipulation kinds.
COUNTER_ACTIONS = {
    ActionKind.ASSIGN_CNTR,
    ActionKind.ENABLE_CNTR,
    ActionKind.DISABLE_CNTR,
    ActionKind.INCR_CNTR,
    ActionKind.DECR_CNTR,
    ActionKind.RESET_CNTR,
    ActionKind.SET_CURTIME,
    ActionKind.ELAPSED_TIME,
}


@dataclass
class ActionSpec:
    action_id: int
    kind: ActionKind
    #: node where the action executes.
    node: str
    #: counter actions.
    counter_id: Optional[int] = None
    value: int = 0
    #: packet faults: what to match.
    pkt_type: Optional[str] = None
    src_node: Optional[str] = None
    dst_node: Optional[str] = None
    direction: Optional[Direction] = None
    #: DELAY: duration in ns (jiffy-quantised at execution time).
    delay_ns: int = 0
    #: REORDER: how many packets to buffer and the release permutation
    #: (1-based indices; empty means "reverse").
    reorder_count: int = 0
    reorder_order: Tuple[int, ...] = ()
    #: MODIFY: explicit patches as (offset, bytes); empty means "random".
    patches: Tuple[Tuple[int, bytes], ...] = ()
    #: FAIL/CRASH: the node to crash (also stored in .node).
    #: RESTART: the crashed node to reboot.  Stored separately from .node
    #: because the action *executes* at the rule's home node (the crashed
    #: node cannot run its own restart), ``delay_ns`` carrying the boot
    #: delay.
    target_node: Optional[str] = None
    #: the condition this action belongs to (filled by the compiler).
    condition_id: int = -1

    @property
    def is_packet_fault(self) -> bool:
        return self.kind in PACKET_FAULTS

    @property
    def is_counter_action(self) -> bool:
        return self.kind in COUNTER_ACTIONS


# ---------------------------------------------------------------------------
# The compiled program
# ---------------------------------------------------------------------------


@dataclass
class CompiledProgram:
    """Everything a node's FIE/FAE needs, produced by the FSL compiler."""

    scenario_name: str
    #: inactivity window in ns; 0 means "no declared timeout" (ending by
    #: quiescence is then a normal end rather than a failure).
    timeout_ns: int
    filters: FilterTable
    nodes: NodeTable
    counters: List[CounterSpec]
    terms: List[TermSpec]
    conditions: List[ConditionSpec]
    actions: List[ActionSpec]
    #: names of VAR declarations used by filter tuples.
    variables: Tuple[str, ...] = ()

    def counter_by_name(self, name: str) -> CounterSpec:
        for spec in self.counters:
            if spec.name == name:
                return spec
        raise FslCompileError(f"unknown counter {name!r}")

    def table_sizes(self) -> Dict[str, int]:
        """Entry counts per table (for INIT control frames and reports)."""
        return {
            "filters": len(self.filters),
            "nodes": len(self.nodes),
            "counters": len(self.counters),
            "terms": len(self.terms),
            "conditions": len(self.conditions),
            "actions": len(self.actions),
        }

    def _canonical_rendering(self) -> bytes:
        """Deterministic byte rendering of all six tables.  Every
        constituent has a value-based ``repr``, so equal programs render
        identically in every process and Python build."""
        parts: List[str] = [self.scenario_name, str(self.timeout_ns)]
        parts.extend(repr(e) for e in self.filters.entries)
        parts.extend(repr(e) for e in self.nodes.entries)
        parts.extend(repr(c) for c in self.counters)
        parts.extend(repr(t) for t in self.terms)
        parts.extend(repr(c) for c in self.conditions)
        parts.extend(repr(a) for a in self.actions)
        parts.extend(self.variables)
        return "\x1f".join(parts).encode("utf-8")

    def checksum(self) -> int:
        """CRC-32 over a canonical rendering of all six tables.

        Carried in the INIT control frame (field ``b``) and re-computed by
        the receiving engine before the tables are armed, so a corrupted
        table shipment is NACKed instead of silently producing a scenario
        that tests the wrong thing.
        """
        return zlib.crc32(self._canonical_rendering())

    #: diagnostic source-line attributes, masked out of the content hash so
    #: whitespace-only script edits do not change a program's address.
    _LINE_ATTR = re.compile(rb"\bline=\d+")

    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical table rendering.

        The program's content address: two compilations of the same script
        text (even in different processes) share it, and any table-visible
        edit changes it.  Source line numbers are masked first — they are
        diagnostics, not behaviour — so reformatting a script does not move
        its address.  The sweep result cache and campaign journal key rows
        on it (``repro.sweep.spec.task_fingerprint``), so editing one
        scenario dirties exactly the cells that compiled from it.
        """
        rendering = self._LINE_ATTR.sub(b"line=_", self._canonical_rendering())
        return hashlib.sha256(rendering).hexdigest()
