"""Systematic fault-matrix execution.

The paper's §1 motivation: verifying Rether meant *"enumerate all possible
combinations of node/link failures, and check [the] implementation's
reactions under each of these failure scenarios"* — days of manual work
per case.  With scripted scenarios the enumeration itself can be
automated: a :class:`FaultMatrix` takes a list of (name, script) cells —
typically from :mod:`repro.core.autogen` — runs each against a freshly
built testbed, and aggregates the verdicts into one report, the regression
artifact the paper envisions.

Each cell gets a *fresh* testbed (via the caller's factory) so faults
cannot leak between cells and every run stays deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..sim import format_time, seconds
from .report import ScenarioReport
from .testbed import Testbed

#: Builds a testbed and returns (testbed, workload callable or None).
TestbedFactory = Callable[[], Tuple[Testbed, Optional[Callable[[], None]]]]


@dataclass
class MatrixCell:
    """Result of one scenario in the matrix."""

    name: str
    report: ScenarioReport
    wall_seconds: float

    @property
    def passed(self) -> bool:
        return self.report.passed

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        detail = self.report.end_reason.value
        if self.report.errors:
            detail += f", {len(self.report.errors)} error(s)"
        return (
            f"{self.name:<28} {verdict:<5} ({detail}, "
            f"{format_time(self.report.duration_ns)} virtual, "
            f"{self.wall_seconds:.2f}s wall)"
        )


@dataclass
class MatrixReport:
    """Aggregate over all cells."""

    cells: List[MatrixCell] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    @property
    def failures(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if not cell.passed]

    def render(self) -> str:
        lines = [cell.summary() for cell in self.cells]
        verdict = "ALL PASS" if self.passed else f"{len(self.failures)} FAILED"
        lines.append(f"{'-' * 28} {verdict} ({len(self.cells)} scenarios)")
        return "\n".join(lines)


class FaultMatrix:
    """Runs a family of scenarios, one fresh testbed per cell."""

    def __init__(
        self,
        factory: TestbedFactory,
        max_time: int = seconds(60),
        stop_on_failure: bool = False,
    ) -> None:
        self.factory = factory
        self.max_time = max_time
        self.stop_on_failure = stop_on_failure

    def run(self, scenarios: Dict[str, str]) -> MatrixReport:
        """Execute every (name -> script) cell; returns the aggregate."""
        matrix = MatrixReport()
        for name, script in scenarios.items():
            started = time.perf_counter()
            testbed, workload = self.factory()
            report = testbed.run_scenario(
                script, workload=workload, max_time=self.max_time
            )
            matrix.cells.append(
                MatrixCell(name, report, time.perf_counter() - started)
            )
            if self.stop_on_failure and not report.passed:
                break
        return matrix

    def run_named(self, cells: Iterable[Tuple[str, str]]) -> MatrixReport:
        """Like :meth:`run` but accepts an iterable of (name, script)."""
        return self.run(dict(cells))
