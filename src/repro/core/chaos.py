"""Adversarial conditions for the orchestration channel itself.

The reliability layer (:mod:`repro.core.reliable`) exists so that scenarios
keep their semantics over *any* control path, including ones the experiment
degrades.  :class:`ControlLossLayer` is the test harness for that claim: a
frame layer spliced **below** the FIE/FAE that silently discards a seeded
fraction of VirtualWire control frames (EtherType 0x88B5) in either
direction, leaving protocol-under-test traffic untouched.

Typical use (tests, benchmarks)::

    tb = Testbed(seed=9)
    ...
    tb.install_virtualwire(control="node1")
    lossy = ControlLossLayer(tb.sim, rate=0.2)
    tb.hosts["node2"].chain.splice_above_driver(lossy)

Being below the engine, the drop hits the wire-bound copy of every control
frame — INIT, ACKs and retransmissions included — exactly like a lossy
link would, but deterministically replayable from the simulator seed.
"""

from __future__ import annotations

from ..errors import ScenarioError
from ..net.bytesutil import read_u16
from ..net.frame import ETHERTYPE_VW_CONTROL
from ..sim import Simulator
from ..stack.layers import FrameLayer


class ControlLossLayer(FrameLayer):
    """Drops a fraction of control-plane frames crossing this host."""

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        drop_send: bool = True,
        drop_recv: bool = True,
        name: str = "control-loss",
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ScenarioError(f"loss rate must be within [0, 1], got {rate}")
        super().__init__(name)
        self.rate = rate
        self.drop_send = drop_send
        self.drop_recv = drop_recv
        self.dropped_send = 0
        self.dropped_recv = 0
        self._rng = None
        self._sim = sim

    def attached(self) -> None:
        host = self.host.name if self.host is not None else "?"
        self._rng = self._sim.random.stream(f"chaos:control-loss:{host}")

    def _lose(self, frame_bytes: bytes, enabled: bool) -> bool:
        if not enabled or self.rate <= 0.0:
            return False
        if len(frame_bytes) < 14 or read_u16(frame_bytes, 12) != ETHERTYPE_VW_CONTROL:
            return False
        return self._rng.chance(self.rate)

    def on_send(self, frame_bytes: bytes) -> None:
        if self._lose(frame_bytes, self.drop_send):
            self.dropped_send += 1
            return
        self.pass_down(frame_bytes)

    def on_receive(self, frame_bytes: bytes) -> None:
        if self._lose(frame_bytes, self.drop_recv):
            self.dropped_recv += 1
            return
        self.pass_up(frame_bytes)

    @property
    def dropped(self) -> int:
        return self.dropped_send + self.dropped_recv

    def __repr__(self) -> str:
        return f"ControlLossLayer(rate={self.rate}, dropped={self.dropped})"
