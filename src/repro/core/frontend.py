"""The programming front-end on the control node (paper §3.2, §5.1).

The front-end parses the user's FSL script, compiles it into the six
tables, ships them to every participating FIE/FAE over the control plane
(INIT, checksummed and acknowledged), broadcasts START once all nodes
acknowledged, then watches for STOP/ERROR reports, the inactivity timeout,
and — through the reliable channel — every node's liveness.

Reliability (see docs/CONTROL_PLANE.md): all orchestration rides the
:mod:`repro.core.reliable` ARQ layer, so lost INIT/START/COUNTER_UPDATE
frames are retransmitted instead of hanging the run.  The front-end
additionally heartbeats every remote node while a scenario runs; a node
whose retry budget is exhausted without a scripted FAIL is declared
unreachable and the scenario concludes in a degraded mode
(:class:`EndReason.NODE_UNREACHABLE` / :class:`EndReason.CONTROL_TIMEOUT`)
naming the dead node, instead of spinning until ``max_time``.

Like the paper's implementation, the whole table set goes to every node.
Two orchestration shortcuts are taken relative to a multi-machine
deployment and documented in DESIGN.md: table *contents* travel by shared
reference (the INIT frame carries the program id and a table checksum that
the receiver verifies), and the inactivity monitor reads a shared activity
timestamp instead of sampling nodes over the network.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, List, Optional, Set

from ..errors import ScenarioError
from ..net.addresses import MacAddress
from ..sim import NS_PER_MS, NS_PER_SEC, Simulator
from .engine import VirtualWireEngine
from .report import CrashRecord, EndReason, ErrorRecord, ScenarioReport
from .tables import ActionKind, CompiledProgram

#: Inactivity window applied when the scenario declares no timeout.
DEFAULT_INACTIVITY_NS = 2 * NS_PER_SEC
#: Grace period between the last START acknowledgement and the workload.
WORKLOAD_GRACE_NS = 1 * NS_PER_MS
#: Liveness probe period while a scenario is running.  Combined with the
#: channel's retry budget (~51 ms of silence) a dead node is detected
#: within roughly one interval plus the budget.
HEARTBEAT_INTERVAL_NS = 200 * NS_PER_MS
#: INIT re-sends tolerated per node after checksum NACKs before the
#: scenario is abandoned with CONTROL_TIMEOUT.
MAX_INIT_RESENDS = 3


class NodeLifecycle(enum.Enum):
    """Front-end view of one scenario node (docs/NODE_LIFECYCLE.md).

    ``ALIVE → CRASHED → REBOOTING → RESYNCING → ALIVE``: a node leaves
    ALIVE through a scripted CRASH or FAIL, re-enters through the
    REGISTER → INIT → NODE_RESET → START rejoin handshake.
    """

    ALIVE = "alive"
    CRASHED = "crashed"
    REBOOTING = "rebooting"
    RESYNCING = "resyncing"


class Frontend:
    """Scenario orchestration running on the control node."""

    def __init__(
        self,
        sim: Simulator,
        control_engine: VirtualWireEngine,
        engines: Dict[str, VirtualWireEngine],
    ) -> None:
        self.sim = sim
        self.control_engine = control_engine
        self.engines = dict(engines)
        self._registry: Dict[int, CompiledProgram] = {}
        self._program_ids = itertools.count(1)
        control_engine.frontend = self
        for name, engine in self.engines.items():
            engine.program_registry = self._registry
            engine.activity_hook = self.touch
            # Crash notification shortcut (DESIGN.md): like activity_hook
            # this is orchestration bookkeeping, not protocol traffic — a
            # crashing node cannot announce its own death on the wire.
            engine.lifecycle_hook = lambda kind, node=name: self.node_crashed(
                node, kind
            )

        # Per-scenario state.
        self.program: Optional[CompiledProgram] = None
        self.program_id = 0
        self._pending_acks: Set[str] = set()
        self._pending_start_acks: Set[str] = set()
        self._workload_scheduled = False
        self._init_resends: Dict[str, int] = {}
        self._heartbeat = None
        self.started = False
        self.start_time = 0
        self.last_activity = 0
        self.errors: list = []
        self.control_errors: List[str] = []
        self.unreachable_nodes: List[str] = []
        self.failed_nodes: List[str] = []
        self.stop_node: Optional[str] = None
        self.stop_time: Optional[int] = None
        self.finished = False
        self.end_reason: Optional[EndReason] = None
        self.on_running: Optional[Callable[[], None]] = None
        self.inactivity_ns = DEFAULT_INACTIVITY_NS
        #: per-node crash/restart state machine (docs/NODE_LIFECYCLE.md).
        self.lifecycle: Dict[str, NodeLifecycle] = {}
        self.crash_timeline: List[CrashRecord] = []
        self._active_crash: Dict[str, CrashRecord] = {}
        #: per-resyncing-node outstanding handshake tokens ("init",
        #: "reset:<peer>") that gate its START.
        self._resync: Dict[str, Set[str]] = {}
        #: RESTART requests that arrived before the target's CRASH did.
        self._pending_restart: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Scenario lifecycle
    # ------------------------------------------------------------------

    def start_scenario(
        self,
        program: CompiledProgram,
        on_running: Optional[Callable[[], None]] = None,
        inactivity_ns: Optional[int] = None,
    ) -> None:
        """Distribute *program* and begin execution."""
        for node in program.nodes.names():
            if node not in self.engines:
                raise ScenarioError(
                    f"scenario references node {node!r} but no engine is "
                    f"installed there"
                )
        control_name = None
        for node in program.nodes.names():
            if self._is_control_node(program.nodes.get(node).mac):
                control_name = node
        for action in program.actions:
            if (
                action.kind in (ActionKind.CRASH, ActionKind.RESTART)
                and action.target_node is not None
                and action.target_node == control_name
            ):
                raise ScenarioError(
                    f"{action.kind.value}({control_name}) targets the control "
                    f"node; the orchestrator cannot crash or reboot itself"
                )
        self.program = program
        self.program_id = next(self._program_ids)
        self._registry[self.program_id] = program
        self._pending_acks = set(program.nodes.names())
        self._pending_start_acks = set()
        self._workload_scheduled = False
        self._init_resends = {}
        self.started = False
        self.start_time = 0
        self.last_activity = self.sim.now
        self.errors = []
        self.control_errors = []
        self.unreachable_nodes = []
        self.failed_nodes = []
        self.stop_node = None
        self.stop_time = None
        self.finished = False
        self.end_reason = None
        self.on_running = on_running
        self.lifecycle = {
            node: NodeLifecycle.ALIVE for node in program.nodes.names()
        }
        self.crash_timeline = []
        self._active_crash = {}
        self._resync = {}
        self._pending_restart = {}
        if inactivity_ns is not None:
            self.inactivity_ns = inactivity_ns
        elif program.timeout_ns > 0:
            self.inactivity_ns = program.timeout_ns
        else:
            self.inactivity_ns = DEFAULT_INACTIVITY_NS
        # A fresh scenario starts a fresh control-plane epoch: sequence
        # numbers, dedup state and retransmit timers all reset.
        for engine in self.engines.values():
            engine.channel.reset()
            engine.scripted_failure = False
        checksum = program.checksum()
        for node in program.nodes.names():
            mac = program.nodes.get(node).mac
            if self._is_control_node(mac):
                # The control node participates too: install directly.
                self.control_engine.install_program(program)
                self._pending_acks.discard(node)
            else:
                self.control_engine.send_init(mac, self.program_id, checksum)
        if not self._pending_acks:
            self._broadcast_start()

    def _is_control_node(self, mac: MacAddress) -> bool:
        return self.control_engine.host is not None and mac == self.control_engine.host.mac

    def on_init_ack(self, src_mac: MacAddress, program_id: int) -> None:
        if program_id != self.program_id or self.program is None:
            return
        entry = self.program.nodes.by_mac(src_mac)
        if entry is None:
            return
        if entry.name in self._resync:
            self._resync_init_acked(entry.name)
            return
        self._pending_acks.discard(entry.name)
        if not self._pending_acks and not self.started:
            self._broadcast_start()

    def on_init_nack(self, src_mac: MacAddress, program_id: int, computed: int) -> None:
        """A node refused INIT: its view of the tables fails the checksum."""
        if program_id != self.program_id or self.program is None or self.finished:
            return
        entry = self.program.nodes.by_mac(src_mac)
        node = entry.name if entry is not None else str(src_mac)
        expected = self.program.checksum()
        self.control_errors.append(
            f"{node}: INIT checksum mismatch (expected {expected:#010x}, "
            f"node computed {computed:#010x})"
        )
        resends = self._init_resends.get(node, 0)
        if resends >= MAX_INIT_RESENDS:
            self.unreachable_nodes.append(node)
            self._finish(EndReason.CONTROL_TIMEOUT)
            return
        self._init_resends[node] = resends + 1
        record = self._active_crash.get(node)
        if record is not None and node in self._resync:
            record.resync_rounds += 1
        self.control_engine.send_init(src_mac, self.program_id, expected)

    def _broadcast_start(self) -> None:
        assert self.program is not None
        self.started = True
        self.start_time = self.sim.now
        self.last_activity = self.sim.now
        remote: List[str] = []
        for node in self.program.nodes.names():
            mac = self.program.nodes.get(node).mac
            if self._is_control_node(mac):
                self.control_engine.start_scenario()
            else:
                remote.append(node)
        # Gate the workload on every remote engine acknowledging START, so
        # fault injection is armed everywhere before protocol traffic
        # begins even when the START frame itself needs retransmitting.
        self._pending_start_acks = set(remote)
        for node in remote:
            mac = self.program.nodes.get(node).mac
            self.control_engine.send_start(
                mac, self.program_id, on_acked=lambda n=node: self._on_start_acked(n)
            )
        self._heartbeat = self.sim.every(
            HEARTBEAT_INTERVAL_NS, self._heartbeat_tick, "frontend:heartbeat"
        )
        if not self._pending_start_acks:
            self._schedule_workload()

    def _on_start_acked(self, node: str) -> None:
        self._pending_start_acks.discard(node)
        if not self._pending_start_acks:
            self._schedule_workload()

    def _schedule_workload(self) -> None:
        if self._workload_scheduled or self.finished:
            return
        self._workload_scheduled = True
        if self.on_running is not None:
            self.sim.after(WORKLOAD_GRACE_NS, self.on_running, "frontend:workload")

    def shutdown(self) -> None:
        """Broadcast SHUTDOWN so every engine stops intercepting."""
        if self.program is None:
            return
        for node in self.program.nodes.names():
            mac = self.program.nodes.get(node).mac
            if self._is_control_node(mac):
                self.control_engine.disable()
            else:
                self.control_engine.send_shutdown(mac, self.program_id)

    # ------------------------------------------------------------------
    # Liveness supervision
    # ------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self.finished or self.program is None:
            return
        for node in self.program.nodes.names():
            if node in self.unreachable_nodes or node in self.failed_nodes:
                continue
            if self.lifecycle.get(node) in (
                NodeLifecycle.REBOOTING,
                NodeLifecycle.RESYNCING,
            ):
                # Mid-rejoin: the node is expected silent (REBOOTING) or
                # already exchanging INIT/START with us (RESYNCING).
                continue
            mac = self.program.nodes.get(node).mac
            if self._is_control_node(mac):
                continue
            self.control_engine.send_heartbeat(mac)

    def node_unreachable(self, peer_mac: MacAddress) -> None:
        """The control engine's retry budget toward *peer_mac* ran out."""
        if self.finished or self.program is None:
            return
        entry = self.program.nodes.by_mac(peer_mac)
        node = entry.name if entry is not None else str(peer_mac)
        state = self.lifecycle.get(node)
        if state is not None and state is not NodeLifecycle.ALIVE:
            # The script took this node down (CRASH/FAIL) or it is mid
            # rejoin: silence is the experiment, not an orchestration
            # failure — no false NODE_UNREACHABLE.
            if node not in self.failed_nodes:
                self.failed_nodes.append(node)
            return
        engine = self.engines.get(node)
        if engine is not None and engine.scripted_failure:
            # The script killed this node on purpose (FAIL fault): its
            # silence is the experiment, not an orchestration failure.
            if node not in self.failed_nodes:
                self.failed_nodes.append(node)
            return
        if node not in self.unreachable_nodes:
            self.unreachable_nodes.append(node)
        self._finish(
            EndReason.NODE_UNREACHABLE if self.started else EndReason.CONTROL_TIMEOUT
        )

    # ------------------------------------------------------------------
    # Crash/restart lifecycle (docs/NODE_LIFECYCLE.md)
    # ------------------------------------------------------------------

    def node_crashed(self, node: str, kind: str) -> None:
        """A scripted CRASH (*kind* ``"crash"``) or FAIL (``"fail"``) fired.

        Both open a :class:`CrashRecord` and move the node to CRASHED so a
        later RESTART can find it.  A CRASH additionally tears down the
        control node's channel state toward the dead peer at once — its
        TCP-equivalent connections died with the host, so retransmitting
        into the void (and eventually declaring the node unreachable)
        would model a channel that no longer exists.  FAIL keeps the
        paper's original NIC-down-only semantics: the control plane only
        learns of the silence through its retry budget.
        """
        if self.finished or self.program is None:
            return
        if self.lifecycle.get(node) is not NodeLifecycle.ALIVE:
            return
        record = CrashRecord(node=node, kind=kind, crash_time_ns=self.sim.now)
        self.crash_timeline.append(record)
        self._active_crash[node] = record
        self.lifecycle[node] = NodeLifecycle.CRASHED
        if kind == "crash":
            if node not in self.failed_nodes:
                self.failed_nodes.append(node)
            entry = self.program.nodes.get(node)
            if entry is not None and self.control_engine.host is not None:
                self.control_engine.host.on_peer_reboot(entry.mac)
        delay_ns = self._pending_restart.pop(node, None)
        if delay_ns is not None:
            self.schedule_restart(node, delay_ns)

    def schedule_restart(self, node: str, delay_ns: int) -> None:
        """A RESTART action fired: reboot *node* after *delay_ns*.

        RESTART arms a reboot rather than demanding the node already be
        down: the CRASH of a ``CRASH(n); RESTART(n, d)`` rule executes at
        *n* itself while the RESTART request travels from the rule's home
        node, so either may reach the front-end first.  A request for a
        still-ALIVE node is therefore held and fires when its crash
        notification lands.
        """
        if self.finished or self.program is None:
            return
        state = self.lifecycle.get(node)
        if state is NodeLifecycle.ALIVE:
            self._pending_restart.setdefault(node, delay_ns)
            return
        if state is not NodeLifecycle.CRASHED:
            self.control_errors.append(
                f"RESTART({node}) ignored: node is "
                f"{state.value if state is not None else 'unknown'}, not crashed"
            )
            return
        # Claim the reboot now so a duplicate RESTART is one reboot.
        self.lifecycle[node] = NodeLifecycle.REBOOTING
        self.sim.after(delay_ns, lambda: self._reboot_node(node), "frontend:restart")

    def _reboot_node(self, node: str) -> None:
        if self.finished or self.program is None:
            return
        if self.lifecycle.get(node) is not NodeLifecycle.REBOOTING:
            return
        record = self._active_crash.get(node)
        if record is not None:
            record.reboot_time_ns = self.sim.now
        # Our own channel state toward the node predates its reboot (for a
        # FAIL it still holds the pre-crash sequence numbers and the dead
        # marking): reset it so the REGISTER from sequence 1 is accepted.
        entry = self.program.nodes.get(node)
        if entry is not None and self.control_engine.host is not None:
            self.control_engine.host.on_peer_reboot(entry.mac)
        engine = self.engines.get(node)
        if engine is not None and engine.host is not None:
            engine.host.reboot()

    def on_register(self, src_mac: MacAddress) -> None:
        """A rebooted node's blank engine asked to rejoin the scenario."""
        if self.finished or self.program is None:
            return
        entry = self.program.nodes.by_mac(src_mac)
        if entry is None or self.lifecycle.get(entry.name) is not NodeLifecycle.REBOOTING:
            return
        node = entry.name
        self.lifecycle[node] = NodeLifecycle.RESYNCING
        record = self._active_crash.get(node)
        if record is not None:
            record.register_time_ns = self.sim.now
            record.resync_rounds = 1
        # Tables first: peers only resend shared state once the node can
        # hold it (NODE_RESET goes out on this node's INIT_ACK).
        self._resync[node] = {"init"}
        self.control_engine.send_init(
            src_mac, self.program_id, self.program.checksum()
        )

    def _resync_init_acked(self, node: str) -> None:
        """The rebooted node verified and installed the tables."""
        waiting = self._resync.get(node)
        if waiting is None or "init" not in waiting:
            return
        waiting.discard("init")
        index = self._node_index(node)
        for peer in self.program.nodes.names():
            if peer == node:
                continue
            peer_mac = self.program.nodes.get(peer).mac
            if self._is_control_node(peer_mac):
                continue
            if self.lifecycle.get(peer) is not NodeLifecycle.ALIVE:
                continue
            # Every live peer must restart its channel epoch toward the
            # rebooted node (and replay its shared state) before START.
            waiting.add(f"reset:{peer}")
            self.control_engine.send_node_reset(
                peer_mac,
                index,
                on_acked=lambda n=node, p=peer: self._on_reset_acked(n, p),
            )
        # The control node's own shared state replays directly.
        if self.control_engine.runtime is not None:
            self.control_engine.runtime.resend_state_to(node)
        self._maybe_start_resynced(node)

    def _on_reset_acked(self, node: str, peer: str) -> None:
        waiting = self._resync.get(node)
        if waiting is None:
            return
        waiting.discard(f"reset:{peer}")
        self._maybe_start_resynced(node)

    def _maybe_start_resynced(self, node: str) -> None:
        waiting = self._resync.get(node)
        if waiting is None or waiting or self.finished:
            return
        del self._resync[node]
        mac = self.program.nodes.get(node).mac
        self.control_engine.send_start(
            mac, self.program_id, on_acked=lambda n=node: self._node_rejoined(n)
        )

    def _node_rejoined(self, node: str) -> None:
        """The rebooted node acknowledged START: it is classifying again."""
        if self.finished:
            return
        self.lifecycle[node] = NodeLifecycle.ALIVE
        record = self._active_crash.pop(node, None)
        if record is not None:
            record.rejoin_time_ns = self.sim.now
        if node in self.failed_nodes:
            self.failed_nodes.remove(node)
        engine = self.engines.get(node)
        if engine is not None:
            # Future silence from this node is a real failure again.
            engine.scripted_failure = False

    def _node_index(self, node: str) -> int:
        for index, entry in enumerate(self.program.nodes.entries):
            if entry.name == node:
                return index
        raise ScenarioError(f"node {node!r} is not part of the scenario")

    # ------------------------------------------------------------------
    # Reports from engines
    # ------------------------------------------------------------------

    def touch(self) -> None:
        """A classified packet event happened somewhere in the testbed."""
        self.last_activity = self.sim.now

    def record_error(self, node: str, condition_id: int, action_id: int) -> None:
        line = 0
        if self.program is not None and condition_id < len(self.program.conditions):
            line = self.program.conditions[condition_id].line
        self.errors.append(
            ErrorRecord(node, condition_id, action_id, self.sim.now, line)
        )

    def record_stop(self, node: str, condition_id: int) -> None:
        if self.stop_time is None:
            self.stop_node = node
            self.stop_time = self.sim.now
        self._finish(EndReason.STOP)

    # ------------------------------------------------------------------
    # Progress monitoring
    # ------------------------------------------------------------------

    def poll(self) -> None:
        """Called by the run loop after every event: check the timeout."""
        if self.finished or not self.started:
            return
        if self.sim.now - self.last_activity > self.inactivity_ns:
            self._finish(EndReason.INACTIVITY)

    def _finish(self, reason: EndReason) -> None:
        if not self.finished:
            self.finished = True
            self.end_reason = reason
            if self._heartbeat is not None:
                self._heartbeat.stop()
                self._heartbeat = None
            self.shutdown()

    def force_finish(self, reason: EndReason) -> None:
        """Run-loop bound reached: conclude with *reason*."""
        self._finish(reason)

    # ------------------------------------------------------------------
    # Report assembly
    # ------------------------------------------------------------------

    def build_report(self) -> ScenarioReport:
        assert self.program is not None, "no scenario was run"
        expects_stop = any(
            a.kind is ActionKind.STOP for a in self.program.actions
        )
        counters: Dict[str, Dict[str, int]] = {}
        engine_stats: Dict[str, Dict[str, int]] = {}
        for node in self.program.nodes.names():
            engine = self.engines.get(node)
            if engine is None:
                continue
            engine_stats[node] = engine.stats.as_dict()
            if engine.runtime is not None:
                counters[node] = engine.runtime.counters_snapshot()
        final_counters: Dict[str, int] = {}
        for spec in self.program.counters:
            home_view = counters.get(spec.home_node)
            if home_view is not None:
                final_counters[spec.name] = home_view[spec.name]
        return ScenarioReport(
            scenario_name=self.program.scenario_name,
            end_reason=self.end_reason or EndReason.QUIESCED,
            duration_ns=self.sim.now - self.start_time if self.started else 0,
            errors=list(self.errors),
            stop_node=self.stop_node,
            stop_time_ns=self.stop_time,
            expects_stop=expects_stop,
            declared_timeout=self.program.timeout_ns > 0,
            counters=counters,
            final_counters=final_counters,
            engine_stats=engine_stats,
            unreachable_nodes=list(self.unreachable_nodes),
            failed_nodes=list(self.failed_nodes),
            control_errors=list(self.control_errors),
            crash_timeline=list(self.crash_timeline),
        )
