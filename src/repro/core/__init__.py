"""VirtualWire itself: the paper's primary contribution.

FSL (the Fault Specification Language), the six-table compiler, the
per-node Fault Injection and Analysis Engine, the raw-Ethernet control
plane, the programming front-end, and the :class:`Testbed` facade.
"""

from .audit import AuditEvent, AuditLog
from .autogen import MessageFlow, ProtocolSpec, ScriptGenerator, rether_spec
from .chaos import ControlLossLayer
from .classify import (
    CLASSIFIER_KINDS,
    Classifier,
    ClassifierBase,
    FilterIndex,
    IndexedClassifier,
    VarStore,
    make_classifier,
)
from .control import FLAG_RELIABLE, ControlMessage, ControlType
from .reliable import INITIAL_RTO_NS, MAX_RETRIES, MAX_RTO_NS, ReliableControlPlane
from .lint import Finding, Severity, lint_program, lint_text
from .matrix import FaultMatrix, MatrixCell, MatrixReport
from .engine import EngineConfig, EngineStats, VirtualWireEngine
from .frontend import DEFAULT_INACTIVITY_NS, Frontend
from .fsl import compile_script, compile_text, parse_script
from .report import EndReason, ErrorRecord, ScenarioReport
from .runtime import EventStats, NodeRuntime
from .tables import (
    ActionKind,
    ActionSpec,
    CompiledProgram,
    ConditionExpr,
    ConditionSpec,
    CounterKind,
    CounterSpec,
    Direction,
    FilterEntry,
    FilterTable,
    FilterTuple,
    NodeEntry,
    NodeTable,
    Operand,
    RelOp,
    TermMode,
    TermSpec,
    VarRef,
)
from .testbed import Testbed

__all__ = [
    "ActionKind",
    "AuditEvent",
    "AuditLog",
    "ActionSpec",
    "CLASSIFIER_KINDS",
    "Classifier",
    "ClassifierBase",
    "CompiledProgram",
    "EngineConfig",
    "FilterIndex",
    "IndexedClassifier",
    "make_classifier",
    "ConditionExpr",
    "ConditionSpec",
    "ControlLossLayer",
    "ControlMessage",
    "ControlType",
    "FLAG_RELIABLE",
    "INITIAL_RTO_NS",
    "MAX_RETRIES",
    "MAX_RTO_NS",
    "ReliableControlPlane",
    "CounterKind",
    "CounterSpec",
    "DEFAULT_INACTIVITY_NS",
    "Direction",
    "EndReason",
    "EngineStats",
    "ErrorRecord",
    "EventStats",
    "FaultMatrix",
    "Finding",
    "MatrixCell",
    "MatrixReport",
    "MessageFlow",
    "ProtocolSpec",
    "ScriptGenerator",
    "Severity",
    "lint_program",
    "lint_text",
    "rether_spec",
    "FilterEntry",
    "FilterTable",
    "FilterTuple",
    "Frontend",
    "NodeEntry",
    "NodeRuntime",
    "NodeTable",
    "Operand",
    "RelOp",
    "ScenarioReport",
    "TermMode",
    "TermSpec",
    "Testbed",
    "VarRef",
    "VarStore",
    "VirtualWireEngine",
    "compile_script",
    "compile_text",
    "parse_script",
]
