"""VirtualWire itself: the paper's primary contribution.

FSL (the Fault Specification Language), the six-table compiler, the
per-node Fault Injection and Analysis Engine, the raw-Ethernet control
plane, the programming front-end, and the :class:`Testbed` facade.
"""

from .audit import AuditEvent, AuditLog
from .autogen import MessageFlow, ProtocolSpec, ScriptGenerator, rether_spec
from .classify import Classifier, VarStore
from .control import ControlMessage, ControlType
from .lint import Finding, Severity, lint_program, lint_text
from .matrix import FaultMatrix, MatrixCell, MatrixReport
from .engine import EngineStats, VirtualWireEngine
from .frontend import DEFAULT_INACTIVITY_NS, Frontend
from .fsl import compile_script, compile_text, parse_script
from .report import EndReason, ErrorRecord, ScenarioReport
from .runtime import EventStats, NodeRuntime
from .tables import (
    ActionKind,
    ActionSpec,
    CompiledProgram,
    ConditionExpr,
    ConditionSpec,
    CounterKind,
    CounterSpec,
    Direction,
    FilterEntry,
    FilterTable,
    FilterTuple,
    NodeEntry,
    NodeTable,
    Operand,
    RelOp,
    TermMode,
    TermSpec,
    VarRef,
)
from .testbed import Testbed

__all__ = [
    "ActionKind",
    "AuditEvent",
    "AuditLog",
    "ActionSpec",
    "Classifier",
    "CompiledProgram",
    "ConditionExpr",
    "ConditionSpec",
    "ControlMessage",
    "ControlType",
    "CounterKind",
    "CounterSpec",
    "DEFAULT_INACTIVITY_NS",
    "Direction",
    "EndReason",
    "EngineStats",
    "ErrorRecord",
    "EventStats",
    "FaultMatrix",
    "Finding",
    "MatrixCell",
    "MatrixReport",
    "MessageFlow",
    "ProtocolSpec",
    "ScriptGenerator",
    "Severity",
    "lint_program",
    "lint_text",
    "rether_spec",
    "FilterEntry",
    "FilterTable",
    "FilterTuple",
    "Frontend",
    "NodeEntry",
    "NodeRuntime",
    "NodeTable",
    "Operand",
    "RelOp",
    "ScenarioReport",
    "TermMode",
    "TermSpec",
    "Testbed",
    "VarRef",
    "VarStore",
    "VirtualWireEngine",
    "compile_script",
    "compile_text",
    "parse_script",
]
