"""Static analysis of compiled FSL programs.

The paper's workflow encourages large libraries of reusable scenario
scripts; this linter catches the silent mistakes that make a scenario
vacuous — the testing-tool equivalent of a test that always passes:

* ``unused-counter``     — declared but never read by a term nor written
                           by an action: dead weight, often a typo;
* ``never-counted``      — an event counter whose (pkt, src, dst, dir)
                           spec is self-contradictory (src == dst);
* ``shadowed-filter``    — a packet definition that can never classify
                           because an earlier entry matches a superset of
                           its packets (first match wins, §6.1);
* ``constant-condition`` — a rule whose condition only references
                           counters that nothing ever updates: it fires at
                           START or never;
* ``no-verdict``         — a scenario with neither FLAG_ERROR nor STOP:
                           it can only ever time out or quiesce, verifying
                           nothing;
* ``unbounded-scenario`` — a scenario that expects a STOP but declares no
                           timeout: a hung protocol stalls the run until
                           the caller's max-time fail-safe;
* ``dead-node-traffic``  — a rule after a FAIL/CRASH still depends on the
                           dead node observing traffic (an event counter
                           counted *at* that node) or arms a packet fault
                           there, with no RESTART ever rebooting it: that
                           part of the scenario can never happen.

Findings are advisory (the engine runs any compilable script); CI-style
users can fail on severity >= WARNING via :func:`lint_text`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set, Union

from .fsl import compile_text
from .tables import (
    ActionKind,
    CompiledProgram,
    CounterKind,
    FilterEntry,
    FilterTuple,
    VarRef,
)


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"

    def __lt__(self, other: "Severity") -> bool:
        order = [Severity.INFO, Severity.WARNING]
        return order.index(self) < order.index(other)


@dataclass(frozen=True)
class Finding:
    rule: str
    severity: Severity
    message: str
    subject: str = ""

    def render(self) -> str:
        return f"{self.severity.value}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _written_counters(program: CompiledProgram) -> Set[int]:
    return {
        action.counter_id
        for action in program.actions
        if action.is_counter_action and action.counter_id is not None
    }


def _read_counters(program: CompiledProgram) -> Set[int]:
    read: Set[int] = set()
    for term in program.terms:
        for operand in (term.lhs, term.rhs):
            if operand.is_counter:
                read.add(operand.counter_id)
    return read


def check_unused_counters(program: CompiledProgram) -> List[Finding]:
    findings = []
    touched = _read_counters(program) | _written_counters(program)
    for counter in program.counters:
        if counter.counter_id not in touched:
            findings.append(
                Finding(
                    "unused-counter",
                    Severity.WARNING,
                    f"counter {counter.name!r} is declared but never used "
                    f"by any term or action",
                    subject=counter.name,
                )
            )
    return findings


def check_never_counted(program: CompiledProgram) -> List[Finding]:
    findings = []
    for counter in program.counters:
        if counter.kind is CounterKind.EVENT and counter.src_node == counter.dst_node:
            findings.append(
                Finding(
                    "never-counted",
                    Severity.WARNING,
                    f"event counter {counter.name!r} names the same node as "
                    f"source and destination; no frame can match",
                    subject=counter.name,
                )
            )
    return findings


def _tuple_implies(specific: FilterTuple, general: FilterTuple) -> bool:
    """True when every packet satisfying *specific* satisfies *general*."""
    if isinstance(specific.pattern, VarRef) or isinstance(general.pattern, VarRef):
        return False
    if (specific.offset, specific.nbytes) != (general.offset, general.nbytes):
        return False
    if specific.mask is None:
        # specific pins the field exactly: general holds iff its own
        # constraint is satisfied by that exact value.
        if general.mask is None:
            return specific.pattern == general.pattern
        return specific.pattern & general.mask == general.pattern & general.mask
    # specific constrains only its masked bits.
    if general.mask is None:
        return False  # general demands all bits; specific leaves some free
    if general.mask & ~specific.mask:
        return False  # general tests bits specific leaves free
    return specific.pattern & general.mask == general.pattern & general.mask


def _entry_shadows(earlier: FilterEntry, later: FilterEntry) -> bool:
    """Conservatively true when every packet matching *later* also matches

    *earlier* (and therefore never reaches *later* in the linear scan).
    """
    for need in earlier.tuples:
        if not any(_tuple_implies(have, need) for have in later.tuples):
            return False
    return True


def check_shadowed_filters(program: CompiledProgram) -> List[Finding]:
    findings = []
    entries = program.filters.entries
    for position, later in enumerate(entries):
        for earlier in entries[:position]:
            if _entry_shadows(earlier, later):
                findings.append(
                    Finding(
                        "shadowed-filter",
                        Severity.WARNING,
                        f"packet definition {later.name!r} can never match: "
                        f"{earlier.name!r} earlier in the table matches a "
                        f"superset of its packets (first match wins)",
                        subject=later.name,
                    )
                )
                break
    return findings


def check_constant_conditions(program: CompiledProgram) -> List[Finding]:
    findings = []
    written = _written_counters(program)
    event_counters = {
        c.counter_id for c in program.counters if c.kind is CounterKind.EVENT
    }
    dynamic = written | event_counters
    for condition in program.conditions:
        if condition.is_true_rule:
            continue
        referenced: Set[int] = set()
        for term_id in condition.expr.term_ids():
            term = program.terms[term_id]
            for operand in (term.lhs, term.rhs):
                if operand.is_counter:
                    referenced.add(operand.counter_id)
        if referenced and not referenced & dynamic:
            findings.append(
                Finding(
                    "constant-condition",
                    Severity.WARNING,
                    f"rule at line {condition.line} only references "
                    f"counters nothing ever updates: it fires at START or "
                    f"never",
                    subject=f"line {condition.line}",
                )
            )
    return findings


def check_verdict_sources(program: CompiledProgram) -> List[Finding]:
    findings = []
    kinds = {action.kind for action in program.actions}
    if ActionKind.FLAG_ERROR not in kinds and ActionKind.STOP not in kinds:
        findings.append(
            Finding(
                "no-verdict",
                Severity.WARNING,
                "scenario has neither FLAG_ERROR nor STOP: it cannot "
                "express a verdict beyond 'ran to quiescence'",
            )
        )
    if ActionKind.STOP in kinds and program.timeout_ns == 0:
        findings.append(
            Finding(
                "unbounded-scenario",
                Severity.INFO,
                "scenario expects a STOP but declares no timeout; a hung "
                "protocol will stall the run until the caller's max-time "
                "bound",
            )
        )
    return findings


def check_dead_node_traffic(program: CompiledProgram) -> List[Finding]:
    """Traffic expected at a node the script killed and never RESTARTed.

    Counting a frame requires the counter's *home* node to classify it —
    a FAILed/CRASHed home classifies nothing.  Counters that merely name
    the dead node as source or destination but are observed elsewhere are
    fine (Fig 6 counts the token handoffs *to* the dead node at node2).
    """
    findings = []
    restarted = {
        action.target_node
        for action in program.actions
        if action.kind is ActionKind.RESTART
    }
    kills = []  # (target node, script line of the kill, verb)
    for action in program.actions:
        if action.kind in (ActionKind.FAIL, ActionKind.CRASH):
            target = action.target_node or action.node
            if target is not None and target not in restarted:
                kills.append(
                    (
                        target,
                        program.conditions[action.condition_id].line,
                        action.kind.value,
                    )
                )
    if not kills:
        return findings
    for condition in program.conditions:
        if condition.is_true_rule:
            continue
        referenced: Set[int] = set()
        for term_id in condition.expr.term_ids():
            term = program.terms[term_id]
            for operand in (term.lhs, term.rhs):
                if operand.is_counter:
                    referenced.add(operand.counter_id)
        for target, kill_line, verb in kills:
            if condition.line <= kill_line:
                continue
            for counter_id in sorted(referenced):
                counter = program.counters[counter_id]
                if (
                    counter.kind is CounterKind.EVENT
                    and counter.home_node == target
                ):
                    findings.append(
                        Finding(
                            "dead-node-traffic",
                            Severity.WARNING,
                            f"rule at line {condition.line} reads counter "
                            f"{counter.name!r}, counted at {target}, but "
                            f"{verb}({target}) at line {kill_line} kills "
                            f"that node with no RESTART: the counter can "
                            f"never advance again",
                            subject=counter.name,
                        )
                    )
            for _node, action_id in condition.triggers:
                action = program.actions[action_id]
                if action.is_packet_fault and action.node == target:
                    findings.append(
                        Finding(
                            "dead-node-traffic",
                            Severity.WARNING,
                            f"rule at line {condition.line} arms a "
                            f"{action.kind.value} fault on {target}, but "
                            f"{verb}({target}) at line {kill_line} kills "
                            f"that node with no RESTART: the fault can "
                            f"never apply",
                            subject=f"line {condition.line}",
                        )
                    )
    return findings


_ALL_CHECKS = (
    check_unused_counters,
    check_never_counted,
    check_shadowed_filters,
    check_constant_conditions,
    check_verdict_sources,
    check_dead_node_traffic,
)


def lint_program(program: CompiledProgram) -> List[Finding]:
    """Run every check against a compiled program."""
    findings: List[Finding] = []
    for check in _ALL_CHECKS:
        findings.extend(check(program))
    return findings


def lint_text(
    script: str,
    scenario: Optional[str] = None,
    fail_on: Union[Severity, None] = None,
) -> List[Finding]:
    """Compile and lint FSL source.

    With *fail_on* set, raises ``ValueError`` listing any finding at or
    above that severity — the CI hook.
    """
    findings = lint_program(compile_text(script, scenario))
    if fail_on is not None:
        offending = [f for f in findings if not f.severity < fail_on]
        if offending:
            raise ValueError(
                "lint failures:\n" + "\n".join(f.render() for f in offending)
            )
    return findings
