"""Execution audit trail for the FIE/FAE.

The paper contrasts VirtualWire with "collecting tcpdump traces and
inspecting them manually" (§1) — but when a scenario misbehaves, the
tester still needs to see *why* the engine did what it did.  The audit
log records the engine-level narrative: which conditions fired where and
when, which faults were applied to which packets, and the verdict events —
a rule-level account that complements the packet-level
:class:`repro.trace.TraceRecorder`.

Auditing is off by default and costs nothing when disabled (a None check
on the hot path).  Enable it via ``Testbed.install_virtualwire(audit=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim import Simulator, format_time


@dataclass(frozen=True)
class AuditEvent:
    """One engine decision."""

    time_ns: int
    node: str
    kind: str  # "condition" | "fault" | "fail" | "stop" | "error" | "start"
    detail: str
    #: flow-invariant digest of the frame the decision applied to, when
    #: any ("" otherwise) — the join key for repro.analysis journeys.
    digest: str = ""

    def render(self) -> str:
        return f"{format_time(self.time_ns):>14} {self.node:<10} {self.kind:<10} {self.detail}"


class AuditLog:
    """Append-only, bounded log shared by every engine of a testbed."""

    def __init__(self, sim: Simulator, max_events: int = 100_000) -> None:
        self.sim = sim
        self.max_events = max_events
        self.events: List[AuditEvent] = []
        self.dropped = 0

    def record(self, node: str, kind: str, detail: str, digest: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(AuditEvent(self.sim.now, node, kind, detail, digest))

    def recorder_for(self, node: str) -> Callable[[str, str], None]:
        """A per-node closure the engine hands to its runtime."""

        def record(kind: str, detail: str) -> None:
            self.record(node, kind, detail)

        return record

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def select(
        self, kind: Optional[str] = None, node: Optional[str] = None
    ) -> List[AuditEvent]:
        return [
            event
            for event in self.events
            if (kind is None or event.kind == kind)
            and (node is None or event.node == node)
        ]

    def render(self, kind: Optional[str] = None) -> str:
        events = self.select(kind=kind)
        lines = [event.render() for event in events]
        if self.dropped:
            # A saturated log must never read as a complete narrative.
            lines.append(
                f"... {self.dropped} event{'s' if self.dropped != 1 else ''} "
                f"dropped (log saturated at {self.max_events})"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
