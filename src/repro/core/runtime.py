"""Per-node counter/term/condition run-time (paper Fig 3 and Fig 4(b)).

Each node's FIE/FAE owns a :class:`NodeRuntime` holding the execution state
of the six tables.  The flow per classified packet is exactly the paper's
Fig 4(b): the packet event updates counters; a counter change re-evaluates
the terms tagged on it; term changes re-evaluate the conditions tagged on
the terms; a condition's false→true edge triggers its actions — which may
themselves be counter updates, feeding the same loop.

Distribution (paper §5.2): a counter-vs-constant term is evaluated at the
counter's home node and its *status* is pushed to remote consumers only on
change; a counter-vs-counter term is evaluated at each consumer from
mirrored counter *values* pushed on every change.  Conditions are evaluated
at every node hosting a dependent action.  The pushes happen through the
:class:`RuntimeHooks` the engine provides, which turn them into raw-
Ethernet control frames.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from ..errors import EngineError
from ..sim import NS_PER_MS
from .tables import (
    ActionKind,
    ActionSpec,
    CompiledProgram,
    CounterKind,
    CounterSpec,
    Direction,
    TermMode,
    TermSpec,
)

#: Cascade safety valve: counter-action loops (rule A enables rule B which
#: re-enables rule A ...) abort the event instead of hanging the simulator.
MAX_CASCADE_STEPS = 10_000

#: Flattened action opcodes (see NodeRuntime._condition_ops).
_OP_ADD, _OP_SET, _OP_GATE = 0, 1, 2


class RuntimeHooks:
    """Callbacks the engine supplies; overridden per engine instance."""

    def send_counter_update(self, counter_id: int, value: int, nodes: Iterable[str]) -> None:
        raise NotImplementedError

    def send_term_status(self, term_id: int, status: bool, nodes: Iterable[str]) -> None:
        raise NotImplementedError

    def report_error(self, condition_id: int, action_id: int) -> None:
        raise NotImplementedError

    def report_stop(self, condition_id: int) -> None:
        raise NotImplementedError

    def fail_local_host(self) -> None:
        raise NotImplementedError

    def crash_local_host(self) -> None:
        raise NotImplementedError

    def request_restart(self, target_node: str, delay_ns: int) -> None:
        raise NotImplementedError

    def now(self) -> int:
        raise NotImplementedError


class EventStats:
    """Work performed while processing one packet event (for the cost model)."""

    __slots__ = ("counter_touches", "actions_fired", "terms_evaluated", "conditions_evaluated")

    def __init__(self) -> None:
        self.counter_touches = 0
        self.actions_fired = 0
        self.terms_evaluated = 0
        self.conditions_evaluated = 0


class NodeRuntime:
    """Execution state of the six tables on one node."""

    def __init__(self, node_name: str, program: CompiledProgram, hooks: RuntimeHooks) -> None:
        self.node_name = node_name
        self.program = program
        self.hooks = hooks
        count = len(program.counters)
        self.values: List[int] = [0] * count
        self.enabled: List[bool] = [c.initially_enabled for c in program.counters]
        self.timestamps: List[int] = [0] * count
        #: local view of term statuses (ours and received).
        self.term_status: Dict[int, bool] = {}
        #: state of conditions evaluated at this node.
        self.condition_state: Dict[int, bool] = {}
        self.started = False
        #: set by a CRASH action executing here: the node is dead, further
        #: settlement/armed-fault queries on this runtime are void.
        self.crashed = False

        # Precomputed local slices of the tables.
        self.my_event_counters: List[CounterSpec] = [
            c
            for c in program.counters
            if c.kind is CounterKind.EVENT and c.home_node == node_name
        ]
        self.my_condition_ids: List[int] = [
            c.condition_id
            for c in program.conditions
            if node_name in c.nodes() and not c.is_true_rule
        ]
        self.my_true_rules = [
            c for c in program.conditions if c.is_true_rule and node_name in c.nodes()
        ]
        self.my_fault_actions: List[ActionSpec] = [
            a for a in program.actions if a.is_packet_fault and a.node == node_name
        ]
        # Exact-key dispatch indexes over the static match fields, built in
        # file order so iteration order — and therefore counter-update and
        # fault-application order — is identical to the linear scans they
        # replace.  Dynamic state (enabled flags, condition truth) is still
        # checked per event.
        self._event_index: Dict[tuple, List[CounterSpec]] = {}
        for counter in self.my_event_counters:
            key = (counter.pkt_type, counter.direction, counter.src_node, counter.dst_node)
            self._event_index.setdefault(key, []).append(counter)
        self._fault_index: Dict[tuple, List[ActionSpec]] = {}
        for action in self.my_fault_actions:
            key = (action.pkt_type, action.direction, action.src_node, action.dst_node)
            self._fault_index.setdefault(key, []).append(action)
        # Non-fault actions per condition, pre-filtered to this node, in
        # trigger order: _fire_actions runs straight down this list instead
        # of re-filtering every trigger on every false→true edge.
        self._condition_actions: Dict[int, List[ActionSpec]] = {}
        for condition in program.conditions:
            actions = [
                program.actions[action_id]
                for node, action_id in condition.triggers
                if node == node_name
                and not program.actions[action_id].is_packet_fault
            ]
            if actions:
                self._condition_actions[condition.condition_id] = actions
        # Counters whose updates touch nothing beyond the value slot (no
        # terms to re-evaluate, no mirrors to push): _set_counter returns
        # early for these, which is the common case on the packet hot path.
        self._counter_plain: List[bool] = [
            not c.term_ids
            and not (c.home_node == node_name and c.mirror_subscribers)
            for c in program.counters
        ]
        # Straight-line op programs: when every local action of a condition
        # is a plain counter write (the Fig 7 "25 actions per match" shape),
        # the whole trigger list flattens to (op, counter_id, operand)
        # tuples executed inline — no per-action dispatch through _execute.
        # Any action with side effects beyond the value/enabled slots keeps
        # the condition on the general path (docs/PERF.md).
        self._condition_ops: Dict[int, List[tuple]] = {}
        for condition_id, actions in self._condition_actions.items():
            ops: Optional[List[tuple]] = []
            for action in actions:
                kind = action.kind
                if kind is ActionKind.INCR_CNTR:
                    op = (_OP_ADD, action.counter_id, action.value)
                elif kind is ActionKind.DECR_CNTR:
                    op = (_OP_ADD, action.counter_id, -action.value)
                elif kind is ActionKind.ASSIGN_CNTR:
                    op = (_OP_SET, action.counter_id, action.value)
                elif kind is ActionKind.RESET_CNTR:
                    op = (_OP_SET, action.counter_id, 0)
                elif kind is ActionKind.ENABLE_CNTR:
                    op = (_OP_GATE, action.counter_id, True)
                elif kind is ActionKind.DISABLE_CNTR:
                    op = (_OP_GATE, action.counter_id, False)
                else:
                    ops = None
                    break
                if op[0] is not _OP_GATE and not self._counter_plain[op[1]]:
                    ops = None  # write cascades into terms/mirrors
                    break
                ops.append(op)
            if ops:
                self._condition_ops[condition_id] = ops
        self._pending_conditions: Set[int] = set()
        self._stats: Optional[EventStats] = None
        self.events_seen = 0
        #: optional audit hook: (kind, detail) -> None; see repro.core.audit.
        self.audit: Optional[Callable[[str, str], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> EventStats:
        """Run the (TRUE) initialisation rules and compute initial states."""
        stats = self._begin_event()
        self.started = True
        for condition in self.my_true_rules:
            self.condition_state[condition.condition_id] = True
            self._fire_actions(condition.condition_id)
        # Evaluate the terms this node owns and push any non-default status.
        for term in self.program.terms:
            if term.mode is TermMode.LOCAL_BROADCAST and term.home_node == self.node_name:
                self._evaluate_owned_term(term, broadcast_initial=True)
            elif term.mode is TermMode.MIRROR and self.node_name in term.consumer_nodes:
                self._evaluate_mirror_term(term)
        for condition_id in self.my_condition_ids:
            self._pending_conditions.add(condition_id)
        self._settle()
        return self._end_event(stats)

    # ------------------------------------------------------------------
    # Packet events
    # ------------------------------------------------------------------

    def on_classified_packet(
        self,
        pkt_type: str,
        src_node: Optional[str],
        dst_node: Optional[str],
        direction: Direction,
    ) -> EventStats:
        """A packet of *pkt_type* crossed this node's hook."""
        stats = self._begin_event()
        self.events_seen += 1
        for counter in self._event_index.get((pkt_type, direction, src_node, dst_node), ()):
            if self.enabled[counter.counter_id]:
                self._set_counter(counter.counter_id, self.values[counter.counter_id] + 1)
        self._settle()
        return self._end_event(stats)

    def armed_faults(
        self,
        pkt_type: str,
        src_node: Optional[str],
        dst_node: Optional[str],
        direction: Direction,
    ) -> List[ActionSpec]:
        """Packet faults active (condition true) that match this packet."""
        if self.crashed:
            return []
        return [
            action
            for action in self._fault_index.get((pkt_type, direction, src_node, dst_node), ())
            if self.condition_state.get(action.condition_id, False)
        ]

    # ------------------------------------------------------------------
    # Control-plane inputs
    # ------------------------------------------------------------------

    def on_counter_update(self, counter_id: int, value: int) -> EventStats:
        """A remote home pushed a counter value we mirror.

        Idempotent under control-plane replays: a value-identical push (a
        retransmission that slipped past channel dedup, or a genuine
        re-broadcast of an unchanged value) re-evaluates nothing.
        """
        stats = self._begin_event()
        if self.values[counter_id] == value:
            return self._end_event(stats)
        self.values[counter_id] = value
        self._touch()
        for term_id in self.program.counters[counter_id].term_ids:
            term = self.program.terms[term_id]
            if term.mode is TermMode.MIRROR and self.node_name in term.consumer_nodes:
                self._evaluate_mirror_term(term)
        self._settle()
        return self._end_event(stats)

    def on_term_status(self, term_id: int, status: bool) -> EventStats:
        """A remote home pushed a term status change.

        Replay-safe: a duplicate status (same value as our local view)
        schedules no condition re-evaluation.
        """
        stats = self._begin_event()
        old = self.term_status.get(term_id, False)
        self.term_status[term_id] = status
        if status != old:
            for condition_id in self.program.terms[term_id].condition_ids:
                if condition_id in self.my_condition_ids:
                    self._pending_conditions.add(condition_id)
        self._settle()
        return self._end_event(stats)

    # ------------------------------------------------------------------
    # Counter mutation and propagation
    # ------------------------------------------------------------------

    def _touch(self) -> None:
        if self._stats is not None:
            self._stats.counter_touches += 1

    def _set_counter(self, counter_id: int, value: int) -> None:
        self.values[counter_id] = value
        if self._stats is not None:
            self._stats.counter_touches += 1
        if self._counter_plain[counter_id]:
            return
        counter = self.program.counters[counter_id]
        if counter.home_node == self.node_name and counter.mirror_subscribers:
            self.hooks.send_counter_update(counter_id, value, counter.mirror_subscribers)
        for term_id in counter.term_ids:
            term = self.program.terms[term_id]
            if term.mode is TermMode.LOCAL_BROADCAST:
                if term.home_node == self.node_name:
                    self._evaluate_owned_term(term)
            elif self.node_name in term.consumer_nodes:
                self._evaluate_mirror_term(term)

    def _term_value(self, term: TermSpec) -> bool:
        lhs = term.lhs.constant if not term.lhs.is_counter else self.values[term.lhs.counter_id]
        rhs = term.rhs.constant if not term.rhs.is_counter else self.values[term.rhs.counter_id]
        if self._stats is not None:
            self._stats.terms_evaluated += 1
        return term.op.evaluate(lhs, rhs)

    def _evaluate_owned_term(self, term: TermSpec, broadcast_initial: bool = False) -> None:
        new = self._term_value(term)
        old = self.term_status.get(term.term_id, False)
        if new == old and not (broadcast_initial and new):
            return
        self.term_status[term.term_id] = new
        remote = [n for n in term.consumer_nodes if n != self.node_name]
        if remote:
            self.hooks.send_term_status(term.term_id, new, remote)
        if self.node_name in term.consumer_nodes:
            for condition_id in term.condition_ids:
                if condition_id in self.my_condition_ids:
                    self._pending_conditions.add(condition_id)

    def _evaluate_mirror_term(self, term: TermSpec) -> None:
        new = self._term_value(term)
        old = self.term_status.get(term.term_id, False)
        if new == old:
            return
        self.term_status[term.term_id] = new
        for condition_id in term.condition_ids:
            if condition_id in self.my_condition_ids:
                self._pending_conditions.add(condition_id)

    # ------------------------------------------------------------------
    # Condition settlement and action firing
    # ------------------------------------------------------------------

    def _settle(self) -> None:
        """Drain pending condition re-evaluations in two-phase waves.

        Each wave first evaluates *every* pending condition against the
        current state, then fires the false→true edges.  Evaluating before
        firing matters: two rules triggered by the same counter value must
        both observe it (the paper's Fig 6 script has one rule RESET a
        counter that a sibling STOP rule tests — with eager firing the
        reset would always win and the STOP could never trigger).
        """
        steps = 0
        while self._pending_conditions and not self.crashed:
            steps += 1
            if steps > MAX_CASCADE_STEPS:
                raise EngineError(
                    f"{self.node_name}: rule cascade exceeded "
                    f"{MAX_CASCADE_STEPS} steps (cyclic counter rules?)"
                )
            wave = sorted(self._pending_conditions)
            self._pending_conditions.clear()
            edges = []
            for condition_id in wave:
                condition = self.program.conditions[condition_id]
                if self._stats is not None:
                    self._stats.conditions_evaluated += 1
                new = condition.expr.evaluate(self.term_status)
                old = self.condition_state.get(condition_id, False)
                self.condition_state[condition_id] = new
                if new and not old:
                    edges.append(condition_id)
            for condition_id in edges:
                self._fire_actions(condition_id)

    def _fire_actions(self, condition_id: int) -> None:
        if self.audit is not None:
            condition = self.program.conditions[condition_id]
            where = "TRUE rule" if condition.is_true_rule else f"line {condition.line}"
            self.audit("condition", f"{where} satisfied")
        stats = self._stats
        ops = self._condition_ops.get(condition_id)
        if ops is not None:
            # Flattened path: plain counter writes only, so no audit lines,
            # no hooks, no cascade and no possible CRASH mid-rule.  The
            # stats mirror the general path exactly: one action fired and
            # one table touch per op.
            values = self.values
            enabled = self.enabled
            for op, counter_id, operand in ops:
                if op == _OP_ADD:
                    values[counter_id] += operand
                elif op == _OP_SET:
                    values[counter_id] = operand
                else:
                    enabled[counter_id] = operand
            if stats is not None:
                stats.actions_fired += len(ops)
                stats.counter_touches += len(ops)
            return
        # Packet faults are absent from this list: they arm via condition
        # state rather than firing here.
        for action in self._condition_actions.get(condition_id, ()):
            if stats is not None:
                stats.actions_fired += 1
            self._execute(action)
            if self.crashed:
                return  # a CRASH took the node down mid-rule

    def _execute(self, action: ActionSpec) -> None:
        kind = action.kind
        if kind is ActionKind.ASSIGN_CNTR:
            self._set_counter(action.counter_id, action.value)
        elif kind is ActionKind.ENABLE_CNTR:
            self.enabled[action.counter_id] = True
            self._touch()
        elif kind is ActionKind.DISABLE_CNTR:
            self.enabled[action.counter_id] = False
            self._touch()
        elif kind is ActionKind.INCR_CNTR:
            self._set_counter(action.counter_id, self.values[action.counter_id] + action.value)
        elif kind is ActionKind.DECR_CNTR:
            self._set_counter(action.counter_id, self.values[action.counter_id] - action.value)
        elif kind is ActionKind.RESET_CNTR:
            self._set_counter(action.counter_id, 0)
        elif kind is ActionKind.SET_CURTIME:
            self.timestamps[action.counter_id] = self.hooks.now()
            self._touch()
        elif kind is ActionKind.ELAPSED_TIME:
            elapsed_ms = (self.hooks.now() - self.timestamps[action.counter_id]) // NS_PER_MS
            self._set_counter(action.counter_id, elapsed_ms)
        elif kind is ActionKind.FAIL:
            if self.audit is not None:
                self.audit("fail", f"FAIL({self.node_name}) executed")
            self.hooks.fail_local_host()
        elif kind is ActionKind.CRASH:
            if self.audit is not None:
                self.audit("fail", f"CRASH({self.node_name}) executed")
            self.crashed = True
            self.hooks.crash_local_host()
        elif kind is ActionKind.RESTART:
            if self.audit is not None:
                self.audit(
                    "restart",
                    f"RESTART({action.target_node}) requested from "
                    f"{self.node_name}",
                )
            self.hooks.request_restart(action.target_node, action.delay_ns)
        elif kind is ActionKind.STOP:
            if self.audit is not None:
                self.audit("stop", "STOP executed")
            self.hooks.report_stop(action.condition_id)
        elif kind is ActionKind.FLAG_ERROR:
            if self.audit is not None:
                line = self.program.conditions[action.condition_id].line
                self.audit("error", f"FLAG_ERROR (script line {line})")
            self.hooks.report_error(action.condition_id, action.action_id)
        else:
            raise EngineError(f"cannot execute action kind {kind}")

    # ------------------------------------------------------------------
    # Peer rejoin support
    # ------------------------------------------------------------------

    def resend_state_to(self, node: str) -> None:
        """Replay this node's current shared state for a rebooted *node*.

        A freshly re-INITed node starts from all-default tables; any term
        status or mirrored counter value that is *currently* non-default
        at its home would otherwise never be pushed again (pushes happen
        on change only).  Replays are harmless to everyone else: both
        receive paths are idempotent.
        """
        if not self.started or self.crashed:
            return
        for term in self.program.terms:
            if (
                term.mode is TermMode.LOCAL_BROADCAST
                and term.home_node == self.node_name
                and node in term.consumer_nodes
                and node != self.node_name
                and self.term_status.get(term.term_id, False)
            ):
                self.hooks.send_term_status(term.term_id, True, [node])
        for counter in self.program.counters:
            if (
                counter.home_node == self.node_name
                and node in counter.mirror_subscribers
                and self.values[counter.counter_id] != 0
            ):
                self.hooks.send_counter_update(
                    counter.counter_id, self.values[counter.counter_id], [node]
                )

    # ------------------------------------------------------------------
    # Event bracketing
    # ------------------------------------------------------------------

    def _begin_event(self) -> EventStats:
        stats = EventStats()
        self._stats = stats
        return stats

    def _end_event(self, stats: EventStats) -> EventStats:
        self._stats = None
        return stats

    # ------------------------------------------------------------------
    # Introspection (reports and tests)
    # ------------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        return self.values[self.program.counter_by_name(name).counter_id]

    def counters_snapshot(self) -> Dict[str, int]:
        return {c.name: self.values[c.counter_id] for c in self.program.counters}

    def __repr__(self) -> str:
        return f"NodeRuntime({self.node_name}, events={self.events_seen})"
