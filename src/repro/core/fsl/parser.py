"""Recursive-descent parser for FSL.

Grammar (sections may appear in any order and repeat)::

    script        := (var_decl | filter_table | node_table | scenario)* EOF
    var_decl      := "VAR" IDENT ("," IDENT)* ";"
    filter_table  := "FILTER_TABLE" filter_def+ "END"
    filter_def    := IDENT ":" tuple ("," tuple)*
    tuple         := "(" INT INT [INT] (INT | IDENT) ")"
    node_table    := "NODE_TABLE" node_def+ "END"
    node_def      := IDENT MAC IP
    scenario      := "SCENARIO" IDENT [DURATION] decl* rule* "END"
    decl          := IDENT ":" "(" args ")"            # counter declaration
    rule          := "(" condition ")" ">>" action (";" action)* ";"
    condition     := "TRUE" | or_expr
    or_expr       := and_expr (("||"|OR) and_expr)*
    and_expr      := unary (("&&"|AND) unary)*
    unary         := ("!"|NOT) unary | "(" or_expr ")" | term
    term          := operand relop operand
    action        := NAME "(" args ")" | NAME args     # paper allows both

The lexer pre-classifies MAC, IP and duration literals, so the parser never
has to disambiguate them from identifiers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ...errors import FslParseError
from .ast import (
    ActionAst,
    AndAst,
    CondAst,
    CounterDeclAst,
    FilterDefAst,
    NodeDefAst,
    NotAst,
    OrAst,
    PatchAst,
    RuleAst,
    ScenarioAst,
    ScriptAst,
    TermAst,
    TrueAst,
    TupleAst,
)
from .tokens import TokKind, Token, tokenize

_RELOPS = {
    TokKind.GT: ">",
    TokKind.LT: "<",
    TokKind.GE: ">=",
    TokKind.LE: "<=",
    TokKind.EQ: "=",
    TokKind.NE: "!=",
}

#: The action keywords of Tables I and II (plus the FLAG_ERR spelling used
#: in Table II and the FLAG_ERROR spelling used in the scripts).
ACTION_NAMES = {
    "ASSIGN_CNTR",
    "ENABLE_CNTR",
    "DISABLE_CNTR",
    "INCR_CNTR",
    "DECR_CNTR",
    "RESET_CNTR",
    "SET_CURTIME",
    "ELAPSED_TIME",
    "DROP",
    "DELAY",
    "REORDER",
    "DUP",
    "MODIFY",
    "FAIL",
    "CRASH",
    "RESTART",
    "STOP",
    "FLAG_ERR",
    "FLAG_ERROR",
}

_SECTION_KEYWORDS = {"VAR", "FILTER_TABLE", "NODE_TABLE", "SCENARIO", "END"}


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not TokKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokKind, what: str = "") -> Token:
        token = self._cur
        if token.kind is not kind:
            wanted = what or kind.value
            raise FslParseError(
                f"expected {wanted}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._cur
        if token.kind is not TokKind.IDENT or token.text != word:
            raise FslParseError(
                f"expected {word}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        return self._cur.kind is TokKind.IDENT and self._cur.text == word

    # -- entry point ------------------------------------------------------

    def parse(self) -> ScriptAst:
        script = ScriptAst()
        while self._cur.kind is not TokKind.EOF:
            if self._at_keyword("VAR"):
                self._parse_vars(script)
            elif self._at_keyword("FILTER_TABLE"):
                self._parse_filter_table(script)
            elif self._at_keyword("NODE_TABLE"):
                self._parse_node_table(script)
            elif self._at_keyword("SCENARIO"):
                script.scenarios.append(self._parse_scenario())
            else:
                token = self._cur
                raise FslParseError(
                    f"expected a section keyword, found {token.text!r}",
                    token.line,
                    token.column,
                )
        return script

    # -- sections -------------------------------------------------------------

    def _parse_vars(self, script: ScriptAst) -> None:
        self._expect_keyword("VAR")
        while True:
            name = self._expect(TokKind.IDENT, "variable name")
            script.variables.append(name.text)
            if self._cur.kind is TokKind.COMMA:
                self._advance()
                continue
            break
        self._expect(TokKind.SEMI)

    def _parse_filter_table(self, script: ScriptAst) -> None:
        self._expect_keyword("FILTER_TABLE")
        while not self._at_keyword("END"):
            script.filters.append(self._parse_filter_def())
        self._expect_keyword("END")

    def _parse_filter_def(self) -> FilterDefAst:
        name = self._expect(TokKind.IDENT, "packet type name")
        self._expect(TokKind.COLON)
        tuples = [self._parse_filter_tuple()]
        while self._cur.kind is TokKind.COMMA:
            self._advance()
            tuples.append(self._parse_filter_tuple())
        return FilterDefAst(name.text, tuple(tuples), name.line)

    def _parse_filter_tuple(self) -> TupleAst:
        lparen = self._expect(TokKind.LPAREN)
        offset = int(self._expect(TokKind.INT, "offset").value)
        nbytes = int(self._expect(TokKind.INT, "byte count").value)
        items: List[Union[int, str]] = []
        while self._cur.kind is not TokKind.RPAREN:
            token = self._cur
            if token.kind is TokKind.INT:
                items.append(int(token.value))
            elif token.kind is TokKind.IDENT:
                items.append(token.text)
            else:
                raise FslParseError(
                    f"bad filter tuple element {token.text!r}", token.line, token.column
                )
            self._advance()
        self._expect(TokKind.RPAREN)
        if len(items) == 1:
            mask: Optional[int] = None
            pattern = items[0]
        elif len(items) == 2:
            if not isinstance(items[0], int):
                raise FslParseError("filter mask must be an integer", lparen.line)
            mask = items[0]
            pattern = items[1]
        else:
            raise FslParseError(
                "filter tuple needs (offset nbytes [mask] pattern)", lparen.line
            )
        return TupleAst(offset, nbytes, pattern, mask, lparen.line)

    def _parse_node_table(self, script: ScriptAst) -> None:
        self._expect_keyword("NODE_TABLE")
        while not self._at_keyword("END"):
            name = self._expect(TokKind.IDENT, "node name")
            mac = self._expect(TokKind.MAC, "MAC address")
            ip = self._expect(TokKind.IP, "IP address")
            script.nodes.append(NodeDefAst(name.text, mac.text, ip.text, name.line))
        self._expect_keyword("END")

    # -- scenario ---------------------------------------------------------------

    def _parse_scenario(self) -> ScenarioAst:
        header = self._expect_keyword("SCENARIO")
        name = self._expect(TokKind.IDENT, "scenario name")
        timeout_ns = 0
        if self._cur.kind is TokKind.DURATION:
            timeout_ns = int(self._advance().value)
        counters: List[CounterDeclAst] = []
        rules: List[RuleAst] = []
        while not self._at_keyword("END"):
            if self._cur.kind is TokKind.EOF:
                raise FslParseError("scenario missing END", header.line)
            if (
                self._cur.kind is TokKind.IDENT
                and self._cur.text not in _SECTION_KEYWORDS
                and self._peek().kind is TokKind.COLON
            ):
                counters.append(self._parse_counter_decl())
            elif self._cur.kind is TokKind.LPAREN:
                rules.append(self._parse_rule())
            else:
                token = self._cur
                raise FslParseError(
                    f"expected a counter declaration or rule, found {token.text!r}",
                    token.line,
                    token.column,
                )
        self._expect_keyword("END")
        return ScenarioAst(
            name.text, timeout_ns, tuple(counters), tuple(rules), header.line
        )

    def _parse_counter_decl(self) -> CounterDeclAst:
        name = self._expect(TokKind.IDENT, "counter name")
        self._expect(TokKind.COLON)
        self._expect(TokKind.LPAREN)
        args: List[str] = []
        while self._cur.kind is not TokKind.RPAREN:
            token = self._cur
            if token.kind is not TokKind.IDENT:
                raise FslParseError(
                    f"bad counter declaration element {token.text!r}",
                    token.line,
                    token.column,
                )
            args.append(token.text)
            self._advance()
            if self._cur.kind is TokKind.COMMA:
                self._advance()
        self._expect(TokKind.RPAREN)
        if len(args) not in (1, 4):
            raise FslParseError(
                "counter declaration needs (pkt, src, dst, SEND|RECV) or (node)",
                name.line,
            )
        return CounterDeclAst(name.text, tuple(args), name.line)

    # -- rules ------------------------------------------------------------------

    def _parse_rule(self) -> RuleAst:
        lparen = self._expect(TokKind.LPAREN)
        condition = self._parse_condition()
        self._expect(TokKind.RPAREN)
        self._expect(TokKind.ARROW, "'>>'")
        actions = [self._parse_action()]
        self._expect(TokKind.SEMI)
        # Further actions belong to this rule until a new rule's "(" or END.
        while self._cur.kind is TokKind.IDENT and self._cur.text in ACTION_NAMES:
            actions.append(self._parse_action())
            self._expect(TokKind.SEMI)
        return RuleAst(condition, tuple(actions), lparen.line)

    def _parse_condition(self) -> CondAst:
        if self._at_keyword("TRUE"):
            self._advance()
            return TrueAst()
        return self._parse_or()

    def _parse_or(self) -> CondAst:
        children = [self._parse_and()]
        while self._cur.kind is TokKind.OR:
            self._advance()
            children.append(self._parse_and())
        return children[0] if len(children) == 1 else OrAst(tuple(children))

    def _parse_and(self) -> CondAst:
        children = [self._parse_unary()]
        while self._cur.kind is TokKind.AND:
            self._advance()
            children.append(self._parse_unary())
        return children[0] if len(children) == 1 else AndAst(tuple(children))

    def _parse_unary(self) -> CondAst:
        if self._cur.kind is TokKind.NOT:
            self._advance()
            return NotAst(self._parse_unary())
        if self._cur.kind is TokKind.LPAREN:
            self._advance()
            inner = self._parse_or()
            self._expect(TokKind.RPAREN)
            return inner
        return self._parse_term()

    def _parse_term(self) -> CondAst:
        lhs = self._parse_operand()
        op_token = self._cur
        if op_token.kind not in _RELOPS:
            raise FslParseError(
                f"expected a relational operator, found {op_token.text!r}",
                op_token.line,
                op_token.column,
            )
        self._advance()
        rhs = self._parse_operand()
        return TermAst(lhs, _RELOPS[op_token.kind], rhs, op_token.line)

    def _parse_operand(self) -> Union[int, str]:
        token = self._cur
        if token.kind is TokKind.INT:
            self._advance()
            return int(token.value)
        if token.kind is TokKind.IDENT:
            self._advance()
            return token.text
        raise FslParseError(
            f"expected a counter or integer, found {token.text!r}",
            token.line,
            token.column,
        )

    # -- actions -----------------------------------------------------------------

    def _parse_action(self) -> ActionAst:
        name = self._expect(TokKind.IDENT, "action name")
        if name.text not in ACTION_NAMES:
            raise FslParseError(
                f"unknown action {name.text!r}", name.line, name.column
            )
        args: List[object] = []
        if self._cur.kind is TokKind.LPAREN:
            self._advance()
            args = self._parse_action_args(stop=TokKind.RPAREN)
            self._expect(TokKind.RPAREN)
        elif self._cur.kind is not TokKind.SEMI:
            # Paper style without parentheses: DROP TCP_synack, node2, ...
            args = self._parse_action_args(stop=TokKind.SEMI)
        return ActionAst(name.text, tuple(args), name.line)

    def _parse_action_args(self, stop: TokKind) -> List[object]:
        args: List[object] = []
        while self._cur.kind is not stop:
            args.append(self._parse_action_arg())
            if self._cur.kind is TokKind.COMMA:
                self._advance()
            elif self._cur.kind is not stop:
                token = self._cur
                raise FslParseError(
                    f"expected ',' or {stop.value!r} in action arguments, "
                    f"found {token.text!r}",
                    token.line,
                    token.column,
                )
        return args

    def _parse_action_arg(self) -> object:
        token = self._cur
        if token.kind is TokKind.INT:
            self._advance()
            return int(token.value)
        if token.kind is TokKind.DURATION:
            self._advance()
            return ("duration", int(token.value))
        if token.kind is TokKind.IDENT:
            self._advance()
            return token.text
        if token.kind is TokKind.LBRACKET:
            # A reorder permutation: [3 1 2] (commas optional).
            self._advance()
            order: List[int] = []
            while self._cur.kind is not TokKind.RBRACKET:
                order.append(int(self._expect(TokKind.INT, "permutation index").value))
                if self._cur.kind is TokKind.COMMA:
                    self._advance()
            self._expect(TokKind.RBRACKET)
            return tuple(order)
        if token.kind is TokKind.LPAREN:
            # A MODIFY patch: (offset 0xDEADBEEF) — pattern width from text.
            self._advance()
            offset = int(self._expect(TokKind.INT, "patch offset").value)
            pattern = self._expect(TokKind.INT, "patch bytes")
            self._expect(TokKind.RPAREN)
            data = _pattern_bytes(pattern)
            return PatchAst(offset, data)
        raise FslParseError(
            f"bad action argument {token.text!r}", token.line, token.column
        )


def _pattern_bytes(token: Token) -> bytes:
    """Bytes of a patch literal; hex literals keep their written width."""
    text = token.text.lower()
    if text.startswith("0x"):
        digits = text[2:]
        if len(digits) % 2:
            digits = "0" + digits
        return bytes.fromhex(digits)
    value = int(token.value)
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def parse_script(text: str) -> ScriptAst:
    """Parse FSL source into a :class:`ScriptAst`."""
    return Parser(text).parse()
