"""FSL compiler: scenario AST → :class:`CompiledProgram` (the six tables).

Beyond translation, the compiler computes the routing metadata the
distributed run-time needs (paper §5.1–5.2):

* each counter's **home node** — the node observing its event (dst for
  RECV, src for SEND) or, for local variables, the declared node;
* each term's **evaluation mode** — counter-vs-constant terms are evaluated
  at the counter's home and their *status* is broadcast on change;
  counter-vs-counter terms are evaluated at every consumer node from
  mirrored counter *values*;
* each condition's **evaluation sites** — every node hosting a dependent
  action evaluates the condition locally;
* per-counter **subscriber lists** so value changes generate exactly the
  control frames the consumers need.

It also prunes the filter table to the packet types the scenario references
(see DESIGN.md §2.3 — without pruning, unrelated earlier definitions would
steal the first-match classification) and derives each counter's initial
enablement: a counter that is ever the target of ENABLE_CNTR starts
disabled, every other counter starts armed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ...errors import FslCompileError
from ...net.addresses import IpAddress, MacAddress
from ..tables import (
    ActionKind,
    ActionSpec,
    CompiledProgram,
    ConditionExpr,
    ConditionSpec,
    CounterKind,
    CounterSpec,
    Direction,
    FilterEntry,
    FilterTable,
    FilterTuple,
    NodeEntry,
    NodeTable,
    Operand,
    RelOp,
    TermMode,
    TermSpec,
    VarRef,
)
from .ast import (
    ActionAst,
    AndAst,
    CondAst,
    NotAst,
    OrAst,
    PatchAst,
    ScenarioAst,
    ScriptAst,
    TermAst,
    TrueAst,
)

_FAULT_KINDS = {
    "DROP": ActionKind.DROP,
    "DELAY": ActionKind.DELAY,
    "REORDER": ActionKind.REORDER,
    "DUP": ActionKind.DUP,
    "MODIFY": ActionKind.MODIFY,
}

_COUNTER_KINDS = {
    "ASSIGN_CNTR": ActionKind.ASSIGN_CNTR,
    "ENABLE_CNTR": ActionKind.ENABLE_CNTR,
    "DISABLE_CNTR": ActionKind.DISABLE_CNTR,
    "INCR_CNTR": ActionKind.INCR_CNTR,
    "DECR_CNTR": ActionKind.DECR_CNTR,
    "RESET_CNTR": ActionKind.RESET_CNTR,
    "SET_CURTIME": ActionKind.SET_CURTIME,
    "ELAPSED_TIME": ActionKind.ELAPSED_TIME,
}


class _Compiler:
    def __init__(self, script: ScriptAst, scenario: ScenarioAst) -> None:
        self.script = script
        self.scenario = scenario
        self.nodes = self._build_node_table()
        self.full_filters = self._build_filter_table()
        self.counters: List[CounterSpec] = []
        self._counter_ids: Dict[str, int] = {}
        self.terms: List[TermSpec] = []
        self._term_ids: Dict[Tuple, int] = {}
        self.conditions: List[ConditionSpec] = []
        self.actions: List[ActionSpec] = []
        self._referenced_filters: Set[str] = set()

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _build_node_table(self) -> NodeTable:
        entries = []
        for node in self.script.nodes:
            try:
                entries.append(
                    NodeEntry(node.name, MacAddress(node.mac), IpAddress(node.ip))
                )
            except Exception as exc:
                raise FslCompileError(str(exc), node.line) from exc
        if not entries:
            raise FslCompileError("script has no NODE_TABLE")
        return NodeTable(entries)

    def _build_filter_table(self) -> FilterTable:
        declared_vars = set(self.script.variables)
        entries = []
        for filter_def in self.script.filters:
            tuples = []
            for t in filter_def.tuples:
                if isinstance(t.pattern, str):
                    if t.pattern not in declared_vars:
                        raise FslCompileError(
                            f"filter {filter_def.name!r} uses undeclared "
                            f"variable {t.pattern!r}",
                            t.line,
                        )
                    pattern: Union[int, VarRef] = VarRef(t.pattern)
                else:
                    pattern = t.pattern
                tuples.append(FilterTuple(t.offset, t.nbytes, pattern, t.mask))
            entries.append(FilterEntry(filter_def.name, tuple(tuples)))
        return FilterTable(entries)

    def _declare_counters(self) -> None:
        for decl in self.scenario.counters:
            if decl.name in self._counter_ids:
                raise FslCompileError(f"duplicate counter {decl.name!r}", decl.line)
            counter_id = len(self.counters)
            if decl.is_event:
                pkt, src, dst, direction = decl.args
                if pkt not in self.full_filters:
                    raise FslCompileError(
                        f"counter {decl.name!r} references unknown packet type "
                        f"{pkt!r}",
                        decl.line,
                    )
                for node in (src, dst):
                    if node not in self.nodes:
                        raise FslCompileError(
                            f"counter {decl.name!r} references unknown node "
                            f"{node!r}",
                            decl.line,
                        )
                if direction not in ("SEND", "RECV"):
                    raise FslCompileError(
                        f"counter {decl.name!r}: direction must be SEND or RECV",
                        decl.line,
                    )
                direction_enum = Direction(direction)
                home = src if direction_enum is Direction.SEND else dst
                spec = CounterSpec(
                    counter_id=counter_id,
                    name=decl.name,
                    kind=CounterKind.EVENT,
                    home_node=home,
                    pkt_type=pkt,
                    src_node=src,
                    dst_node=dst,
                    direction=direction_enum,
                )
                self._referenced_filters.add(pkt)
            else:
                (node,) = decl.args
                if node not in self.nodes:
                    raise FslCompileError(
                        f"counter {decl.name!r} lives on unknown node {node!r}",
                        decl.line,
                    )
                spec = CounterSpec(
                    counter_id=counter_id,
                    name=decl.name,
                    kind=CounterKind.LOCAL,
                    home_node=node,
                )
            self.counters.append(spec)
            self._counter_ids[decl.name] = counter_id

    # ------------------------------------------------------------------
    # Conditions and terms
    # ------------------------------------------------------------------

    def _operand(self, raw: Union[int, str], line: int) -> Operand:
        if isinstance(raw, int):
            return Operand(constant=raw)
        counter_id = self._counter_ids.get(raw)
        if counter_id is None:
            raise FslCompileError(f"term references unknown counter {raw!r}", line)
        return Operand(counter_id=counter_id)

    def _intern_term(self, ast: TermAst) -> int:
        lhs = self._operand(ast.lhs, ast.line)
        rhs = self._operand(ast.rhs, ast.line)
        op = RelOp(ast.op)
        key = (lhs, op, rhs)
        existing = self._term_ids.get(key)
        if existing is not None:
            return existing
        term_id = len(self.terms)
        if lhs.is_counter and rhs.is_counter:
            mode = TermMode.MIRROR
            home = self.counters[lhs.counter_id].home_node
        elif lhs.is_counter:
            mode = TermMode.LOCAL_BROADCAST
            home = self.counters[lhs.counter_id].home_node
        elif rhs.is_counter:
            mode = TermMode.LOCAL_BROADCAST
            home = self.counters[rhs.counter_id].home_node
        else:
            raise FslCompileError(
                "term compares two constants; fold it by hand", ast.line
            )
        spec = TermSpec(term_id, lhs, op, rhs, mode=mode, home_node=home)
        self.terms.append(spec)
        self._term_ids[key] = term_id
        for operand in (lhs, rhs):
            if operand.is_counter:
                self.counters[operand.counter_id].term_ids.append(term_id)
        return term_id

    def _compile_condition(self, ast: CondAst) -> ConditionExpr:
        if isinstance(ast, TrueAst):
            return ConditionExpr("TRUE")
        if isinstance(ast, TermAst):
            return ConditionExpr("TERM", term_id=self._intern_term(ast))
        if isinstance(ast, NotAst):
            return ConditionExpr("NOT", children=[self._compile_condition(ast.child)])
        if isinstance(ast, AndAst):
            return ConditionExpr(
                "AND", children=[self._compile_condition(c) for c in ast.children]
            )
        if isinstance(ast, OrAst):
            return ConditionExpr(
                "OR", children=[self._compile_condition(c) for c in ast.children]
            )
        raise FslCompileError(f"unknown condition node {type(ast).__name__}")

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _action_home_for_rule(self, expr: ConditionExpr) -> str:
        """Where STOP/FLAG_ERROR of this rule execute: the home of the first

        counter the condition mentions, falling back to the first node.
        """
        for term_id in expr.term_ids():
            term = self.terms[term_id]
            for operand in (term.lhs, term.rhs):
                if operand.is_counter:
                    return self.counters[operand.counter_id].home_node
        return self.nodes.entries[0].name

    def _require_counter(self, args: Tuple, index: int, action: ActionAst) -> int:
        if index >= len(args) or not isinstance(args[index], str):
            raise FslCompileError(
                f"{action.name} needs a counter name", action.line
            )
        name = args[index]
        counter_id = self._counter_ids.get(name)
        if counter_id is None:
            raise FslCompileError(
                f"{action.name} references unknown counter {name!r}", action.line
            )
        return counter_id

    def _require_int(self, args: Tuple, index: int, action: ActionAst, default=None) -> int:
        if index >= len(args):
            if default is not None:
                return default
            raise FslCompileError(f"{action.name} needs an integer", action.line)
        value = args[index]
        if isinstance(value, tuple) and len(value) == 2 and value[0] == "duration":
            return int(value[1])
        if not isinstance(value, int):
            raise FslCompileError(
                f"{action.name}: expected integer, got {value!r}", action.line
            )
        return value

    def _require_duration(self, args: Tuple, index: int, action: ActionAst) -> int:
        """A duration argument in nanoseconds.  Explicit literals (``35ms``,
        ``1sec``) carry their unit; a bare integer means milliseconds, the
        DELAY primitive's natural unit (its floor is the 10 ms jiffy).
        """
        if index >= len(args):
            raise FslCompileError(f"{action.name} needs a duration", action.line)
        value = args[index]
        if isinstance(value, tuple) and len(value) == 2 and value[0] == "duration":
            return int(value[1])
        if isinstance(value, int):
            return value * 1_000_000
        raise FslCompileError(
            f"{action.name}: expected a duration, got {value!r}", action.line
        )

    def _fault_spec(self, action: ActionAst) -> Tuple[str, str, str, Direction]:
        args = action.args
        if len(args) < 4:
            raise FslCompileError(
                f"{action.name} needs (pkt_type, src, dst, SEND|RECV, ...)",
                action.line,
            )
        pkt, src, dst, direction = args[0], args[1], args[2], args[3]
        for value in (pkt, src, dst, direction):
            if not isinstance(value, str):
                raise FslCompileError(
                    f"{action.name}: bad argument {value!r}", action.line
                )
        if pkt not in self.full_filters:
            raise FslCompileError(
                f"{action.name} references unknown packet type {pkt!r}", action.line
            )
        for node in (src, dst):
            if node not in self.nodes:
                raise FslCompileError(
                    f"{action.name} references unknown node {node!r}", action.line
                )
        if direction not in ("SEND", "RECV"):
            raise FslCompileError(
                f"{action.name}: direction must be SEND or RECV", action.line
            )
        self._referenced_filters.add(pkt)
        return pkt, src, dst, Direction(direction)

    def _compile_action(
        self, action: ActionAst, rule_home: str, condition_id: int
    ) -> ActionSpec:
        action_id = len(self.actions)
        name = action.name
        if name in _COUNTER_KINDS:
            kind = _COUNTER_KINDS[name]
            counter_id = self._require_counter(action.args, 0, action)
            value = 0
            if kind in (ActionKind.INCR_CNTR, ActionKind.DECR_CNTR):
                value = self._require_int(action.args, 1, action)
            elif kind is ActionKind.ASSIGN_CNTR:
                value = self._require_int(action.args, 1, action, default=0)
            spec = ActionSpec(
                action_id=action_id,
                kind=kind,
                node=self.counters[counter_id].home_node,
                counter_id=counter_id,
                value=value,
                condition_id=condition_id,
            )
        elif name in _FAULT_KINDS:
            kind = _FAULT_KINDS[name]
            pkt, src, dst, direction = self._fault_spec(action)
            exec_node = src if direction is Direction.SEND else dst
            spec = ActionSpec(
                action_id=action_id,
                kind=kind,
                node=exec_node,
                pkt_type=pkt,
                src_node=src,
                dst_node=dst,
                direction=direction,
                condition_id=condition_id,
            )
            if kind is ActionKind.DELAY:
                spec.delay_ns = self._require_duration(action.args, 4, action)
            elif kind is ActionKind.REORDER:
                spec.reorder_count = self._require_int(action.args, 4, action)
                if spec.reorder_count < 2:
                    raise FslCompileError(
                        "REORDER needs at least 2 packets", action.line
                    )
                if len(action.args) > 5:
                    order = action.args[5]
                    if not isinstance(order, tuple) or not all(
                        isinstance(i, int) for i in order
                    ):
                        raise FslCompileError(
                            "REORDER order must be a [i j k] list", action.line
                        )
                    if sorted(order) != list(range(1, spec.reorder_count + 1)):
                        raise FslCompileError(
                            f"REORDER order must permute 1..{spec.reorder_count}",
                            action.line,
                        )
                    spec.reorder_order = tuple(order)
            elif kind is ActionKind.MODIFY:
                patches = []
                for arg in action.args[4:]:
                    if isinstance(arg, PatchAst):
                        patches.append((arg.offset, arg.data))
                    else:
                        raise FslCompileError(
                            "MODIFY extra arguments must be (offset pattern) "
                            "patches",
                            action.line,
                        )
                spec.patches = tuple(patches)
        elif name in ("FAIL", "CRASH"):
            if len(action.args) != 1 or not isinstance(action.args[0], str):
                raise FslCompileError(
                    f"{name} needs exactly one node name", action.line
                )
            target = action.args[0]
            if target not in self.nodes:
                raise FslCompileError(
                    f"{name} of unknown node {target!r}", action.line
                )
            spec = ActionSpec(
                action_id=action_id,
                kind=ActionKind.FAIL if name == "FAIL" else ActionKind.CRASH,
                node=target,
                target_node=target,
                condition_id=condition_id,
            )
        elif name == "RESTART":
            # RESTART(node [, delay]) executes at the rule's home node —
            # the target is down and cannot run its own reboot — and asks
            # the control node to reboot *target* after *delay*.
            if not action.args or not isinstance(action.args[0], str):
                raise FslCompileError(
                    "RESTART needs a node name (and an optional delay)",
                    action.line,
                )
            target = action.args[0]
            if target not in self.nodes:
                raise FslCompileError(
                    f"RESTART of unknown node {target!r}", action.line
                )
            if len(action.args) > 2:
                raise FslCompileError(
                    "RESTART takes at most (node, delay)", action.line
                )
            delay_ns = (
                self._require_duration(action.args, 1, action)
                if len(action.args) > 1
                else 0
            )
            spec = ActionSpec(
                action_id=action_id,
                kind=ActionKind.RESTART,
                node=rule_home,
                target_node=target,
                delay_ns=delay_ns,
                condition_id=condition_id,
            )
        elif name == "STOP":
            spec = ActionSpec(
                action_id=action_id,
                kind=ActionKind.STOP,
                node=rule_home,
                condition_id=condition_id,
            )
        elif name in ("FLAG_ERROR", "FLAG_ERR"):
            spec = ActionSpec(
                action_id=action_id,
                kind=ActionKind.FLAG_ERROR,
                node=rule_home,
                condition_id=condition_id,
            )
        else:
            raise FslCompileError(f"unknown action {name!r}", action.line)
        self.actions.append(spec)
        return spec

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def compile(self) -> CompiledProgram:
        self._declare_counters()
        for rule in self.scenario.rules:
            condition_id = len(self.conditions)
            expr = self._compile_condition(rule.condition)
            condition = ConditionSpec(
                condition_id=condition_id,
                expr=expr,
                is_true_rule=isinstance(rule.condition, TrueAst),
                line=rule.line,
            )
            self.conditions.append(condition)
            rule_home = self._action_home_for_rule(expr)
            for action_ast in rule.actions:
                spec = self._compile_action(action_ast, rule_home, condition_id)
                condition.triggers.append((spec.node, spec.action_id))
            for term_id in expr.term_ids():
                self.terms[term_id].condition_ids.append(condition_id)

        # Initial enablement: ENABLE_CNTR targets start disabled.
        enabled_targets = {
            spec.counter_id
            for spec in self.actions
            if spec.kind is ActionKind.ENABLE_CNTR
        }
        for counter in self.counters:
            if counter.kind is CounterKind.EVENT and counter.counter_id in enabled_targets:
                counter.initially_enabled = False

        # Routing: consumers of each term are the nodes evaluating the
        # conditions that use it; wire subscriber sets accordingly.
        for condition in self.conditions:
            eval_nodes = condition.nodes()
            for term_id in condition.expr.term_ids():
                term = self.terms[term_id]
                term.consumer_nodes.update(eval_nodes)
        for term in self.terms:
            if term.mode is TermMode.MIRROR:
                for operand in (term.lhs, term.rhs):
                    if operand.is_counter:
                        counter = self.counters[operand.counter_id]
                        counter.mirror_subscribers.update(
                            node
                            for node in term.consumer_nodes
                            if node != counter.home_node
                        )

        filters = self.full_filters.restricted_to(self._referenced_filters)
        # Compile the classification index now, so engines armed with this
        # program never pay index construction on the packet hot path.
        filters.compile_index()
        return CompiledProgram(
            scenario_name=self.scenario.name,
            timeout_ns=self.scenario.timeout_ns,
            filters=filters,
            nodes=self.nodes,
            counters=self.counters,
            terms=self.terms,
            conditions=self.conditions,
            actions=self.actions,
            variables=tuple(self.script.variables),
        )


def compile_script(script: ScriptAst, scenario_name: Optional[str] = None) -> CompiledProgram:
    """Compile one scenario of a parsed script into its six tables."""
    return _Compiler(script, script.scenario(scenario_name)).compile()
