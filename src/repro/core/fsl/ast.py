"""Abstract syntax tree for FSL scripts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class TupleAst:
    """One (offset, nbytes, [mask], pattern) filter tuple; pattern is an

    int or the name of a VAR bound at run time.
    """

    offset: int
    nbytes: int
    pattern: Union[int, str]
    mask: Optional[int]
    line: int


@dataclass(frozen=True)
class FilterDefAst:
    name: str
    tuples: Tuple[TupleAst, ...]
    line: int


@dataclass(frozen=True)
class NodeDefAst:
    name: str
    mac: str
    ip: str
    line: int


@dataclass(frozen=True)
class CounterDeclAst:
    """``NAME: (pkt, src, dst, SEND|RECV)`` or ``NAME: (node)``."""

    name: str
    args: Tuple[str, ...]
    line: int

    @property
    def is_event(self) -> bool:
        return len(self.args) == 4


# -- conditions ------------------------------------------------------------


class CondAst:
    """Base class for condition expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class TrueAst(CondAst):
    """The literal (TRUE) initialisation condition."""


@dataclass(frozen=True)
class TermAst(CondAst):
    lhs: Union[int, str]
    op: str  # one of > < >= <= = !=
    rhs: Union[int, str]
    line: int = 0


@dataclass(frozen=True)
class NotAst(CondAst):
    child: CondAst


@dataclass(frozen=True)
class AndAst(CondAst):
    children: Tuple[CondAst, ...]


@dataclass(frozen=True)
class OrAst(CondAst):
    children: Tuple[CondAst, ...]


# -- actions -----------------------------------------------------------------


@dataclass(frozen=True)
class PatchAst:
    """A MODIFY patch: write *data* at *offset*."""

    offset: int
    data: bytes


@dataclass(frozen=True)
class ActionAst:
    """A primitive invocation; arguments stay syntactic until compilation."""

    name: str
    args: Tuple[object, ...]  # str idents, int literals, duration ns as
    # ("duration", ns), int-list tuples, PatchAst
    line: int


@dataclass(frozen=True)
class RuleAst:
    condition: CondAst
    actions: Tuple[ActionAst, ...]
    line: int


@dataclass(frozen=True)
class ScenarioAst:
    name: str
    timeout_ns: int  # 0 = no declared timeout
    counters: Tuple[CounterDeclAst, ...]
    rules: Tuple[RuleAst, ...]
    line: int


@dataclass
class ScriptAst:
    """A full FSL script: declarations plus one or more scenarios."""

    variables: List[str] = field(default_factory=list)
    filters: List[FilterDefAst] = field(default_factory=list)
    nodes: List[NodeDefAst] = field(default_factory=list)
    scenarios: List[ScenarioAst] = field(default_factory=list)

    def scenario(self, name: Optional[str] = None) -> ScenarioAst:
        """The named scenario, or the only/first one when *name* is None."""
        if name is None:
            if not self.scenarios:
                raise ValueError("script declares no scenario")
            return self.scenarios[0]
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise ValueError(f"no scenario named {name!r}")
