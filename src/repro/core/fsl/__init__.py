"""The Fault Specification Language front-end: lexer, parser, compiler."""

from .ast import ScriptAst
from .compiler import compile_script
from .parser import parse_script
from .tokens import TokKind, Token, tokenize


def compile_text(text: str, scenario_name=None):
    """Parse and compile FSL source in one step."""
    return compile_script(parse_script(text), scenario_name)


__all__ = [
    "ScriptAst",
    "TokKind",
    "Token",
    "compile_script",
    "compile_text",
    "parse_script",
    "tokenize",
]
