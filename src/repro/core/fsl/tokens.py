"""Lexer for the Fault Specification Language.

Tokenises the concrete syntax seen in the paper's Figs 2, 5 and 6:
section keywords (``FILTER_TABLE`` .. ``END``), packet-definition tuples,
MAC and dotted-IP literals, duration literals (``1sec``, ``250ms``),
C-style relational/logical operators, the rule arrow ``>>``, and both
``/* ... */`` and ``//``/``#`` comments.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from ...errors import FslLexError


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    DURATION = "duration"
    MAC = "mac"
    IP = "ip"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    COLON = ":"
    SEMI = ";"
    ARROW = ">>"
    # relational
    GT = ">"
    LT = "<"
    GE = ">="
    LE = "<="
    EQ = "="
    NE = "!="
    # logical
    AND = "&&"
    OR = "||"
    NOT = "!"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    value: object  # int for INT, ns for DURATION, raw text otherwise
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, line {self.line})"


_MAC_RE = re.compile(r"[0-9a-fA-F]{2}(:[0-9a-fA-F]{2}){5}")
_IP_RE = re.compile(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}")
_DURATION_RE = re.compile(r"(\d+(?:\.\d+)?)(sec|msec|usec|nsec|ms|us|ns|s)\b")
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+")
_INT_RE = re.compile(r"\d+")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_DURATION_SCALE = {
    "s": 1_000_000_000,
    "sec": 1_000_000_000,
    "ms": 1_000_000,
    "msec": 1_000_000,
    "us": 1_000,
    "usec": 1_000,
    "ns": 1,
    "nsec": 1,
}

_TWO_CHAR_OPS = {
    ">>": TokKind.ARROW,
    ">=": TokKind.GE,
    "<=": TokKind.LE,
    "==": TokKind.EQ,
    "!=": TokKind.NE,
    "<>": TokKind.NE,
    "&&": TokKind.AND,
    "||": TokKind.OR,
}

_ONE_CHAR_OPS = {
    "(": TokKind.LPAREN,
    ")": TokKind.RPAREN,
    "[": TokKind.LBRACKET,
    "]": TokKind.RBRACKET,
    ",": TokKind.COMMA,
    ":": TokKind.COLON,
    ";": TokKind.SEMI,
    ">": TokKind.GT,
    "<": TokKind.LT,
    "=": TokKind.EQ,
    "!": TokKind.NOT,
}

#: Word forms of the logical operators, normalised by the lexer.
_WORD_OPS = {"AND": TokKind.AND, "OR": TokKind.OR, "NOT": TokKind.NOT}


def tokenize(text: str) -> List[Token]:
    """Tokenise *text*; raises :class:`FslLexError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        # -- whitespace and comments ----------------------------------
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end < 0:
                raise FslLexError("unterminated /* comment", line, pos - line_start + 1)
            line += text.count("\n", pos, end)
            if "\n" in text[pos:end]:
                line_start = text.rfind("\n", pos, end) + 1
            pos = end + 2
            continue
        if text.startswith("//", pos) or ch == "#":
            end = text.find("\n", pos)
            pos = n if end < 0 else end
            continue

        column = pos - line_start + 1

        # -- structured literals (longest-match first) ------------------
        match = _MAC_RE.match(text, pos)
        if match and not _IDENT_RE.match(text, pos + len(match.group())):
            yield Token(TokKind.MAC, match.group(), match.group(), line, column)
            pos = match.end()
            continue
        match = _IP_RE.match(text, pos)
        if match:
            yield Token(TokKind.IP, match.group(), match.group(), line, column)
            pos = match.end()
            continue
        match = _DURATION_RE.match(text, pos)
        if match:
            ns = int(round(float(match.group(1)) * _DURATION_SCALE[match.group(2)]))
            yield Token(TokKind.DURATION, match.group(), ns, line, column)
            pos = match.end()
            continue
        match = _HEX_RE.match(text, pos)
        if match:
            yield Token(TokKind.INT, match.group(), int(match.group(), 16), line, column)
            pos = match.end()
            continue
        match = _INT_RE.match(text, pos)
        if match:
            yield Token(TokKind.INT, match.group(), int(match.group(), 10), line, column)
            pos = match.end()
            continue
        match = _IDENT_RE.match(text, pos)
        if match:
            word = match.group()
            kind = _WORD_OPS.get(word, TokKind.IDENT)
            yield Token(kind, word, word, line, column)
            pos = match.end()
            continue

        # -- operators ---------------------------------------------------
        two = text[pos : pos + 2]
        if two in _TWO_CHAR_OPS:
            yield Token(_TWO_CHAR_OPS[two], two, two, line, column)
            pos += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token(_ONE_CHAR_OPS[ch], ch, ch, line, column)
            pos += 1
            continue

        raise FslLexError(f"unexpected character {ch!r}", line, column)
    yield Token(TokKind.EOF, "", None, line, pos - line_start + 1)
