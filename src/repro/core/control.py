"""The VirtualWire control-plane protocol (paper §5.2).

Control messages ride as payloads of raw Ethernet frames with the
experimental EtherType 0x88B5.  They carry scenario orchestration
(INIT/START/SHUTDOWN), the distributed-evaluation state exchange
(COUNTER_UPDATE, TERM_STATUS), and result reporting (ERROR_REPORT,
STOP_REPORT) back to the control node.

Counter values are signed 64-bit: scripts may drive a counter negative
(the Fig 5 invariant is literally ``CanTx < 0``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ControlPlaneError
from ..net.bytesutil import pack_u16, read_u16
from ..net.frame import ETHERTYPE_VW_CONTROL, EthernetFrame


class ControlType(enum.Enum):
    INIT = 1
    INIT_ACK = 2
    START = 3
    SHUTDOWN = 4
    COUNTER_UPDATE = 5
    TERM_STATUS = 6
    ERROR_REPORT = 7
    STOP_REPORT = 8


@dataclass(frozen=True)
class ControlMessage:
    """A decoded control-plane message.

    Field use by type:

    ========== ================ ================
    type       a                b
    ========== ================ ================
    INIT       program id       table checksum
    INIT_ACK   program id       0
    START      program id       0
    SHUTDOWN   program id       0
    COUNTER_UPDATE counter id   value (signed)
    TERM_STATUS    term id      0/1
    ERROR_REPORT   condition id action id
    STOP_REPORT    condition id 0
    ========== ================ ================
    """

    msg_type: ControlType
    a: int = 0
    b: int = 0

    def to_payload(self) -> bytes:
        return (
            bytes([self.msg_type.value])
            + pack_u16(self.a)
            + self.b.to_bytes(8, "big", signed=True)
        )

    def wrap(self, dst, src) -> EthernetFrame:
        return EthernetFrame(dst, src, ETHERTYPE_VW_CONTROL, self.to_payload())

    @classmethod
    def parse(cls, payload: bytes) -> "ControlMessage":
        if len(payload) < 11:
            raise ControlPlaneError(
                f"control payload of {len(payload)} bytes is too short"
            )
        try:
            msg_type = ControlType(payload[0])
        except ValueError:
            raise ControlPlaneError(f"unknown control type {payload[0]}") from None
        return cls(
            msg_type=msg_type,
            a=read_u16(payload, 1),
            b=int.from_bytes(payload[3:11], "big", signed=True),
        )

    def __repr__(self) -> str:
        return f"ControlMessage({self.msg_type.name}, a={self.a}, b={self.b})"
