"""The VirtualWire control-plane protocol (paper §5.2).

Control messages ride as payloads of raw Ethernet frames with the
experimental EtherType 0x88B5.  They carry scenario orchestration
(INIT/START/SHUTDOWN), the distributed-evaluation state exchange
(COUNTER_UPDATE, TERM_STATUS), and result reporting (ERROR_REPORT,
STOP_REPORT) back to the control node.

The channel itself is made reliable by :mod:`repro.core.reliable`: every
message that matters carries a per-peer sequence number and the
``FLAG_RELIABLE`` bit, is acknowledged by an ``ACK`` message echoing the
sequence number, and is retransmitted with exponential backoff until
acknowledged or the retry budget runs out (see docs/CONTROL_PLANE.md).

Counter values are signed 64-bit: scripts may drive a counter negative
(the Fig 5 invariant is literally ``CanTx < 0``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ControlPlaneError
from ..net.bytesutil import pack_u16, pack_u32, read_u16, read_u32
from ..net.frame import ETHERTYPE_VW_CONTROL, EthernetFrame


class ControlType(enum.Enum):
    INIT = 1
    INIT_ACK = 2
    START = 3
    SHUTDOWN = 4
    COUNTER_UPDATE = 5
    TERM_STATUS = 6
    ERROR_REPORT = 7
    STOP_REPORT = 8
    #: channel-level acknowledgement of a reliable message (a = acked seq's
    #: low 16 bits, unused; the acked sequence number travels in ``seq``).
    ACK = 9
    #: INIT table-checksum mismatch: the node refuses to arm the tables.
    INIT_NACK = 10
    #: liveness probe from the front-end; the channel-level ACK is the reply.
    HEARTBEAT = 11
    #: a rebooted node announcing itself to the control node for re-INIT.
    REGISTER = 12
    #: control-node broadcast: the named node rebooted — reset the reliable
    #: channel's per-peer state for it and replay any shared state it needs.
    NODE_RESET = 13
    #: a scenario node relaying a scripted RESTART request to the front-end
    #: (the rule fired away from the control node).
    RESTART_REPORT = 14


#: Message participates in the reliable-delivery protocol: it carries a
#: meaningful sequence number, is ACKed, deduplicated and retransmitted.
FLAG_RELIABLE = 0x01

_KNOWN_FLAGS = FLAG_RELIABLE

#: Exact on-wire payload size: type(1) flags(1) seq(4) a(2) b(8).
WIRE_SIZE = 16


@dataclass(frozen=True)
class ControlMessage:
    """A decoded control-plane message.

    Field use by type:

    ========== ================ ================
    type       a                b
    ========== ================ ================
    INIT       program id       table checksum
    INIT_ACK   program id       0
    INIT_NACK  program id       computed checksum
    START      program id       0
    SHUTDOWN   program id       0
    COUNTER_UPDATE counter id   value (signed)
    TERM_STATUS    term id      0/1
    ERROR_REPORT   condition id action id
    STOP_REPORT    condition id 0
    ACK            0            0 (acked seq in ``seq``)
    HEARTBEAT      0            0
    REGISTER       0            0
    NODE_RESET     node index   0
    RESTART_REPORT node index   boot delay (ns)
    ========== ================ ================

    ``seq`` is the per-(sender, peer) sequence number assigned by the
    reliable channel; ``flags`` carries :data:`FLAG_RELIABLE`.  A message
    with ``flags == 0`` is delivered exactly as received — no ordering,
    deduplication or acknowledgement — which is also the compatibility
    behaviour for hand-crafted frames in tests.
    """

    msg_type: ControlType
    a: int = 0
    b: int = 0
    seq: int = 0
    flags: int = 0

    @property
    def reliable(self) -> bool:
        return bool(self.flags & FLAG_RELIABLE)

    def to_payload(self) -> bytes:
        return (
            bytes([self.msg_type.value, self.flags])
            + pack_u32(self.seq)
            + pack_u16(self.a)
            + self.b.to_bytes(8, "big", signed=True)
        )

    def wrap(self, dst, src) -> EthernetFrame:
        return EthernetFrame(dst, src, ETHERTYPE_VW_CONTROL, self.to_payload())

    @classmethod
    def parse(cls, payload: bytes) -> "ControlMessage":
        if len(payload) < WIRE_SIZE:
            raise ControlPlaneError(
                f"control payload of {len(payload)} bytes is too short"
            )
        if len(payload) > WIRE_SIZE:
            raise ControlPlaneError(
                f"control payload of {len(payload)} bytes has trailing garbage "
                f"(expected exactly {WIRE_SIZE})"
            )
        try:
            msg_type = ControlType(payload[0])
        except ValueError:
            raise ControlPlaneError(f"unknown control type {payload[0]}") from None
        flags = payload[1]
        if flags & ~_KNOWN_FLAGS:
            raise ControlPlaneError(f"unknown control flags {flags:#04x}")
        return cls(
            msg_type=msg_type,
            a=read_u16(payload, 6),
            b=int.from_bytes(payload[8:16], "big", signed=True),
            seq=read_u32(payload, 2),
            flags=flags,
        )

    def __repr__(self) -> str:
        rel = f", seq={self.seq}" if self.reliable else ""
        return f"ControlMessage({self.msg_type.name}, a={self.a}, b={self.b}{rel})"
