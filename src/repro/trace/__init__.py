"""Packet capture and offline trace inspection (the tcpdump substitute)."""

from .recorder import TapLayer, TraceRecord, TraceRecorder

__all__ = ["TapLayer", "TraceRecord", "TraceRecorder"]
