"""In-simulation packet capture (the testbed's tcpdump).

The paper motivates VirtualWire partly by how tedious it was to collect
tcpdump traces and inspect them manually (§1).  This recorder provides the
"before" workflow — full packet capture with offline filtering — both for
debugging the library itself and so tests can assert on wire-level
behaviour independently of the FAE.

A :class:`TraceRecorder` taps any point that sees raw frames: spliced into
a host chain via :class:`TapLayer`, or subscribed to a NIC.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from ..net.packet import FrameView
from ..sim import Simulator, format_time
from ..stack.layers import FrameLayer


class TraceRecord:
    """One captured frame with its capture context."""

    __slots__ = ("when", "where", "direction", "view")

    def __init__(self, when: int, where: str, direction: str, data: bytes) -> None:
        self.when = when
        self.where = where
        self.direction = direction  # "send" | "recv"
        self.view = FrameView(data)

    @property
    def data(self) -> bytes:
        return self.view.data

    def render(self) -> str:
        """tcpdump-style one-liner."""
        return (
            f"{format_time(self.when):>14} {self.where:<12} "
            f"{self.direction:<4} {self.view.summary()}"
        )

    def __repr__(self) -> str:
        return f"TraceRecord({self.render()})"


class TraceRecorder:
    """Accumulates :class:`TraceRecord` objects from any number of taps."""

    def __init__(self, sim: Simulator, max_records: int = 1_000_000) -> None:
        self.sim = sim
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped_records = 0

    def capture(self, where: str, direction: str, data: bytes) -> None:
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        self.records.append(TraceRecord(self.sim.now, where, direction, data))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # -- queries ----------------------------------------------------------

    def select(
        self,
        where: Optional[str] = None,
        direction: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Filter records by capture point, direction and/or a predicate."""
        out = []
        for record in self.records:
            if where is not None and record.where != where:
                continue
            if direction is not None and record.direction != direction:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def tcp_records(self) -> List[TraceRecord]:
        return [r for r in self.records if r.view.tcp is not None]

    def rether_records(self) -> List[TraceRecord]:
        return [r for r in self.records if r.view.is_rether]

    def render(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Multi-line text dump of *records* (default: everything)."""
        lines = [r.render() for r in (self.records if records is None else records)]
        if records is None and self.dropped_records:
            # A saturated capture must never read as a complete trace.
            lines.append(
                f"... {self.dropped_records} record"
                f"{'s' if self.dropped_records != 1 else ''} dropped "
                f"(capture saturated at {self.max_records})"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.records.clear()
        self.dropped_records = 0


class TapLayer(FrameLayer):
    """A transparent frame layer feeding a :class:`TraceRecorder`."""

    def __init__(self, recorder: TraceRecorder, where: str) -> None:
        super().__init__(f"tap:{where}")
        self.recorder = recorder
        self.where = where

    def on_send(self, frame_bytes: bytes) -> None:
        self.recorder.capture(self.where, "send", frame_bytes)
        self.pass_down(frame_bytes)

    def on_receive(self, frame_bytes: bytes) -> None:
        self.recorder.capture(self.where, "recv", frame_bytes)
        self.pass_up(frame_bytes)
