"""``python -m repro`` — FSL script tooling (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
