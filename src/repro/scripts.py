"""The paper's FSL scripts, as reusable templates.

These are the exact scenarios of the paper's Figs 5 and 6, parameterised
only by the NODE_TABLE section (the testbed knows the generated addresses)
and, for convenience in tests, by numeric thresholds.

Two corrections to the Fig 5 listing as printed (the published script is
OCR-degraded — line numbers repeat) are documented in DESIGN.md §2.3 and
applied here:

* ``CanTx`` is initialised to 1, the initial congestion window — starting
  it at 0 would flag the very first data packet of any correct
  implementation;
* the slow-start rule credits ``CanTx`` by **2** per ACK (one in-flight
  slot freed plus one window-growth slot), which makes the script's credit
  model exactly track the algorithm the paper's §6.1 text describes.  With
  a +1 credit, a correct implementation is flagged on the second packet of
  every slow-start round.
"""

from __future__ import annotations

#: The paper's Fig 2 filter table (TCP over the 0x6000 -> 0x4000
#: connection), including the VAR-based retransmission detectors.
TCP_FILTER_TABLE = """\
VAR SeqNoData, SeqNoAck;
FILTER_TABLE
  TCP_data_rt1: (34 2 0x6000), (36 2 0x4000), (38 4 SeqNoData), (47 1 0x10 0x10)
  TCP_ack_rt1:  (34 2 0x4000), (36 2 0x6000), (42 4 SeqNoAck), (47 1 0x10 0x10)
  TCP_syn:      (34 2 0x6000), (36 2 0x4000), (47 1 0x02 0x02)
  TCP_synack:   (34 2 0x4000), (36 2 0x6000), (47 1 0x12 0x12)
  TCP_data:     (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
  TCP_ack:      (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)
END
"""

#: Fig 5: verify the slow-start -> congestion-avoidance switch after one
#: dropped SYNACK forces ssthresh down to 2.
_TCP_SCENARIO = """\
SCENARIO TCP_SS_CA_algo
  SYNACK:   (TCP_synack, node2, node1, RECV)
  SA_ACK:   (TCP_data, node1, node2, SEND)
  DATA:     (TCP_data, node1, node2, SEND)
  ACK:      (TCP_ack, node2, node1, RECV)
  CWND:     (node1)
  CanTx:    (node1)
  CCNT:     (node1)
  SSTHRESH: (node1)
  (TRUE) >> ENABLE_CNTR( SYNACK );
       ENABLE_CNTR( SA_ACK );
       ENABLE_CNTR( ACK );
       ASSIGN_CNTR( CWND, 1 );
       ASSIGN_CNTR( CanTx, 1 );
       ASSIGN_CNTR( SSTHRESH, 2 );
  /* Fault injection: drop one SYNACK at the receiver node */
  ((SYNACK > 0) && (SYNACK < 2)) >> DROP TCP_synack, node2, node1, RECV;
  /*** ANALYSIS SCRIPT ***/
  /* The ACK in response to the SYNACK matches TCP_data */
  ((SA_ACK = 1)) >> ENABLE_CNTR( DATA ); DISABLE_CNTR( SA_ACK );
  ((DATA = 1)) >> RESET_CNTR( DATA ); DECR_CNTR( CanTx, 1 );
  /* slow-start: an ACK frees one slot and grows the window by one */
  ((CWND <= SSTHRESH) && (ACK = 1)) >> RESET_CNTR( ACK );
       INCR_CNTR( CWND, 1 ); INCR_CNTR( CanTx, 2 );
  /* congestion avoidance */
  ((CWND > SSTHRESH) && (ACK = 1)) >> RESET_CNTR( ACK );
       INCR_CNTR( CanTx, 1 ); INCR_CNTR( CCNT, 1 );
  ((CWND > SSTHRESH) && (CCNT > CWND)) >> RESET_CNTR( CCNT );
       INCR_CNTR( CWND, 1 ); INCR_CNTR( CanTx, 1 );
  /* Number of data packets that can be sent out is never negative */
  ((CanTx < 0)) >> FLAG_ERROR;
END
"""


def tcp_congestion_script(node_table_fsl: str) -> str:
    """The complete Fig 5 script for a testbed's node table."""
    return TCP_FILTER_TABLE + node_table_fsl + "\n" + _TCP_SCENARIO


#: Fig 6 filter table: Rether control packets plus the real-time TCP flow.
RETHER_FILTER_TABLE = """\
FILTER_TABLE
  tr_token:     (12 2 0x9900), (14 2 0x0001)
  tr_token_ack: (12 2 0x9900), (14 2 0x0010)
  TCP_data:     (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
"""

_RETHER_SCENARIO = """\
SCENARIO Test_Single_Node_Failure 1sec
  CNT_DATA:    (TCP_data, node1, node4, RECV)
  TokensTo2:   (tr_token, node1, node2, RECV)
  TokensFrom2: (tr_token, node2, node3, SEND)
  TokensTo4:   (tr_token, node2, node4, RECV)
  TokensTo1:   (tr_token, node4, node1, RECV)
  ((CNT_DATA > {data_threshold})) >> ENABLE_CNTR( TokensTo2 );
  ((TokensTo2 = 1)) >> FAIL( node3 );
        ENABLE_CNTR( TokensFrom2 );
        RESET_CNTR( TokensTo2 );
  ((TokensFrom2 = 3)) >> ENABLE_CNTR( TokensTo4 );
  ((TokensTo4 = 1)) >> ENABLE_CNTR( TokensTo1 );
  /*** ANALYSIS SCRIPT ***/
  ((TokensFrom2 > 3)) >> FLAG_ERROR;
  ((TokensTo2 = 1) && (TokensTo4 = 1) && (TokensTo1 = 1)) >> STOP;
END
"""


def rether_failover_script(node_table_fsl: str, data_threshold: int = 1000) -> str:
    """The complete Fig 6 script.

    *data_threshold* is the number of TCP data packets that must reach
    node4 before node3 is crashed (1000 in the paper; tests lower it to
    keep runs short).
    """
    return (
        RETHER_FILTER_TABLE
        + node_table_fsl
        + "\n"
        + _RETHER_SCENARIO.format(data_threshold=data_threshold)
    )


#: Extended Fig 6 (docs/NODE_LIFECYCLE.md): the failed node does not stay
#: dead — it is crashed with amnesia, rebooted after a delay, re-synced by
#: the control node, and must carry the token again before STOP.
_CRASH_RESTART_SCENARIO = """\
SCENARIO Crash_Restart_Rejoin 1sec
  CNT_DATA:    (TCP_data, node1, node4, RECV)
  TokensTo2:   (tr_token, node1, node2, RECV)
  TokensFrom2: (tr_token, node2, node3, SEND)
  TokensTo4:   (tr_token, node2, node4, RECV)
  Healed:      (tr_token, node3, node4, RECV)
  ((CNT_DATA > {data_threshold})) >> ENABLE_CNTR( TokensTo2 );
  /* Fault injection: crash node3 with amnesia, reboot it later.  The
     trigger counter is reset AND disabled: tokens keep circling the
     healed ring, and a re-armed trigger would re-crash the node the
     moment it rejoined. */
  ((TokensTo2 = 1)) >> CRASH( node3 );
        RESTART( node3, {restart_delay_ms} );
        ENABLE_CNTR( TokensFrom2 );
        RESET_CNTR( TokensTo2 );
        DISABLE_CNTR( TokensTo2 );
  /*** ANALYSIS SCRIPT ***/
  /* Ring heals around the dead node: three handoff attempts, then bypass */
  ((TokensFrom2 = 3)) >> ENABLE_CNTR( TokensTo4 );
  ((TokensTo4 = 1)) >> DISABLE_CNTR( TokensFrom2 ); ENABLE_CNTR( Healed );
  /* The rebooted node carries the token again: full recovery */
  ((Healed = 1)) >> STOP;
  ((TokensFrom2 > 3)) >> FLAG_ERROR;
END
"""


def rether_crash_restart_script(
    node_table_fsl: str,
    data_threshold: int = 1000,
    restart_delay_ms: int = 300,
) -> str:
    """The extended Fig 6 script: crash, reboot, re-sync, rejoin.

    Like :func:`rether_failover_script` up to the node loss, but the node
    is CRASHed (soft state destroyed, not just the NIC) and RESTARTed
    *restart_delay_ms* later.  Success requires the healed ring *and* the
    rebooted node forwarding the token again (``Healed``); the scenario
    fails if node2 hands the token to the dead node more than its three
    eviction attempts.
    """
    return (
        RETHER_FILTER_TABLE
        + node_table_fsl
        + "\n"
        + _CRASH_RESTART_SCENARIO.format(
            data_threshold=data_threshold, restart_delay_ms=restart_delay_ms
        )
    )


def canonical_node_table(n_hosts: int) -> str:
    """The NODE_TABLE a default :class:`repro.Testbed` generates for hosts

    named ``node1..nodeN`` added in order — the binding the shipped
    ``scenarios/*.fsl`` files embed.
    """
    lines = ["NODE_TABLE"]
    for index in range(1, n_hosts + 1):
        lines.append(
            f"  node{index} 02:00:00:00:00:{index:02x} 192.168.1.{index}"
        )
    lines.append("END")
    return "\n".join(lines)


def write_standard_scripts(directory) -> list:
    """Materialise the paper's scripts as standalone ``.fsl`` files.

    The repository ships the output under ``scenarios/`` for use with the
    ``python -m repro`` CLI; this function regenerates them (e.g. after
    editing the templates).  Returns the written paths.
    """
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files = {
        "fig5_tcp_congestion.fsl": tcp_congestion_script(canonical_node_table(2)),
        "fig6_rether_failover.fsl": rether_failover_script(canonical_node_table(4)),
        "fig6_crash_restart.fsl": rether_crash_restart_script(
            canonical_node_table(4)
        ),
    }
    written = []
    for name, content in files.items():
        path = directory / name
        path.write_text(content)
        written.append(path)
    return written
