#!/usr/bin/env python3
"""Quickstart: inject a packet drop into a UDP flow and verify the effect.

Builds the smallest possible testbed (two hosts on a 100 Mbps switch),
writes a five-rule FSL scenario that drops the third, fourth and fifth
probe of a UDP echo session at the receiver, and lets the analysis half of
the same script verify — from the wire, with no instrumentation of the
echo code — that exactly three probes went unanswered.

Run:  python examples/quickstart.py
"""

from repro import Testbed, seconds
from repro.workloads import EchoClient, EchoServer

SCRIPT_TEMPLATE = """
FILTER_TABLE
  /* UDP to port 7 = echo probes; UDP from port 7 = echo replies.     */
  /* Offsets per the paper: 14B Ethernet + 20B IPv4 puts UDP at 34.   */
  udp_probe: (12 2 0x0800), (23 1 0x11), (36 2 0x0007)
  udp_echo:  (12 2 0x0800), (23 1 0x11), (34 2 0x0007)
END
{node_table}
SCENARIO drop_three_probes
  ProbesIn: (udp_probe, node1, node2, RECV)
  Replies:  (udp_echo,  node2, node1, RECV)

  /* Fault injection: the server never sees probes 3..5.  The counter
     update precedes the fault check, so the packet that takes ProbesIn
     to 3 is itself the first one dropped.                             */
  ((ProbesIn > 2) && (ProbesIn <= 5)) >> DROP udp_probe, node1, node2, RECV;

  /* Analysis: with 10 probes sent and 3 dropped, more than 7 replies
     means the fault did not bite, so flag an error.                  */
  ((Replies > 7)) >> FLAG_ERROR;
END
"""


def main() -> None:
    testbed = Testbed(seed=42)
    node1 = testbed.add_host("node1")
    node2 = testbed.add_host("node2")
    testbed.add_switch("sw0")
    testbed.connect("sw0", node1, node2)
    testbed.install_virtualwire(control="node1")

    script = SCRIPT_TEMPLATE.format(node_table=testbed.node_table_fsl())
    server = EchoServer(node2)
    state = {}

    def workload() -> None:
        client = EchoClient(
            node1, node2.ip, probes=10, payload_size=256, timeout_ns=seconds(0.2)
        )
        state["client"] = client
        client.start()

    report = testbed.run_scenario(script, workload=workload, max_time=seconds(30))
    client = state["client"]

    print(report.render())
    print()
    print(f"probes sent      : {client.probes_target}")
    print(f"echoes received  : {len(client.rtts_ns)}")
    print(f"probe timeouts   : {client.timeouts}")
    print(f"server echoed    : {server.echoed}")
    dropped = report.engine_stats["node2"]["packets_dropped"]
    print(f"engine dropped   : {dropped} (at node2, on RECV — per the script)")
    assert report.passed and client.timeouts == 3 and dropped == 3
    print("\nquickstart OK: the fault bit exactly three probes, "
          "and the analysis script confirmed it from the wire.")


if __name__ == "__main__":
    main()
