#!/usr/bin/env python3
"""Script reuse across implementation versions — the paper's core pitch.

The abstract promises that "fault specifications can be reused across
versions of a protocol implementation".  This example runs the *unchanged*
Fig 5 script against seven versions of the TCP congestion-control module:
the correct Tahoe algorithm, a conforming Reno alternative, plus five
seeded bugs.  No test code changes between runs — only the implementation
under test does — and the script's verdict separates the conforming
versions from the broken ones.  The seven runs are one sweep campaign:
the script compiles once, the variants fan out over a process pool, and
the rows merge back in declaration order (docs/SWEEP.md).

Note the FrozenWindow row: its bug makes the sender strictly *more*
conservative, which the window-safety invariant deliberately does not
reject.  The FAE checks what the script says — nothing more — so an
overly-timid implementation needs a throughput-oriented scenario instead.

Run:  python examples/regression_suite.py
"""

import os

from repro.scripts import canonical_node_table, tcp_congestion_script
from repro.sweep import SweepSpec, run_sweep, tcp_variant_task

#: variant name -> should the Fig 5 window invariant flag it?
EXPECTED_FLAGGED = {
    "tahoe": False,
    "reno": False,  # a second conforming version: fast recovery
    "bug-no-congestion-avoidance": True,
    "bug-ignores-ssthresh-reset": True,
    "bug-aggressive-slow-start": True,
    "bug-eager-congestion-avoidance": True,
    "bug-frozen-window": False,  # conservative: violates nothing the script checks
}


def suite_campaign() -> SweepSpec:
    script = tcp_congestion_script(canonical_node_table(2))
    spec = SweepSpec("tcp_regression_suite", base_seed=7)
    for name in EXPECTED_FLAGGED:
        spec.add(name, tcp_variant_task, script=script, variant=name, seed=7)
    return spec


def main() -> None:
    outcome = run_sweep(
        suite_campaign(), backend=os.environ.get("REPRO_SWEEP_BACKEND", "parallel")
    )
    assert all(row.ok for row in outcome.rows), outcome.render()
    print(f"{'implementation under test':<34} {'verdict':<8} {'errors':<7} expected")
    print("-" * 66)
    all_as_expected = True
    for row in outcome.rows:
        should_flag = EXPECTED_FLAGGED[row.name]
        flagged = row.payload["flagged"]
        ok = flagged == should_flag
        all_as_expected &= ok
        print(
            f"{row.name:<34} {'PASS' if row.payload['passed'] else 'FAIL':<8} "
            f"{len(row.payload['errors']):<7} "
            f"{'flagged' if should_flag else 'clean':<8} "
            f"{'✓' if ok else '✗ UNEXPECTED'}"
        )
    assert all_as_expected
    print("\nregression suite OK: one script, seven implementations, "
          "zero test-code changes.")


if __name__ == "__main__":
    main()
