#!/usr/bin/env python3
"""Script reuse across implementation versions — the paper's core pitch.

The abstract promises that "fault specifications can be reused across
versions of a protocol implementation".  This example runs the *unchanged*
Fig 5 script against seven versions of the TCP congestion-control module:
the correct Tahoe algorithm, a conforming Reno alternative, plus five
seeded bugs.  No test code changes
between runs — only the implementation under test does — and the script's
verdict separates the conforming versions from the broken ones.

Note the FrozenWindow row: its bug makes the sender strictly *more*
conservative, which the window-safety invariant deliberately does not
reject.  The FAE checks what the script says — nothing more — so an
overly-timid implementation needs a throughput-oriented scenario instead.

Run:  python examples/regression_suite.py
"""

from repro import Testbed, seconds
from repro.scripts import tcp_congestion_script
from repro.tcp import VARIANTS

SENDER_PORT = 0x6000
RECEIVER_PORT = 0x4000

#: variant name -> should the Fig 5 window invariant flag it?
EXPECTED_FLAGGED = {
    "tahoe": False,
    "reno": False,  # a second conforming version: fast recovery
    "bug-no-congestion-avoidance": True,
    "bug-ignores-ssthresh-reset": True,
    "bug-aggressive-slow-start": True,
    "bug-eager-congestion-avoidance": True,
    "bug-frozen-window": False,  # conservative: violates nothing the script checks
}


def run_one(variant_name: str):
    variant = VARIANTS[variant_name]
    testbed = Testbed(seed=7)
    node1 = testbed.add_host("node1")
    node2 = testbed.add_host("node2")
    testbed.add_switch("sw0")
    testbed.connect("sw0", node1, node2)
    testbed.install_virtualwire(control="node1")
    script = tcp_congestion_script(testbed.node_table_fsl())

    def workload() -> None:
        node2.tcp.listen(RECEIVER_PORT)
        conn = node1.tcp.connect(
            node2.ip, RECEIVER_PORT, local_port=SENDER_PORT, congestion=variant()
        )
        conn.on_established = lambda: conn.send(bytes(64 * 1024))

    return testbed.run_scenario(script, workload=workload, max_time=seconds(60))


def main() -> None:
    print(f"{'implementation under test':<34} {'verdict':<8} {'errors':<7} expected")
    print("-" * 66)
    all_as_expected = True
    for name, should_flag in EXPECTED_FLAGGED.items():
        report = run_one(name)
        flagged = bool(report.errors)
        ok = flagged == should_flag
        all_as_expected &= ok
        print(
            f"{name:<34} {'PASS' if report.passed else 'FAIL':<8} "
            f"{len(report.errors):<7} "
            f"{'flagged' if should_flag else 'clean':<8} "
            f"{'✓' if ok else '✗ UNEXPECTED'}"
        )
    assert all_as_expected
    print("\nregression suite OK: one script, six implementations, "
          "zero test-code changes.")


if __name__ == "__main__":
    main()
