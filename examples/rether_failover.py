#!/usr/bin/env python3
"""The paper's §6.2 case study: Rether token recovery after a node crash.

Reproduces Fig 6 end to end on a four-node shared bus running the Rether
token-passing protocol, with a real-time TCP flow between node1 and node4.
After 1000 TCP data packets, the script crashes node3 at the very moment
node2 receives the token — so node2's next handoff goes to a dead station.
The analysis half of the same script then verifies, from the wire, that

* node2 transmits the token to node3 exactly three times (the protocol's
  failure-detection budget) — a fourth transmission flags an error;
* the ring is reconstructed without node3: the token reaches node4, then
  node1, then node2 again, at which point the scenario STOPs;
* detection plus recovery completes within the scenario's 1-second
  inactivity timeout, or the run is reported as failed.

This is also the paper's demonstration of *distributed* rule execution:
the crash trigger counts packets at node2 while the FAIL action executes
on node3, coordinated by VirtualWire's raw-Ethernet control plane.

Run:  python examples/rether_failover.py
"""

from repro import Testbed, seconds
from repro.rether import install_rether
from repro.scripts import rether_failover_script

SENDER_PORT = 0x6000
RECEIVER_PORT = 0x4000


def main() -> None:
    testbed = Testbed(seed=5)
    hosts = [testbed.add_host(f"node{i}") for i in range(1, 5)]
    node1, node2, node3, node4 = hosts
    testbed.add_bus("bus0")
    testbed.connect("bus0", *hosts)
    testbed.install_virtualwire(control="node1")
    install_rether(hosts)  # splices above the engines: every token is seen

    script = rether_failover_script(testbed.node_table_fsl(), data_threshold=1000)

    def workload() -> None:
        node4.tcp.listen(RECEIVER_PORT)
        conn = node1.tcp.connect(node4.ip, RECEIVER_PORT, local_port=SENDER_PORT)
        conn.on_established = lambda: conn.send(bytes(1100 * 1024))

    report = testbed.run_scenario(script, workload=workload, max_time=seconds(120))

    print(report.render())
    print()
    print(f"node3 crashed        : {not node3.is_alive}")
    print(f"node2 evicted node3  : {node2.rether.evicted(node3.mac)}")
    print(f"token sends to node3 : {report.final_counters['TokensFrom2']} "
          "(exactly 3 = detection budget)")
    print(f"ring size at node2   : {len(node2.rether.ring)} (was 4)")
    assert report.passed, "recovery must complete and STOP within 1s"
    assert report.final_counters["TokensFrom2"] == 3
    print("\ncase study OK: failure detected after 3 unacknowledged token "
          "transmissions and the ring was rebuilt around the dead node.")


if __name__ == "__main__":
    main()
