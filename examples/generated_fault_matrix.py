#!/usr/bin/env python3
"""The paper's future-work vision (§8): scripts generated from the spec.

Instead of hand-writing the Fig 6 script, this example describes Rether
declaratively — its message types, its expendable nodes, and a liveness
expectation ("real-time data keeps arriving") — and lets the generator
emit a whole family of FSL scenarios: token drops, token delays,
duplicated control messages, and node crashes.  A sweep campaign then
runs every generated scenario on a fresh four-node testbed — compiled
once in the parent, fanned out over a process pool, rows merged in
deterministic task order (docs/SWEEP.md).

The correct Rether implementation must survive every cell; a build whose
token-loss recovery is disabled must fail the cells that kill the token,
with zero changes to the generated scripts.

Run:  python examples/generated_fault_matrix.py
"""

import os

from repro.core.autogen import ScriptGenerator, rether_spec
from repro.scripts import canonical_node_table
from repro.sim import seconds
from repro.sweep import SweepSpec, run_script_task, run_sweep

RING = ["node1", "node2", "node3", "node4"]
BACKEND = os.environ.get("REPRO_SWEEP_BACKEND", "parallel")


def matrix_campaign(suite, max_time_ns, **rether_kwargs) -> SweepSpec:
    """One sweep task per generated scenario, all on the same recipe:

    four hosts on a bus, VirtualWire everywhere, Rether ring on top, and
    a steady 1 KB / 2 ms real-time feed from node1 to node4.
    """
    spec = SweepSpec("rether_fault_matrix", base_seed=5)
    for name, script in suite.items():
        spec.add(
            name,
            run_script_task,
            script=script,
            seed=5,
            medium="bus",
            rether=True,
            rether_kwargs=rether_kwargs,
            workload={"kind": "tcp_feed", "chunk": 1024, "interval_ns": 2_000_000},
            max_time_ns=max_time_ns,
        )
    return spec


def main() -> None:
    spec = rether_spec(RING, [("node1", "node4")])
    # Addresses are deterministic, so the canonical table supplies the
    # NODE_TABLE the generated scripts embed.
    generator = ScriptGenerator(spec, canonical_node_table(len(RING)))
    suite = generator.generate_suite()
    print(f"generated {len(suite)} scenarios from the Rether spec:")
    print("  " + ", ".join(suite))

    print("\n=== correct implementation ===")
    matrix = run_sweep(matrix_campaign(suite, seconds(30)), backend=BACKEND)
    print(matrix.render())
    assert matrix.passed

    print("\n=== broken build: token-loss recovery disabled ===")
    broken = run_sweep(
        matrix_campaign(
            suite, seconds(10), regeneration_timeout_ns=seconds(999)
        ),
        backend=BACKEND,
    )
    print(broken.render())
    assert not broken.passed, "a build without regeneration must fail"
    failing = {row.name for row in broken.failures}
    print(f"\ncells that caught the bug: {sorted(failing)}")


if __name__ == "__main__":
    main()
