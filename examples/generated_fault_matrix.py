#!/usr/bin/env python3
"""The paper's future-work vision (§8): scripts generated from the spec.

Instead of hand-writing the Fig 6 script, this example describes Rether
declaratively — its message types, its expendable nodes, and a liveness
expectation ("real-time data keeps arriving") — and lets the generator
emit a whole family of FSL scenarios: token drops, token delays,
duplicated control messages, and node crashes.  A fault matrix then runs
every generated scenario on a fresh four-node testbed.

The correct Rether implementation must survive every cell; a build whose
token-loss recovery is disabled must fail the cells that kill the token,
with zero changes to the generated scripts.

Run:  python examples/generated_fault_matrix.py
"""

from repro.core.autogen import ScriptGenerator, rether_spec
from repro.core.matrix import FaultMatrix
from repro.core.testbed import Testbed
from repro.rether import install_rether
from repro.sim import seconds

RING = ["node1", "node2", "node3", "node4"]
SENDER_PORT = 0x6000
RECEIVER_PORT = 0x4000


def make_factory(**rether_kwargs):
    """A factory producing identical fresh testbeds (one per matrix cell)."""

    def factory():
        tb = Testbed(seed=5)
        hosts = [tb.add_host(name) for name in RING]
        tb.add_bus("bus0")
        tb.connect("bus0", *hosts)
        tb.install_virtualwire(control="node1")
        install_rether(hosts, **rether_kwargs)

        def workload():
            hosts[3].tcp.listen(RECEIVER_PORT)
            conn = hosts[0].tcp.connect(
                hosts[3].ip, RECEIVER_PORT, local_port=SENDER_PORT
            )

            def feed():
                conn.send(bytes(1024))
                tb.sim.after(2_000_000, feed)  # steady 1 KB / 2 ms forever

            conn.on_established = feed

        return tb, workload

    return factory


def main() -> None:
    spec = rether_spec(RING, [("node1", "node4")])
    # Addresses are deterministic, so a throwaway testbed supplies the
    # NODE_TABLE the generated scripts embed.
    template = Testbed(seed=5)
    for name in RING:
        template.add_host(name)
    generator = ScriptGenerator(spec, template.node_table_fsl())
    suite = generator.generate_suite()
    print(f"generated {len(suite)} scenarios from the Rether spec:")
    print("  " + ", ".join(suite))

    print("\n=== correct implementation ===")
    matrix = FaultMatrix(make_factory(), max_time=seconds(30)).run(suite)
    print(matrix.render())
    assert matrix.passed

    print("\n=== broken build: token-loss recovery disabled ===")
    broken = FaultMatrix(
        make_factory(regeneration_timeout_ns=seconds(999)),
        max_time=seconds(10),
    ).run(suite)
    print(broken.render())
    assert not broken.passed, "a build without regeneration must fail"
    failing = {cell.name for cell in broken.failures}
    print(f"\ncells that caught the bug: {sorted(failing)}")


if __name__ == "__main__":
    main()
