#!/usr/bin/env python3
"""A tour of every Table II packet-fault primitive on one UDP stream.

Four scenarios run back to back on fresh two-node testbeds, each injecting
a different fault into a numbered UDP stream and observing the result at
the receiving application — plus a wire trace from the capture tap so you
can see the fault happen:

* DELAY   — one datagram held for 35 ms (quantised up to 40 ms: the DELAY
            primitive inherits Linux's 10 ms jiffy granularity);
* REORDER — three datagrams buffered and released in reverse order;
* DUP     — one datagram duplicated (the receiver sees it twice);
* MODIFY  — one datagram's payload corrupted; the UDP checksum catches it
            and the receiving stack drops the datagram.

Run:  python examples/fault_showcase.py
"""

from repro import Testbed, seconds

HEADER = """
FILTER_TABLE
  udp_pkt: (12 2 0x0800), (23 1 0x11), (36 2 0x1389)
END
{node_table}
"""

SCENARIOS = {
    "DELAY": """
SCENARIO delay_one
  Pkts: (udp_pkt, node1, node2, RECV)
  ((Pkts = 3)) >> DELAY udp_pkt, node1, node2, RECV, 35;
END
""",
    "REORDER": """
SCENARIO reorder_three
  Pkts: (udp_pkt, node1, node2, RECV)
  ((Pkts >= 3) && (Pkts <= 5)) >> REORDER udp_pkt, node1, node2, RECV, 3, [3 2 1];
END
""",
    "DUP": """
SCENARIO dup_one
  Pkts: (udp_pkt, node1, node2, RECV)
  ((Pkts = 4)) >> DUP udp_pkt, node1, node2, RECV;
END
""",
    "MODIFY": """
SCENARIO modify_one
  Pkts: (udp_pkt, node1, node2, RECV)
  ((Pkts = 2)) >> MODIFY udp_pkt, node1, node2, RECV;
END
""",
}

PORT = 0x1389  # 5001
N_PACKETS = 6


def run(name: str, scenario: str) -> None:
    testbed = Testbed(seed=99)
    node1 = testbed.add_host("node1")
    node2 = testbed.add_host("node2")
    testbed.add_switch("sw0")
    testbed.connect("sw0", node1, node2)
    testbed.install_virtualwire(control="node1", capture=True)
    script = HEADER.format(node_table=testbed.node_table_fsl()) + scenario

    arrivals = []

    def workload() -> None:
        socket = node2.udp.bind(PORT)
        socket.on_receive = lambda payload, ip, port: arrivals.append(
            (testbed.sim.now, payload[0])
        )
        sender = node1.udp.bind(0)
        for seq in range(1, N_PACKETS + 1):
            # One datagram per millisecond, payload tagged with its number.
            testbed.sim.after(
                seq * 1_000_000,
                lambda s=seq: sender.sendto(bytes([s]) + bytes(63), node2.ip, PORT),
                "showcase:send",
            )

    report = testbed.run_scenario(script, workload=workload, max_time=seconds(10))
    order = [seq for _, seq in arrivals]
    gaps = [
        f"{(t2 - t1) / 1e6:.1f}ms"
        for (t1, _), (t2, _) in zip(arrivals, arrivals[1:])
    ]
    stats = report.engine_stats["node2"]
    print(f"--- {name} ---")
    print(f"  sent 1..{N_PACKETS}, received order: {order}")
    print(f"  inter-arrival gaps: {gaps}")
    print(
        "  engine: "
        f"delayed={stats['packets_delayed']} reordered={stats['packets_reordered']} "
        f"duplicated={stats['packets_duplicated']} modified={stats['packets_modified']}"
    )
    if name == "MODIFY":
        print(
            "  drops at node2 — "
            f"IP checksum: {node2.ip_layer.checksum_drops}, "
            f"UDP checksum: {node2.udp.checksum_drops}, "
            f"misaddressed: {node2.ip_layer.misaddressed_drops} "
            "(random corruption lands somewhere in IP/UDP/payload)"
        )
    print()


def main() -> None:
    for name, scenario in SCENARIOS.items():
        run(name, scenario)
    print("fault showcase complete.")


if __name__ == "__main__":
    main()
