#!/usr/bin/env python3
"""The paper's §6.1 case study: TCP slow start → congestion avoidance.

Reproduces Fig 5 end to end.  The scenario drops one SYNACK at the
receiving node during connection establishment, which forces the sender's
SYN to be retransmitted; per the congestion-control specification, the
retransmission resets cwnd to 1 and ssthresh to 2 segments.  The analysis
half of the same script then mirrors the sender's window algebra with
counters — CWND, SSTHRESH, CCNT and a CanTx send-credit — and flags an
error the moment the implementation transmits a data packet it should not
have window for.

A correct (Tahoe-style, as described in the paper) implementation must
cross ssthresh after two ACKs and switch to linear growth; the script
verifies this without touching a line of TCP code.

Run:  python examples/tcp_congestion.py
"""

from repro import Testbed, seconds
from repro.scripts import tcp_congestion_script

SENDER_PORT = 0x6000  # 24576, as in the paper
RECEIVER_PORT = 0x4000  # 16384

TRANSFER_BYTES = 64 * 1024


def main() -> None:
    testbed = Testbed(seed=7)
    node1 = testbed.add_host("node1", "00:46:61:af:fe:23", "192.168.1.1")
    node2 = testbed.add_host("node2", "00:23:31:df:af:12", "192.168.1.2")
    testbed.add_switch("sw0")
    testbed.connect("sw0", node1, node2)
    testbed.install_virtualwire(control="node1")

    script = tcp_congestion_script(testbed.node_table_fsl())
    state = {}
    received = bytearray()

    def workload() -> None:
        node2.tcp.listen(
            RECEIVER_PORT, lambda conn: setattr(conn, "on_data", received.extend)
        )
        conn = node1.tcp.connect(node2.ip, RECEIVER_PORT, local_port=SENDER_PORT)
        conn.on_established = lambda: conn.send(bytes(TRANSFER_BYTES))
        state["conn"] = conn

    report = testbed.run_scenario(script, workload=workload, max_time=seconds(60))
    conn = state["conn"]

    print(report.render())
    print()
    print(f"transfer         : {len(received)} / {TRANSFER_BYTES} bytes delivered")
    print(f"SYNACKs on wire  : {report.final_counters['SYNACK']} "
          "(first dropped by the fault, second accepted)")
    print(f"retransmissions  : {conn.retransmissions} (the SYN)")
    print(f"TCP cwnd/ssthresh: {conn.congestion.cwnd}/{conn.congestion.ssthresh} "
          f"segments — script model CWND={report.final_counters['CWND']}")
    assert report.passed, "a correct TCP must not trip the window invariant"
    assert report.final_counters["CWND"] == conn.congestion.cwnd, (
        "the script's window model should track the implementation exactly"
    )
    print("\ncase study OK: the implementation switched to congestion "
          "avoidance exactly where the specification demands.")


if __name__ == "__main__":
    main()
