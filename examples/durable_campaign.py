#!/usr/bin/env python3
"""Durable campaigns — journal, kill, resume, warm cache.

A figure-grade sweep can run for hours; losing it to a Ctrl-C, an OOM
kill or a power cut should cost one cell, not the campaign.  This
example runs a 12-cell Fig 5 grid three times over the same journal and
result cache (docs/SWEEP.md):

1. **cold** — every cell executes; every merged row is appended to a
   CRC-framed, fsync'd JSONL journal and stored in the cache;
2. **resume** — the same campaign against the existing journal replays
   all 12 rows without executing anything, exactly as it would after a
   mid-flight ``kill -9`` (tests/sweep/test_durability.py does the
   actual killing);
3. **warm** — a fresh journal but the same cache directory: every cell
   is served by its content-addressed fingerprint (task fn, knobs,
   seed, and the compiled program's line-number-masked content hash).

All three outcomes merge to byte-identical canonical rows — durability
never changes results, only who has to recompute them.

Run:  python examples/durable_campaign.py
"""

import os
import tempfile

from repro.scripts import canonical_node_table, tcp_congestion_script
from repro.sweep import SweepSpec, run_script_task, run_sweep

BACKEND = os.environ.get("REPRO_SWEEP_BACKEND", "parallel")


def fig5_grid() -> SweepSpec:
    script = tcp_congestion_script(canonical_node_table(2))
    spec = SweepSpec("durable_fig5", base_seed=11)
    spec.add_grid(
        run_script_task,
        axes={"seed": [0, 1, 2], "medium": ["switch", "hub"],
              "control_loss": [{}, {"node2": 0.1}]},
        script=script,
        workload={"kind": "tcp_bulk", "bytes": 32 * 1024},
    )
    return spec


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        journal = os.path.join(scratch, "fig5.jsonl")
        cache = os.path.join(scratch, "cache")

        cold = run_sweep(fig5_grid(), backend=BACKEND,
                         journal=journal, cache_dir=cache, task_timeout=300.0)
        assert cold.passed, cold.render()
        print(f"cold:   {len(cold.rows)} rows executed, "
              f"journal {os.path.getsize(journal)} bytes")

        resumed = run_sweep(fig5_grid(), backend=BACKEND,
                            journal=journal, resume=True, cache_dir=cache)
        assert resumed.resumed == len(cold.rows)
        print(f"resume: {resumed.resumed} rows replayed from the journal, "
              f"0 executed")

        warm = run_sweep(fig5_grid(), backend=BACKEND,
                         journal=os.path.join(scratch, "fresh.jsonl"),
                         cache_dir=cache)
        assert warm.cached_rows == len(cold.rows)
        print(f"warm:   {warm.cached_rows} rows served by the result cache")

        assert (cold.canonical_bytes() == resumed.canonical_bytes()
                == warm.canonical_bytes())
        print("\ndurable campaign OK: cold, resumed and cache-warm runs "
              "merge byte-identically.")


if __name__ == "__main__":
    main()
