#!/usr/bin/env python3
"""Debugging a FAIL verdict: wire capture plus the engine audit trail.

When a scenario flags an error, the tester's next question is *why*.  This
example runs the Fig 5 congestion-control scenario against a deliberately
broken TCP (one that never switches to congestion avoidance), gets the
FAIL verdict, and then reconstructs the story from the two diagnostic
channels the testbed offers:

* the **audit log** (``install_virtualwire(audit=True)``) — the engine's
  own narrative: which rules fired, where, when, and the FLAG_ERROR that
  decided the verdict;
* the **wire capture** (``capture=True``) — a tcpdump-style view of the
  packets around the failure instant, which shows the burst of data
  segments the window model had no credit for.

Run:  python examples/wire_debugging.py
"""

from repro import Testbed, seconds
from repro.scripts import tcp_congestion_script
from repro.tcp import VARIANTS

SENDER_PORT = 0x6000
RECEIVER_PORT = 0x4000


def main() -> None:
    testbed = Testbed(seed=7)
    node1 = testbed.add_host("node1")
    node2 = testbed.add_host("node2")
    testbed.add_switch("sw0")
    testbed.connect("sw0", node1, node2)
    testbed.install_virtualwire(control="node1", capture=True, audit=True)

    script = tcp_congestion_script(testbed.node_table_fsl())
    buggy = VARIANTS["bug-no-congestion-avoidance"]

    def workload() -> None:
        node2.tcp.listen(RECEIVER_PORT)
        conn = node1.tcp.connect(
            node2.ip, RECEIVER_PORT, local_port=SENDER_PORT, congestion=buggy()
        )
        conn.on_established = lambda: conn.send(bytes(48 * 1024))

    report = testbed.run_scenario(script, workload=workload, max_time=seconds(60))

    print("=== verdict ===")
    print(report.render())
    assert not report.passed and report.errors

    print("\n=== audit trail (errors and the rules around them) ===")
    for event in testbed.audit_log.events:
        if event.kind in ("error", "fault"):
            print("  " + event.render())
    first_error = report.errors[0]

    print("\n=== wire, the millisecond before the first FLAG_ERROR ===")
    window_start = first_error.time_ns - 1_000_000
    nearby = testbed.recorder.select(
        where="node1",
        predicate=lambda r: window_start <= r.when <= first_error.time_ns
        and r.view.tcp is not None,
    )
    for record in nearby[-12:]:
        print("  " + record.render())

    sends = [r for r in nearby if r.direction == "send" and r.view.tcp.payload]
    print(
        f"\ndiagnosis: {len(sends)} data segments left node1 in the last "
        f"millisecond before the invariant tripped — the implementation "
        f"is sending beyond the window the specification allows "
        f"(it never leaves slow start)."
    )


if __name__ == "__main__":
    main()
