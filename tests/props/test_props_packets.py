"""Property tests: header codecs round-trip for arbitrary field values."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    EthernetFrame,
    IpAddress,
    Ipv4Packet,
    MacAddress,
    TcpSegment,
    UdpDatagram,
)
from repro.net.bytesutil import internet_checksum

macs = st.binary(min_size=6, max_size=6).map(MacAddress)
ips = st.binary(min_size=4, max_size=4).map(IpAddress)
ports = st.integers(min_value=0, max_value=0xFFFF)
seqs = st.integers(min_value=0, max_value=0xFFFFFFFF)
payloads = st.binary(max_size=512)


class TestEthernetRoundTrip:
    @given(dst=macs, src=macs, ethertype=ports, payload=st.binary(max_size=1500))
    def test_roundtrip(self, dst, src, ethertype, payload):
        frame = EthernetFrame(dst, src, ethertype, payload)
        assert EthernetFrame.from_bytes(frame.to_bytes()) == frame

    @given(dst=macs, src=macs, payload=payloads)
    def test_length_identity(self, dst, src, payload):
        frame = EthernetFrame(dst, src, 0x0800, payload)
        assert len(frame.to_bytes()) == 14 + len(payload)


class TestIpv4RoundTrip:
    @given(
        src=ips,
        dst=ips,
        protocol=st.integers(min_value=0, max_value=255),
        payload=payloads,
        ttl=st.integers(min_value=0, max_value=255),
        ident=ports,
    )
    def test_roundtrip(self, src, dst, protocol, payload, ttl, ident):
        packet = Ipv4Packet(src, dst, protocol, payload, ttl=ttl, ident=ident)
        parsed = Ipv4Packet.from_bytes(packet.to_bytes())
        assert (parsed.src, parsed.dst) == (src, dst)
        assert parsed.protocol == protocol
        assert parsed.payload == payload
        assert (parsed.ttl, parsed.ident) == (ttl, ident)

    @given(src=ips, dst=ips, payload=payloads)
    def test_header_checksum_always_verifies(self, src, dst, payload):
        wire = Ipv4Packet(src, dst, 6, payload).to_bytes()
        assert internet_checksum(wire[:20]) == 0


class TestUdpRoundTrip:
    @given(src_ip=ips, dst_ip=ips, sport=ports, dport=ports, payload=payloads)
    def test_roundtrip_with_checksum(self, src_ip, dst_ip, sport, dport, payload):
        wire = UdpDatagram(sport, dport, payload).to_bytes(src_ip, dst_ip)
        parsed = UdpDatagram.from_bytes(wire, src_ip, dst_ip, verify=True)
        assert (parsed.src_port, parsed.dst_port) == (sport, dport)
        assert parsed.payload == payload


class TestTcpRoundTrip:
    @given(
        src_ip=ips,
        dst_ip=ips,
        sport=ports,
        dport=ports,
        seq=seqs,
        ack=seqs,
        flags=st.integers(min_value=0, max_value=0x3F),
        window=ports,
        payload=payloads,
    )
    @settings(max_examples=200)
    def test_roundtrip_with_checksum(
        self, src_ip, dst_ip, sport, dport, seq, ack, flags, window, payload
    ):
        seg = TcpSegment(sport, dport, seq, ack, flags, window, payload)
        wire = seg.to_bytes(src_ip, dst_ip)
        parsed = TcpSegment.from_bytes(wire, src_ip, dst_ip, verify=True)
        assert (parsed.seq, parsed.ack, parsed.flags) == (seq, ack, flags)
        assert (parsed.src_port, parsed.dst_port) == (sport, dport)
        assert parsed.window == window
        assert parsed.payload == payload

    @given(seq=seqs, flags=st.integers(min_value=0, max_value=0x3F), payload=payloads)
    def test_seq_space_formula(self, seq, flags, payload):
        seg = TcpSegment(1, 2, seq, 0, flags, 0, payload)
        phantom = (1 if flags & 0x02 else 0) + (1 if flags & 0x01 else 0)
        assert seg.seq_space == len(payload) + phantom


class TestChecksumProperties:
    @given(data=st.binary(min_size=2, max_size=256).filter(lambda d: len(d) % 2 == 0))
    def test_embedding_checksum_yields_zero_sum(self, data):
        """Holds for 16-bit-aligned data, which is how every real header

        embeds its checksum (odd-length payloads are padded at the end,
        after the checksum field, not before it).
        """
        checksum = internet_checksum(data + b"\x00\x00")
        assert internet_checksum(data + checksum.to_bytes(2, "big")) == 0

    @given(data=st.binary(max_size=256))
    def test_checksum_in_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF
