"""Differential property test: fast classifiers ≡ linear Classifier.

The indexed and compiled fast paths (repro.core.classify) must be
observationally identical to the paper-faithful linear scan: same winning
packet type, same *scanned* count (the cost model's linear-equivalent
charge), same VAR bindings — including stateful multi-packet sequences
where an early packet binds a VAR that later packets must equal — and the
same statistics counters.  Random filter tables exercise masks, VAR
patterns, overlapping entries and tuples that read past the frame.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import (
    Classifier,
    CompiledClassifier,
    FilterIndex,
    IndexedClassifier,
)
from repro.core.tables import FilterEntry, FilterTable, FilterTuple, VarRef

#: both fast implementations must shadow the linear reference.
FAST_KINDS = (IndexedClassifier, CompiledClassifier)

VAR_NAMES = ("SeqA", "SeqB", "SeqC")
WIDTHS = (1, 2, 4)
MAX_OFFSET = 48
MAX_FRAME = 64


@st.composite
def filter_tuples(draw):
    offset = draw(st.integers(min_value=0, max_value=MAX_OFFSET))
    nbytes = draw(st.sampled_from(WIDTHS))
    limit = 1 << (8 * nbytes)
    kind = draw(st.sampled_from(["exact", "exact", "masked", "var"]))
    if kind == "var":
        return FilterTuple(offset, nbytes, VarRef(draw(st.sampled_from(VAR_NAMES))))
    # Small pattern pool: collisions between entries create the
    # overlapping-definition cases where first-match priority matters.
    pattern = draw(st.integers(min_value=0, max_value=min(limit - 1, 7)))
    if kind == "masked":
        mask = draw(st.integers(min_value=0, max_value=min(limit - 1, 7)))
        return FilterTuple(offset, nbytes, pattern, mask=mask)
    return FilterTuple(offset, nbytes, pattern)


@st.composite
def filter_tables(draw):
    n_entries = draw(st.integers(min_value=1, max_value=10))
    entries = []
    for i in range(n_entries):
        tuples = tuple(
            draw(st.lists(filter_tuples(), min_size=1, max_size=3))
        )
        entries.append(FilterEntry(f"pkt{i}", tuples))
    return FilterTable(entries)


@st.composite
def frames_for(draw, table):
    """A frame: random bytes, sometimes steered to satisfy a random entry.

    Steering writes each exact/masked tuple's pattern bytes at its offset
    (VAR tuples are left as-is, so first-match binding and later equality
    checks both occur across a sequence); lengths below the largest offset
    produce the truncated-read cases.
    """
    length = draw(st.integers(min_value=0, max_value=MAX_FRAME))
    frame = bytearray(draw(st.binary(min_size=length, max_size=length)))
    if draw(st.booleans()):
        entry = draw(st.sampled_from(table.entries))
        for tup in entry.tuples:
            end = tup.offset + tup.nbytes
            if end > len(frame) or isinstance(tup.pattern, VarRef):
                continue
            frame[tup.offset : end] = tup.pattern.to_bytes(tup.nbytes, "big")
    return bytes(frame)


@settings(max_examples=250, deadline=None)
@given(data=st.data())
def test_fast_classifiers_match_linear_reference(data):
    table = data.draw(filter_tables())
    linear = Classifier(table)
    fasts = [cls(table) for cls in FAST_KINDS]
    n_packets = data.draw(st.integers(min_value=1, max_value=8))
    for _ in range(n_packets):
        frame = data.draw(frames_for(table))
        expected = linear.classify(frame)
        for fast in fasts:
            assert fast.classify(frame) == expected
            assert fast.vars.snapshot() == linear.vars.snapshot()
    for fast in fasts:
        assert fast.packets_classified == linear.packets_classified
        assert fast.packets_unmatched == linear.packets_unmatched
        assert fast.entries_scanned_total == linear.entries_scanned_total
        # The fast paths may not examine MORE entries than the linear scan.
        assert fast.entries_examined_total <= linear.entries_examined_total


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_index_candidate_chains_are_sound_and_ordered(data):
    """Every chain the index can yield is position-sorted, and any entry

    excluded from a frame's chain is one the linear scan would reject.
    """
    table = data.draw(filter_tables())
    index = FilterIndex.for_table(table)
    for chain in list(index.chains.values()) + [index.residual]:
        positions = [position for position, _ in chain]
        assert positions == sorted(positions)
    frame = data.draw(frames_for(table))
    chain_positions = {position for position, _ in index.chain_for(frame)}
    reference = Classifier(table)
    for position, entry in enumerate(table.entries):
        if position not in chain_positions:
            assert reference._match(entry, frame) is None


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_table_append_keeps_implementations_aligned(data):
    """Mutating the table invalidates the index; both implementations keep

    agreeing on packets classified after the update.
    """
    table = data.draw(filter_tables())
    linear = Classifier(table)
    fasts = [cls(table) for cls in FAST_KINDS]
    frame = data.draw(frames_for(table))
    expected = linear.classify(frame)
    for fast in fasts:
        assert fast.classify(frame) == expected
    extra = FilterEntry(
        "appended", tuple(data.draw(st.lists(filter_tuples(), min_size=1, max_size=2)))
    )
    table.append(extra)
    for _ in range(3):
        frame = data.draw(frames_for(table))
        expected = linear.classify(frame)
        for fast in fasts:
            assert fast.classify(frame) == expected
            assert fast.vars.snapshot() == linear.vars.snapshot()


def test_var_bind_then_match_sequence_is_identical():
    """Deterministic pin of the paper's retransmission-detector pattern:

    packet 1 binds the VAR, packet 2 (different value) must miss, packet 3
    (same value) must hit — identically on both implementations.
    """
    table = FilterTable(
        [
            FilterEntry(
                "rt1",
                (
                    FilterTuple(0, 2, 0x6000),
                    FilterTuple(4, 4, VarRef("SeqNo")),
                ),
            ),
            FilterEntry("fallback", (FilterTuple(0, 2, 0x6000),)),
        ]
    )
    linear = Classifier(table)
    fasts = [cls(table) for cls in FAST_KINDS]

    def frame(seq):
        return (0x6000).to_bytes(2, "big") + b"\x00\x00" + seq.to_bytes(4, "big")

    for packet in (frame(777), frame(778), frame(777), frame(9)):
        expected = linear.classify(packet)
        for fast in fasts:
            assert fast.classify(packet) == expected
            assert fast.vars.snapshot() == linear.vars.snapshot()
    assert linear.vars.get("SeqNo") == 777
