"""Property tests on the FSL front-end and the rule algebra.

* generated scripts (random counters, rules, conditions) always compile,
  and the compiled tables are internally consistent;
* condition-expression evaluation agrees with a direct Python model;
* classification agrees with a naive reference matcher.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import Classifier
from repro.core.fsl import compile_text
from repro.core.tables import ConditionExpr, FilterEntry, FilterTable, FilterTuple

names = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta"])
relops = st.sampled_from([">", "<", ">=", "<=", "=", "!="])


# ---------------------------------------------------------------------------
# Generated scripts always compile into consistent tables
# ---------------------------------------------------------------------------

@st.composite
def scenarios(draw):
    counters = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    lines = []
    for counter in counters:
        lines.append(f"  {counter}: (pkt, node1, node2, RECV)")
    n_rules = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_rules):
        counter = draw(st.sampled_from(counters))
        op = draw(relops)
        value = draw(st.integers(min_value=0, max_value=100))
        action_counter = draw(st.sampled_from(counters))
        action = draw(
            st.sampled_from(
                [
                    f"RESET_CNTR( {action_counter} )",
                    f"INCR_CNTR( {action_counter}, 1 )",
                    "FLAG_ERROR",
                    f"ENABLE_CNTR( {action_counter} )",
                ]
            )
        )
        lines.append(f"  (({counter} {op} {value})) >> {action};")
    return "\n".join(lines)


HEADER = """
FILTER_TABLE
  pkt: (12 2 0x0800)
END
NODE_TABLE
  node1 02:00:00:00:00:01 192.168.1.1
  node2 02:00:00:00:00:02 192.168.1.2
END
"""


class TestGeneratedScriptsCompile:
    @given(body=scenarios())
    @settings(max_examples=60, deadline=None)
    def test_compiles_consistently(self, body):
        program = compile_text(HEADER + "SCENARIO generated\n" + body + "\nEND")
        # Consistency: every id referenced anywhere exists in its table.
        for term in program.terms:
            for operand in (term.lhs, term.rhs):
                if operand.is_counter:
                    assert 0 <= operand.counter_id < len(program.counters)
            for condition_id in term.condition_ids:
                assert 0 <= condition_id < len(program.conditions)
        for condition in program.conditions:
            for term_id in condition.expr.term_ids():
                assert 0 <= term_id < len(program.terms)
            for node, action_id in condition.triggers:
                action = program.actions[action_id]
                assert action.node == node
                assert action.condition_id == condition.condition_id
        for counter in program.counters:
            for term_id in counter.term_ids:
                term = program.terms[term_id]
                assert counter.counter_id in (
                    term.lhs.counter_id,
                    term.rhs.counter_id,
                )


# ---------------------------------------------------------------------------
# Condition algebra equals a reference evaluator
# ---------------------------------------------------------------------------

@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return ConditionExpr("TERM", term_id=draw(st.integers(0, 5)))
    op = draw(st.sampled_from(["AND", "OR", "NOT"]))
    if op == "NOT":
        return ConditionExpr("NOT", children=[draw(expressions(depth + 1))])
    children = draw(
        st.lists(expressions(depth + 1), min_size=2, max_size=3)
    )
    return ConditionExpr(op, children=children)


def reference_eval(expr, values):
    if expr.op == "TRUE":
        return True
    if expr.op == "TERM":
        return values.get(expr.term_id, False)
    results = [reference_eval(c, values) for c in expr.children]
    if expr.op == "NOT":
        return not results[0]
    if expr.op == "AND":
        return all(results)
    return any(results)


class TestConditionAlgebra:
    @given(
        expr=expressions(),
        values=st.dictionaries(st.integers(0, 5), st.booleans(), max_size=6),
    )
    @settings(max_examples=200)
    def test_matches_reference(self, expr, values):
        assert expr.evaluate(values) == reference_eval(expr, values)

    @given(expr=expressions())
    def test_term_ids_deduplicated(self, expr):
        ids = expr.term_ids()
        assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# Classification equals a naive reference matcher
# ---------------------------------------------------------------------------

@st.composite
def filter_tables(draw):
    entries = []
    n = draw(st.integers(min_value=1, max_value=6))
    for index in range(n):
        tuples = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            offset = draw(st.integers(min_value=0, max_value=30))
            width = draw(st.sampled_from([1, 2]))
            pattern = draw(st.integers(min_value=0, max_value=(1 << (8 * width)) - 1))
            mask = draw(
                st.one_of(
                    st.none(),
                    st.integers(min_value=0, max_value=(1 << (8 * width)) - 1),
                )
            )
            tuples.append(FilterTuple(offset, width, pattern, mask))
        entries.append(FilterEntry(f"f{index}", tuple(tuples)))
    return FilterTable(entries)


def reference_classify(table, data):
    for entry in table.entries:
        matched = True
        for tup in entry.tuples:
            end = tup.offset + tup.nbytes
            if end > len(data):
                matched = False
                break
            value = int.from_bytes(data[tup.offset:end], "big")
            if tup.mask is not None:
                if value & tup.mask != tup.pattern & tup.mask:
                    matched = False
                    break
            elif value != tup.pattern:
                matched = False
                break
        if matched:
            return entry.name
    return None


class TestClassificationEquivalence:
    @given(table=filter_tables(), data=st.binary(min_size=0, max_size=40))
    @settings(max_examples=150)
    def test_matches_reference(self, table, data):
        classifier = Classifier(table)
        name, scanned = classifier.classify(data)
        assert name == reference_classify(table, data)
        assert 1 <= scanned <= len(table)
