"""Property tests: the control-plane wire format round-trips and its

parser never leaks a low-level exception, no matter what bytes arrive.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.control import (
    FLAG_RELIABLE,
    WIRE_SIZE,
    ControlMessage,
    ControlType,
)
from repro.errors import ControlPlaneError

msg_types = st.sampled_from(list(ControlType))
a_values = st.integers(min_value=0, max_value=0xFFFF)
b_values = st.integers(min_value=-(2**63), max_value=2**63 - 1)
seq_values = st.integers(min_value=0, max_value=0xFFFFFFFF)
flag_values = st.sampled_from([0, FLAG_RELIABLE])


class TestRoundTrip:
    @given(msg_type=msg_types, a=a_values, b=b_values, seq=seq_values, flags=flag_values)
    @settings(max_examples=300)
    def test_every_field_roundtrips(self, msg_type, a, b, seq, flags):
        msg = ControlMessage(msg_type, a=a, b=b, seq=seq, flags=flags)
        parsed = ControlMessage.parse(msg.to_payload())
        assert parsed == msg
        assert parsed.reliable == bool(flags & FLAG_RELIABLE)

    @given(msg_type=msg_types, a=a_values, b=b_values, seq=seq_values)
    def test_payload_is_exactly_wire_size(self, msg_type, a, b, seq):
        assert len(ControlMessage(msg_type, a, b, seq=seq).to_payload()) == WIRE_SIZE


class TestParserTotality:
    """parse() is total over bytes: it returns a message or raises

    ControlPlaneError — never IndexError, OverflowError or ValueError.
    """

    @given(payload=st.binary(max_size=4 * WIRE_SIZE))
    @settings(max_examples=500)
    def test_arbitrary_bytes_never_crash(self, payload):
        try:
            msg = ControlMessage.parse(payload)
        except ControlPlaneError:
            return
        assert isinstance(msg, ControlMessage)
        assert len(payload) == WIRE_SIZE

    @given(payload=st.binary(min_size=WIRE_SIZE, max_size=WIRE_SIZE))
    def test_exact_size_parses_or_rejects_cleanly(self, payload):
        """At the right length only the type and flag bytes can offend."""
        known_type = payload[0] in {t.value for t in ControlType}
        known_flags = payload[1] in (0, FLAG_RELIABLE)
        if known_type and known_flags:
            msg = ControlMessage.parse(payload)
            assert msg.to_payload() == payload  # parse/emit are inverse
        else:
            with pytest.raises(ControlPlaneError):
                ControlMessage.parse(payload)

    @given(
        msg_type=msg_types,
        extra=st.binary(min_size=1, max_size=64),
    )
    def test_trailing_bytes_always_rejected(self, msg_type, extra):
        wire = ControlMessage(msg_type, 1, 2).to_payload() + extra
        with pytest.raises(ControlPlaneError):
            ControlMessage.parse(wire)

    @given(prefix=st.integers(min_value=0, max_value=WIRE_SIZE - 1))
    def test_truncation_always_rejected(self, prefix):
        wire = ControlMessage(ControlType.START, 1).to_payload()[:prefix]
        with pytest.raises(ControlPlaneError):
            ControlMessage.parse(wire)
