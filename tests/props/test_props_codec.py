"""Differential property tests: the ``fast`` frame codec ≡ the reference.

Every function in :mod:`repro.net.fastpath` (and the RLL fast helpers in
:mod:`repro.rll.frames`) claims byte-identical wire output and identical
accept/reject decisions relative to the reference codecs.  These properties
pin that claim over arbitrary inputs:

* encoders emit the reference's exact bytes, including the RFC 768
  zero-checksum rule and the Ethernet MTU reject;
* parse → fault-mutate → reserialise round-trips: for any byte splice into
  a valid frame, fast and reference parsers agree on the outcome — the same
  exception class on reject, field-identical packets (and identical
  reserialisation) on accept;
* checksum rewrites: a MODIFY-fault-style field mutation followed by a
  checksum rewrite through the fast helpers is accepted by both parsers;
* truncated frames: both parsers reject at the same exception, and the
  zero-copy :class:`HeaderView` reads exactly the fields that fit — never
  raising — down to the one-byte-short edge;
* VAR-reach edges: a classifier VAR tuple whose read ends exactly at the
  frame boundary binds, one byte past does not, identically on the linear
  and compiled classifiers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError, PacketError
from repro.net import (
    ETHERTYPE_IPV4,
    EthernetFrame,
    FrameView,
    IpAddress,
    Ipv4Packet,
    MacAddress,
    TcpSegment,
    UdpDatagram,
)
from repro.net.bytesutil import (
    checksum_sum16,
    fold_checksum,
    internet_checksum,
    internet_checksum_fast,
    patch_bytes,
)
from repro.net.fastpath import (
    HeaderView,
    encode_ipv4_frame,
    encode_tcp_segment,
    encode_udp_datagram,
    parse_ipv4_frame,
    parse_tcp_segment,
    parse_udp_datagram,
    pseudo_header_sum,
)
from repro.net.frame import MAX_PAYLOAD
from repro.net.ip import PROTO_TCP, PROTO_UDP
from repro.core.classify import Classifier, CompiledClassifier
from repro.core.tables import FilterEntry, FilterTable, FilterTuple, VarRef
from repro.rll.frames import (
    RllFrame,
    decap_data_fast,
    encap_ack_fast,
    encap_data_fast,
)

mac_bytes = st.binary(min_size=6, max_size=6)
ip_bytes = st.binary(min_size=4, max_size=4)
ports = st.integers(min_value=0, max_value=0xFFFF)
seqs = st.integers(min_value=0, max_value=0xFFFFFFFF)
flags = st.integers(min_value=0, max_value=0x3F)
payloads = st.binary(max_size=256)
idents = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def tcp_wire(draw):
    """(src_ip, dst_ip, reference segment) for checksum-bearing wire tests."""
    src_ip, dst_ip = IpAddress(draw(ip_bytes)), IpAddress(draw(ip_bytes))
    seg = TcpSegment(
        draw(ports), draw(ports), draw(seqs), draw(seqs),
        draw(flags), draw(ports), draw(payloads),
    )
    return src_ip, dst_ip, seg


@st.composite
def udp_wire(draw):
    src_ip, dst_ip = IpAddress(draw(ip_bytes)), IpAddress(draw(ip_bytes))
    dgram = UdpDatagram(draw(ports), draw(ports), draw(payloads))
    return src_ip, dst_ip, dgram


@st.composite
def ipv4_frames(draw):
    """A full Ethernet+IPv4+transport frame built by the REFERENCE path."""
    dst_mac, src_mac = draw(mac_bytes), draw(mac_bytes)
    src_ip, dst_ip = IpAddress(draw(ip_bytes)), IpAddress(draw(ip_bytes))
    proto = draw(st.sampled_from([PROTO_TCP, PROTO_UDP]))
    if proto == PROTO_TCP:
        transport = TcpSegment(
            draw(ports), draw(ports), draw(seqs), draw(seqs),
            draw(flags), draw(ports), draw(payloads),
        ).to_bytes(src_ip, dst_ip)
    else:
        transport = UdpDatagram(draw(ports), draw(ports), draw(payloads)).to_bytes(
            src_ip, dst_ip
        )
    packet = Ipv4Packet(src_ip, dst_ip, proto, transport, ident=draw(idents))
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, packet.to_bytes()).to_bytes()


def ip_fields(packet):
    return (
        packet.src, packet.dst, packet.protocol, packet.payload,
        packet.ttl, packet.tos, packet.ident, packet.dont_fragment,
    )


def outcome(parse, *args):
    """(tag, value) capturing accept-vs-reject; ChecksumError before its base."""
    try:
        return ("ok", parse(*args))
    except ChecksumError:
        return ("checksum", None)
    except PacketError:
        return ("packet", None)


# -- encoders ---------------------------------------------------------------


class TestEncodersMatchReference:
    @given(wire=tcp_wire())
    @settings(max_examples=200)
    def test_tcp_bytes_identical(self, wire):
        src_ip, dst_ip, seg = wire
        assert encode_tcp_segment(seg, src_ip, dst_ip) == seg.to_bytes(src_ip, dst_ip)

    @given(wire=udp_wire())
    @settings(max_examples=200)
    def test_udp_bytes_identical(self, wire):
        src_ip, dst_ip, dgram = wire
        assert encode_udp_datagram(dgram, src_ip, dst_ip) == dgram.to_bytes(
            src_ip, dst_ip
        )

    def test_udp_zero_checksum_transmits_all_ones(self):
        """The RFC 768 rule on both paths: this crafted datagram's checksum
        computes to zero, so 0xFFFF must go on the wire."""
        zero = IpAddress("0.0.0.0")
        dgram = UdpDatagram(0, 0, b"\xff\xda")
        wire = dgram.to_bytes(zero, zero)
        assert wire[6:8] == b"\xff\xff"
        assert encode_udp_datagram(dgram, zero, zero) == wire

    @given(
        dst_mac=mac_bytes, src_mac=mac_bytes, src_ip=ip_bytes, dst_ip=ip_bytes,
        proto=st.integers(min_value=0, max_value=255), ident=idents,
        payload=payloads,
    )
    @settings(max_examples=200)
    def test_ipv4_frame_bytes_identical(
        self, dst_mac, src_mac, src_ip, dst_ip, proto, ident, payload
    ):
        packet = Ipv4Packet(src_ip, dst_ip, proto, payload, ident=ident)
        reference = EthernetFrame(
            dst_mac, src_mac, ETHERTYPE_IPV4, packet.to_bytes()
        ).to_bytes()
        fast = encode_ipv4_frame(
            dst_mac, src_mac, src_ip, dst_ip, proto, ident, payload
        )
        assert fast == reference

    @given(oversize=st.integers(min_value=MAX_PAYLOAD - 19, max_value=MAX_PAYLOAD + 40))
    @settings(max_examples=20)
    def test_mtu_reject_parity(self, oversize):
        """Both paths reject exactly when IP header + payload exceeds the MTU."""
        payload = bytes(oversize)
        args = (b"\x02" * 6, b"\x04" * 6, b"\x0a\0\0\x01", b"\x0a\0\0\x02", 6, 0, payload)
        if 20 + oversize > MAX_PAYLOAD:
            with pytest.raises(PacketError):
                encode_ipv4_frame(*args)
            with pytest.raises(PacketError):
                EthernetFrame(
                    args[0], args[1], ETHERTYPE_IPV4,
                    Ipv4Packet(args[2], args[3], 6, payload).to_bytes(),
                )
        else:
            assert len(encode_ipv4_frame(*args)) == 34 + oversize


# -- parse → fault-mutate → reserialise ------------------------------------


class TestParseMutateReserialise:
    @given(frame=ipv4_frames())
    @settings(max_examples=150)
    def test_valid_frames_parse_identically(self, frame):
        fast = parse_ipv4_frame(frame)
        reference = Ipv4Packet.from_bytes(frame[14:], verify=True)
        assert ip_fields(fast) == ip_fields(reference)
        # A __new__-built packet must reserialise exactly like the
        # constructor-built one (and reproduce the original wire bytes).
        assert fast.to_bytes() == reference.to_bytes() == frame[14:]

    @given(data=st.data())
    @settings(max_examples=250)
    def test_mutated_frames_agree_on_accept_and_reject(self, data):
        """Splice arbitrary bytes anywhere into a valid frame (the raw form
        of a MODIFY fault without checksum fixup): fast and reference must
        agree on the exception class or on every parsed field."""
        frame = data.draw(ipv4_frames())
        offset = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        width = data.draw(st.integers(min_value=1, max_value=min(4, len(frame) - offset)))
        splice = data.draw(st.binary(min_size=width, max_size=width))
        mutant = patch_bytes(frame, offset, splice)

        fast_tag, fast_ip = outcome(parse_ipv4_frame, mutant)
        ref_tag, ref_ip = outcome(Ipv4Packet.from_bytes, mutant[14:], True)
        assert fast_tag == ref_tag
        if fast_tag != "ok":
            return
        assert ip_fields(fast_ip) == ip_fields(ref_ip)
        if fast_ip.protocol == PROTO_TCP:
            fast_t = outcome(parse_tcp_segment, fast_ip.payload, fast_ip.src, fast_ip.dst)
            ref_t = outcome(TcpSegment.from_bytes, ref_ip.payload, ref_ip.src, ref_ip.dst)
        elif fast_ip.protocol == PROTO_UDP:
            fast_t = outcome(parse_udp_datagram, fast_ip.payload, fast_ip.src, fast_ip.dst)
            ref_t = outcome(UdpDatagram.from_bytes, ref_ip.payload, ref_ip.src, ref_ip.dst)
        else:
            return
        assert fast_t[0] == ref_t[0]

    @given(wire=tcp_wire())
    @settings(max_examples=150)
    def test_tcp_parse_and_reserialise_round_trip(self, wire):
        src_ip, dst_ip, seg = wire
        data = seg.to_bytes(src_ip, dst_ip)
        fast = parse_tcp_segment(data, src_ip, dst_ip)
        reference = TcpSegment.from_bytes(data, src_ip, dst_ip, verify=True)
        for field in ("src_port", "dst_port", "seq", "ack", "flags", "window", "payload"):
            assert getattr(fast, field) == getattr(reference, field)
        assert encode_tcp_segment(fast, src_ip, dst_ip) == data
        assert fast.to_bytes(src_ip, dst_ip) == data

    @given(wire=udp_wire())
    @settings(max_examples=150)
    def test_udp_parse_and_reserialise_round_trip(self, wire):
        src_ip, dst_ip, dgram = wire
        data = dgram.to_bytes(src_ip, dst_ip)
        fast = parse_udp_datagram(data, src_ip, dst_ip)
        reference = UdpDatagram.from_bytes(data, src_ip, dst_ip, verify=True)
        for field in ("src_port", "dst_port", "payload"):
            assert getattr(fast, field) == getattr(reference, field)
        assert encode_udp_datagram(fast, src_ip, dst_ip) == data


# -- checksum rewrites ------------------------------------------------------


class TestChecksumRewrites:
    """The MODIFY-fault flow: mutate a header field, rewrite the checksum
    with the fast helpers, and both parsers must accept the result."""

    @given(wire=tcp_wire(), new_port=ports)
    @settings(max_examples=100)
    def test_tcp_field_rewrite_verifies_on_both_paths(self, wire, new_port):
        src_ip, dst_ip, seg = wire
        data = patch_bytes(seg.to_bytes(src_ip, dst_ip), 2, new_port.to_bytes(2, "big"))
        zeroed = patch_bytes(data, 16, b"\x00\x00")
        total = pseudo_header_sum(
            src_ip.packed, dst_ip.packed, PROTO_TCP, len(zeroed)
        ) + checksum_sum16(zeroed)
        rewritten = patch_bytes(data, 16, fold_checksum(total).to_bytes(2, "big"))
        fast = parse_tcp_segment(rewritten, src_ip, dst_ip)
        reference = TcpSegment.from_bytes(rewritten, src_ip, dst_ip, verify=True)
        assert fast.dst_port == reference.dst_port == new_port
        assert reference.to_bytes(src_ip, dst_ip) == rewritten

    @given(wire=udp_wire(), new_port=ports)
    @settings(max_examples=100)
    def test_udp_field_rewrite_verifies_on_both_paths(self, wire, new_port):
        src_ip, dst_ip, dgram = wire
        data = patch_bytes(dgram.to_bytes(src_ip, dst_ip), 2, new_port.to_bytes(2, "big"))
        zeroed = patch_bytes(data, 6, b"\x00\x00")
        total = pseudo_header_sum(
            src_ip.packed, dst_ip.packed, PROTO_UDP, len(zeroed)
        ) + checksum_sum16(zeroed)
        checksum = fold_checksum(total) or 0xFFFF
        rewritten = patch_bytes(data, 6, checksum.to_bytes(2, "big"))
        fast = parse_udp_datagram(rewritten, src_ip, dst_ip)
        reference = UdpDatagram.from_bytes(rewritten, src_ip, dst_ip, verify=True)
        assert fast.dst_port == reference.dst_port == new_port

    @given(frame=ipv4_frames(), new_ident=idents)
    @settings(max_examples=100)
    def test_ip_header_rewrite_verifies_on_both_paths(self, frame, new_ident):
        mutated = patch_bytes(frame, 18, new_ident.to_bytes(2, "big"))
        zeroed = patch_bytes(mutated, 24, b"\x00\x00")
        checksum = fold_checksum(checksum_sum16(zeroed[14:34]))
        rewritten = patch_bytes(mutated, 24, checksum.to_bytes(2, "big"))
        fast = parse_ipv4_frame(rewritten)
        reference = Ipv4Packet.from_bytes(rewritten[14:], verify=True)
        assert fast.ident == reference.ident == new_ident
        assert fast.to_bytes() == rewritten[14:]


# -- truncated frames -------------------------------------------------------


def u(data, offset, nbytes):
    """Direct big-endian read, None when the field doesn't fit — the
    corruption-tolerance contract HeaderView promises."""
    if offset + nbytes > len(data):
        return None
    return int.from_bytes(data[offset : offset + nbytes], "big")


class TestTruncatedFrames:
    @given(data=st.data())
    @settings(max_examples=200)
    def test_parsers_agree_on_truncation(self, data):
        frame = data.draw(ipv4_frames())
        cut = data.draw(st.integers(min_value=0, max_value=len(frame)))
        truncated = frame[:cut]
        fast_tag, fast_ip = outcome(parse_ipv4_frame, truncated)
        ref_tag, ref_ip = outcome(Ipv4Packet.from_bytes, truncated[14:], True)
        assert fast_tag == ref_tag
        if fast_tag == "ok":
            assert ip_fields(fast_ip) == ip_fields(ref_ip)

    @given(data=st.data())
    @settings(max_examples=200)
    def test_header_view_reads_exactly_what_fits(self, data):
        """Every accessor returns the field when it fits and None when it
        does not — at any truncation point, without ever raising."""
        frame = data.draw(ipv4_frames())
        cut = data.draw(st.integers(min_value=0, max_value=len(frame)))
        t = frame[:cut]
        hv = HeaderView(t)
        assert len(hv) == cut
        assert hv.dst_mac == (t[0:6] if cut >= 6 else None)
        assert hv.src_mac == (t[6:12] if cut >= 12 else None)
        assert hv.ethertype == u(t, 12, 2)
        is_ipv4 = hv.ethertype == ETHERTYPE_IPV4 and u(t, 14, 1) == 0x45
        assert hv.is_ipv4 == is_ipv4
        proto = u(t, 23, 1) if is_ipv4 else None
        assert hv.ip_protocol == proto
        assert hv.ip_total_length == (u(t, 16, 2) if is_ipv4 else None)
        if is_ipv4 and cut >= 34:
            assert (hv.src_ip.packed, hv.dst_ip.packed) == (t[26:30], t[30:34])
        transport = proto in (PROTO_TCP, PROTO_UDP)
        assert hv.src_port == (u(t, 34, 2) if transport else None)
        assert hv.dst_port == (u(t, 36, 2) if transport else None)
        assert hv.tcp_seq == (u(t, 38, 4) if proto == PROTO_TCP else None)
        assert hv.tcp_ack == (u(t, 42, 4) if proto == PROTO_TCP else None)
        expected_flags = u(t, 46, 2) if proto == PROTO_TCP else None
        assert hv.tcp_flags == (
            expected_flags & 0x3F if expected_flags is not None else None
        )
        # Cached second reads are stable.
        assert hv.ethertype == u(t, 12, 2)
        assert hv.tcp_seq == (u(t, 38, 4) if proto == PROTO_TCP else None)

    @given(frame=ipv4_frames())
    @settings(max_examples=100)
    def test_header_view_matches_frame_view_on_full_frames(self, frame):
        hv, fv = HeaderView(frame), FrameView(frame)
        assert hv.src_ip == fv.ip.src and hv.dst_ip == fv.ip.dst
        assert hv.ip_protocol == fv.ip.protocol
        transport = fv.tcp if fv.ip.protocol == PROTO_TCP else fv.udp
        assert hv.src_port == transport.src_port
        assert hv.dst_port == transport.dst_port
        if fv.tcp is not None:
            assert hv.tcp_seq == fv.tcp.seq
            assert hv.tcp_ack == fv.tcp.ack
            assert hv.tcp_flags == fv.tcp.flags


# -- VAR-reach edges --------------------------------------------------------


class TestVarReachEdges:
    def test_var_binds_at_exact_boundary_only(self):
        """A VAR read ending exactly at the frame end binds; one byte past
        must miss — identically on the linear and compiled classifiers."""
        table = FilterTable([FilterEntry("edge", (FilterTuple(4, 4, VarRef("V")),))])
        linear, compiled = Classifier(table), CompiledClassifier(table)
        at_edge = b"\x00" * 4 + (0xDEADBEEF).to_bytes(4, "big")
        for frame in (at_edge, at_edge[:-1], at_edge, b""):
            assert compiled.classify(frame) == linear.classify(frame)
            assert compiled.vars.snapshot() == linear.vars.snapshot()
        assert linear.vars.get("V") == 0xDEADBEEF

    @given(data=st.data())
    @settings(max_examples=150)
    def test_reads_straddling_the_edge_agree(self, data):
        """Exact, masked and VAR tuples whose reads land on, before, or past
        the frame edge: compiled ≡ linear on match, bindings and stats."""
        nbytes = data.draw(st.sampled_from([1, 2, 4]))
        offset = data.draw(st.integers(min_value=0, max_value=12))
        kind = data.draw(st.sampled_from(["exact", "masked", "var"]))
        if kind == "var":
            tup = FilterTuple(offset, nbytes, VarRef("Edge"))
        elif kind == "masked":
            tup = FilterTuple(offset, nbytes, 1, mask=1)
        else:
            tup = FilterTuple(offset, nbytes, data.draw(st.integers(0, 3)))
        table = FilterTable([FilterEntry("p", (tup,))])
        linear, compiled = Classifier(table), CompiledClassifier(table)
        # Lengths clustered on the boundary: end-1, end, end+1 and extremes.
        end = offset + nbytes
        for length in sorted({0, max(0, end - 1), end, end + 1, end + 8}):
            frame = data.draw(st.binary(min_size=length, max_size=length))
            assert compiled.classify(frame) == linear.classify(frame)
            assert compiled.vars.snapshot() == linear.vars.snapshot()
        assert compiled.entries_scanned_total == linear.entries_scanned_total


# -- checksum helpers -------------------------------------------------------


class TestChecksumHelpers:
    @given(data=st.binary(max_size=512))
    @settings(max_examples=300)
    def test_fast_checksum_equals_reference(self, data):
        assert fold_checksum(checksum_sum16(data)) == internet_checksum(data)
        assert internet_checksum_fast(data) == internet_checksum(data)

    @given(data=st.binary(max_size=256))
    def test_accepts_any_buffer_type(self, data):
        expected = internet_checksum(data)
        assert internet_checksum_fast(bytearray(data)) == expected
        assert internet_checksum_fast(memoryview(bytes(data))) == expected

    @given(
        head=st.binary(max_size=128).filter(lambda d: len(d) % 2 == 0),
        tail=st.binary(max_size=128),
    )
    @settings(max_examples=200)
    def test_partial_sums_are_addable(self, head, tail):
        """The fastpath composes per-fragment sums (header fields, payload)
        and folds once; that equals one checksum over the concatenation as
        long as only the final fragment is odd-length."""
        combined = fold_checksum(checksum_sum16(head) + checksum_sum16(tail))
        assert combined == internet_checksum(head + tail)

    @given(src=ip_bytes, dst=ip_bytes, proto=st.integers(0, 255), length=ports)
    def test_pseudo_header_sum_matches_byte_form(self, src, dst, proto, length):
        from repro.net.ip import pseudo_header

        wire = pseudo_header(IpAddress(src), IpAddress(dst), proto, length)
        assert fold_checksum(pseudo_header_sum(src, dst, proto, length)) == (
            internet_checksum(wire)
        )


# -- RLL fast helpers -------------------------------------------------------


class TestRllFastHelpers:
    @given(
        dst=mac_bytes, src=mac_bytes, ethertype=ports,
        payload=st.binary(max_size=512), seq=ports, ack=ports,
    )
    @settings(max_examples=200)
    def test_data_encap_matches_reference_and_round_trips(
        self, dst, src, ethertype, payload, seq, ack
    ):
        inner = EthernetFrame(dst, src, ethertype, payload)
        fb = inner.to_bytes()
        reference = RllFrame.data_for(inner, seq, ack).wrap(inner.dst, inner.src)
        wire = encap_data_fast(fb, seq, ack)
        assert wire == reference.to_bytes()
        assert decap_data_fast(wire) == fb
        shim = RllFrame.parse(wire[14:])
        assert (shim.seq, shim.ack, shim.inner_ethertype) == (seq, ack, ethertype)

    @given(dst=mac_bytes, src=mac_bytes, ack=ports)
    @settings(max_examples=200)
    def test_pure_ack_matches_reference(self, dst, src, ack):
        reference = RllFrame.pure_ack(ack).wrap(MacAddress(dst), MacAddress(src))
        wire = encap_ack_fast(dst, src, ack)
        assert wire == reference.to_bytes()
        # The full 8-byte shim is present: parse must see it, not a runt.
        shim = RllFrame.parse(wire[14:])
        assert (shim.kind, shim.ack, shim.inner_ethertype) == (2, ack, 0)

    @given(extra=st.integers(min_value=0, max_value=16))
    @settings(max_examples=17)
    def test_encap_mtu_reject_parity(self, extra):
        """Shim insertion may push a near-MTU frame over the limit; fast and
        reference must agree on exactly where the reject begins."""
        payload_len = MAX_PAYLOAD - 8 - 8 + extra
        inner = EthernetFrame(b"\x02" * 6, b"\x04" * 6, 0x0800, bytes(payload_len))
        fb = inner.to_bytes()
        if payload_len + 8 > MAX_PAYLOAD:
            with pytest.raises(PacketError):
                encap_data_fast(fb, 1, 2)
            with pytest.raises(PacketError):
                RllFrame.data_for(inner, 1, 2).wrap(inner.dst, inner.src)
        else:
            assert encap_data_fast(fb, 1, 2) == RllFrame.data_for(
                inner, 1, 2
            ).wrap(inner.dst, inner.src).to_bytes()
