"""Property tests: truthful capture under saturation, associative metrics.

Two invariants the analysis layer leans on:

* A saturated :class:`~repro.trace.TraceRecorder` (or
  :class:`~repro.core.audit.AuditLog`) must keep the **exact prefix** of
  what was offered and account for every drop — a bounded log that
  silently reshuffles or miscounts would make the FAE's narratives lie.
* Metric snapshot **merge is associative** (and order-insensitive for
  counters/histograms), so the parallel sweep backend can combine
  per-worker snapshots in any grouping and match the serial reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Histogram, merge_values
from repro.core.audit import AuditLog
from repro.sim import Simulator
from repro.trace import TraceRecorder

payloads = st.lists(st.binary(min_size=0, max_size=32), max_size=40)
samples = st.lists(st.integers(min_value=0, max_value=10**12), max_size=30)


def hist(values) -> Histogram:
    h = Histogram()
    for v in values:
        h.observe(v)
    return h


class TestSaturationTruthfulness:
    @given(frames=payloads, cap=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_capture_keeps_exact_prefix_and_counts_drops(self, frames, cap):
        recorder = TraceRecorder(Simulator(seed=1), max_records=cap)
        for data in frames:
            recorder.capture("node1", "send", data)
        kept = [r.data for r in recorder.records]
        assert kept == frames[:cap]
        assert recorder.dropped_records == max(0, len(frames) - cap)
        text = recorder.render()
        if recorder.dropped_records:
            assert text.endswith(f"(capture saturated at {cap})")
            assert f"{recorder.dropped_records} record" in text
        else:
            assert "dropped" not in text

    @given(details=st.lists(st.text(max_size=8), max_size=25),
           cap=st.integers(min_value=0, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_audit_log_prefix_and_drop_count(self, details, cap):
        log = AuditLog(Simulator(seed=1), max_events=cap)
        for detail in details:
            log.record("node1", "fault", detail)
        assert [e.detail for e in log.events] == details[:cap]
        assert log.dropped == max(0, len(details) - cap)
        if log.dropped:
            assert f"(log saturated at {cap})" in log.render()


class TestHistogramMergeAlgebra:
    @given(a=samples, b=samples, c=samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        sa, sb, sc = hist(a).snapshot(), hist(b).snapshot(), hist(c).snapshot()
        left = merge_values(merge_values(sa, sb), sc)
        right = merge_values(sa, merge_values(sb, sc))
        assert left == right

    @given(a=samples, b=samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_combined_stream(self, a, b):
        merged = merge_values(hist(a).snapshot(), hist(b).snapshot())
        assert merged == hist(a + b).snapshot()

    @given(a=samples, b=samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, a, b):
        sa, sb = hist(a).snapshot(), hist(b).snapshot()
        assert merge_values(sa, sb) == merge_values(sb, sa)
