"""Property tests: the counter/term/condition runtime against a model.

A random sequence of packet events and counter actions, replayed both
through the real NodeRuntime and a direct Python model; the counter values
and the condition states must agree after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsl import compile_text
from repro.core.runtime import NodeRuntime
from repro.core.tables import Direction
from tests.core.test_runtime import RecordingHooks

HEADER = """
FILTER_TABLE
  pkt: (12 2 0x0800)
END
NODE_TABLE
  node1 02:00:00:00:00:01 192.168.1.1
  node2 02:00:00:00:00:02 192.168.1.2
END
"""

#: The scenario under test: two event counters, one local, one invariant.
SCRIPT = HEADER + """
SCENARIO prop
  A: (pkt, node2, node1, RECV)
  B: (pkt, node1, node2, SEND)
  X: (node1)
  ((A = 1)) >> RESET_CNTR( A ); INCR_CNTR( X, 2 );
  ((B >= 3)) >> DECR_CNTR( X, 1 );
  ((X < 0)) >> FLAG_ERROR;
END
"""

#: Event alphabet: things the wire can do.
EVENTS = st.lists(
    st.sampled_from(["recv", "send", "other"]), min_size=0, max_size=60
)


class Model:
    """Straight-line Python re-statement of the scenario's semantics."""

    def __init__(self) -> None:
        self.a = 0
        self.b = 0
        self.x = 0
        self.b_rule_state = False
        self.errors = 0
        self.err_state = False

    def step(self, event: str) -> None:
        if event == "recv":
            self.a += 1
            # Rule 1 fires on the edge A=1 (always, since A resets).
            if self.a == 1:
                self.a = 0
                self.x += 2
        elif event == "send":
            self.b += 1
        # Rule 2 is edge-triggered on (B >= 3) which, once true, stays
        # true: it fires exactly once.
        b_now = self.b >= 3
        if b_now and not self.b_rule_state:
            self.x -= 1
        self.b_rule_state = b_now
        err_now = self.x < 0
        if err_now and not self.err_state:
            self.errors += 1
        self.err_state = err_now


class TestRuntimeMatchesModel:
    @given(events=EVENTS)
    @settings(max_examples=120, deadline=None)
    def test_lockstep(self, events):
        program = compile_text(SCRIPT)
        hooks = RecordingHooks()
        runtime = NodeRuntime("node1", program, hooks)
        runtime.start()
        model = Model()
        for event in events:
            if event == "recv":
                runtime.on_classified_packet("pkt", "node2", "node1", Direction.RECV)
            elif event == "send":
                runtime.on_classified_packet("pkt", "node1", "node2", Direction.SEND)
            else:
                runtime.on_classified_packet("pkt", "node2", "node2", Direction.RECV)
            model.step(event)
            assert runtime.counter_value("A") == model.a
            assert runtime.counter_value("B") == model.b
            assert runtime.counter_value("X") == model.x
        assert len(hooks.errors) == model.errors

    @given(events=EVENTS)
    @settings(max_examples=40, deadline=None)
    def test_replay_determinism(self, events):
        def run():
            program = compile_text(SCRIPT)
            runtime = NodeRuntime("node1", program, RecordingHooks())
            runtime.start()
            for event in events:
                if event == "recv":
                    runtime.on_classified_packet(
                        "pkt", "node2", "node1", Direction.RECV
                    )
                elif event == "send":
                    runtime.on_classified_packet(
                        "pkt", "node1", "node2", Direction.SEND
                    )
            return runtime.counters_snapshot()

        assert run() == run()
