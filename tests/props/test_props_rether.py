"""Property test: Rether survives an arbitrary single crash.

Whatever node is crashed and whenever, the surviving members must keep the
token circulating (liveness) while never putting two tokens into
circulation at once (safety).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ms, seconds
from tests.rether.test_rether import build_ring


class TestSingleCrashRecovery:
    @given(
        victim=st.integers(min_value=0, max_value=3),
        crash_at_ms=st.integers(min_value=5, max_value=120),
    )
    @settings(max_examples=25, deadline=None)
    def test_liveness_and_safety(self, victim, crash_at_ms):
        sim, hosts, layers = build_ring(seed=11)
        violations = []

        def check_single_token():
            holders = [
                layer
                for name, layer in layers.items()
                if hosts[int(name[-1]) - 1].is_alive
                and layer.holding_token
                and layer._handoff_msg is None
            ]
            if len(holders) > 1:
                violations.append(sim.now)

        sim.every(ms(2), check_single_token)
        sim.at(ms(crash_at_ms), hosts[victim].fail)
        sim.run_until(seconds(2))

        survivors = [
            layers[f"node{i + 1}"] for i in range(4) if i != victim
        ]
        counts_before = [layer.tokens_received for layer in survivors]
        sim.run_until(seconds(3))
        counts_after = [layer.tokens_received for layer in survivors]
        # Liveness: every survivor keeps receiving the token.
        assert all(b > a for a, b in zip(counts_before, counts_after)), (
            f"token stopped reaching some survivor after crashing "
            f"node{victim + 1} at {crash_at_ms}ms"
        )
        # Safety: never two live holders at once.
        assert violations == []

    @given(victim=st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_crash_then_rejoin_converges(self, victim):
        sim, hosts, layers = build_ring(seed=13)
        sim.run_until(ms(20))
        hosts[victim].fail()
        sim.run_until(seconds(2))
        hosts[victim].recover()
        hosts[victim].rether.rejoin()
        sim.run_until(seconds(4))
        before = hosts[victim].rether.tokens_received
        sim.run_until(seconds(5))
        assert hosts[victim].rether.tokens_received > before
        for layer in layers.values():
            assert len(layer.ring) == 4
