"""Property tests on end-to-end transport invariants.

* RLL: for an *arbitrary* pattern of frame corruption, unicast delivery to
  the layer above is exactly-once and in order.
* TCP: for arbitrary application write sizes and an arbitrary set of
  dropped data segments, the receiver observes the exact byte stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import FrameView
from repro.net.topology import Topology
from repro.rll import RllLayer
from repro.sim import Simulator, seconds
from repro.stack import FREE, Host
from repro.stack.layers import FrameLayer


class DeterministicCorruptor(FrameLayer):
    """Marks the i-th RLL data frame as corrupted (drops it) per a mask."""

    def __init__(self, drop_indices):
        super().__init__("corruptor")
        self.drop_indices = set(drop_indices)
        self._seen = 0

    def on_receive(self, frame_bytes: bytes) -> None:
        if len(frame_bytes) > 22:  # RLL data frames, not bare acks
            self._seen += 1
            if self._seen in self.drop_indices:
                return  # simulated FCS drop
        self.pass_up(frame_bytes)


def rll_pair(seed=1):
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    topo.add_link("l0", queue_frames=1024)
    h1 = Host(sim, "node1", "02:00:00:00:00:01", "192.168.1.1", costs=FREE)
    h2 = Host(sim, "node2", "02:00:00:00:00:02", "192.168.1.2", costs=FREE)
    for h in (h1, h2):
        h.learn_neighbors([h1, h2])
        h.chain.splice_above_driver(RllLayer(sim))
    topo.connect("l0", h1.nic, h2.nic)
    return sim, h1, h2


class TestRllExactlyOnceInOrder:
    @given(
        drops=st.sets(st.integers(min_value=1, max_value=60), max_size=25),
        count=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_drop_patterns(self, drops, count):
        sim, h1, h2 = rll_pair()
        # splice_above_driver inserts at the bottom of the spliced stack,
        # so the corruptor lands *below* the already-spliced RLL: it eats
        # raw wire frames exactly like hardware FCS drops would.
        h2.chain.splice_above_driver(DeterministicCorruptor(drops))
        assert [l.name for l in h2.chain.layers][1] == "corruptor"

        got = []
        h2.udp.bind(9).on_receive = lambda p, ip, port: got.append(
            int.from_bytes(p[:2], "big")
        )
        sender = h1.udp.bind(0)
        for i in range(count):
            sim.after(
                (i + 1) * 50_000,
                lambda i=i: sender.sendto(i.to_bytes(2, "big") + bytes(40), h2.ip, 9),
            )
        sim.run_until(seconds(10))
        assert got == list(range(count))


class TestTcpStreamIntegrity:
    @given(
        chunks=st.lists(st.integers(min_value=1, max_value=4000), min_size=1, max_size=8),
        drops=st.sets(st.integers(min_value=1, max_value=30), max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_writes_and_losses(self, chunks, drops):
        from tests.tcp.test_connection import LossLayer

        sim = Simulator(seed=5)
        topo = Topology(sim)
        topo.add_switch("sw0")
        h1 = Host(sim, "node1", "02:00:00:00:00:01", "192.168.1.1", costs=FREE)
        h2 = Host(sim, "node2", "02:00:00:00:00:02", "192.168.1.2", costs=FREE)
        for h in (h1, h2):
            h.learn_neighbors([h1, h2])
        topo.connect("sw0", h1.nic, h2.nic)
        h2.chain.splice_below_ip(LossLayer(drop_data_indices=drops))

        received = bytearray()
        h2.tcp.listen(80, lambda c: setattr(c, "on_data", received.extend))
        conn = h1.tcp.connect(h2.ip, 80)
        expected = bytearray()
        for index, size in enumerate(chunks):
            chunk = bytes([index % 251]) * size
            expected.extend(chunk)

        def feed():
            for index, size in enumerate(chunks):
                conn.send(bytes([index % 251]) * size)

        conn.on_established = feed
        sim.run_until(seconds(60))
        assert bytes(received) == bytes(expected)
