"""Regression: crash-with-amnesia vs frames still on the engine CPU.

The engine charges virtual processing time by scheduling the upward (or
downward) forward of each frame at its cost-model release time.  A CRASH
arriving while a frame sits "on the CPU" used to leave that deferred
forward dangling: the dead host would deliver the frame up its chain —
through the capture tap and into the IP stack — after the crash, which no
real machine does.  Forwards now carry the engine's life epoch and die
with it.
"""

from repro.core.tables import Direction
from repro.sim import ms, seconds
from tests.conftest import make_testbed

SCRIPT = """
FILTER_TABLE
  probe: (12 2 0x0800), (23 1 0x11), (36 2 0x0007)
END
{nodes}
SCENARIO tap_crash
  P: (probe, node1, node2, RECV)
  ((P = 999)) >> STOP;
END
"""


def probe_rig(tb, n1, n2, count=80):
    def workload():
        n2.udp.bind(7)
        sender = n1.udp.bind(0)
        for i in range(count):
            tb.sim.after(
                (i + 1) * ms(1), lambda: sender.sendto(bytes(20), n2.ip, 7)
            )

    return workload


class TestEpochGuard:
    def rig(self):
        tb, (n1, n2) = make_testbed(2, seed=6)
        engine = tb.engines["node2"]
        forwarded = []
        engine._forward = lambda data, direction: forwarded.append(bytes(data))
        return tb, engine, forwarded

    def test_frame_on_cpu_delivered_without_crash(self):
        """Positive control: the deferred forward does fire normally."""
        tb, engine, forwarded = self.rig()
        engine._forward_after(1_000, b"frame", Direction.RECV)
        assert forwarded == []  # still on the CPU
        tb.sim.run_for(1_000_000)
        assert forwarded == [b"frame"]

    def test_crash_discards_frames_on_the_cpu(self):
        """The regression: a crash between interception and release must
        swallow the frame, not ghost-deliver it from a dead host."""
        tb, engine, forwarded = self.rig()
        engine._forward_after(1_000, b"ghost", Direction.RECV)
        engine.on_host_crash()
        tb.sim.run_for(1_000_000)
        assert forwarded == []

    def test_next_life_forwards_normally(self):
        """The epoch only kills the old life's forwards: frames processed
        after the reboot flow as usual."""
        tb, engine, forwarded = self.rig()
        engine._forward_after(1_000, b"ghost", Direction.RECV)
        engine.on_host_crash()
        engine._forward_after(1_000, b"reborn", Direction.RECV)
        tb.sim.run_for(1_000_000)
        assert forwarded == [b"reborn"]


class TestTapAcrossCrash:
    def first_delivery_ns(self):
        """Reference run: when does node2's tap see the first probe?"""
        tb, (n1, n2) = make_testbed(2, seed=6, capture=True)
        script = SCRIPT.format(nodes=tb.node_table_fsl())
        tb.run_scenario(
            script,
            workload=probe_rig(tb, n1, n2, count=3),
            max_time=seconds(5),
            inactivity_ns=ms(100),
        )
        (first, *_) = tb.recorder.select(where="node2", direction="recv")
        return first.when

    def test_no_tap_capture_from_a_dead_host(self):
        """Crash node2 1 ns before the engine would release the first
        probe upward: the tap above the engine must record nothing."""
        release_ns = self.first_delivery_ns()
        tb, (n1, n2) = make_testbed(2, seed=6, capture=True)
        script = SCRIPT.format(nodes=tb.node_table_fsl())
        workload = probe_rig(tb, n1, n2, count=3)

        def workload_with_crash():
            workload()
            tb.sim.at(release_ns - 1, lambda: tb.crash_node("node2"))

        tb.run_scenario(
            script,
            workload=workload_with_crash,
            max_time=seconds(5),
            inactivity_ns=ms(100),
        )
        assert tb.recorder.select(where="node2", direction="recv") == []

    def test_capture_resumes_after_restart_without_duplicates(self):
        """The tap survives the crash/reboot arc: captures stop while the
        node is down, resume once it rejoins, and stay single-tap."""
        release_ns = self.first_delivery_ns()
        tb, (n1, n2) = make_testbed(2, seed=6, capture=True)
        script = SCRIPT.format(nodes=tb.node_table_fsl())
        workload = probe_rig(tb, n1, n2, count=80)

        def workload_with_arc():
            workload()
            tb.sim.at(release_ns - 1, lambda: tb.crash_node("node2"))
            tb.sim.at(release_ns - 1, lambda: tb.restart_node("node2", ms(20)))

        report = tb.run_scenario(
            script,
            workload=workload_with_arc,
            max_time=seconds(5),
            inactivity_ns=ms(200),
        )
        recv = tb.recorder.select(where="node2", direction="recv")
        assert recv, report.render()
        # Nothing captured while the host was down (crash .. reboot+resync).
        assert all(r.when >= release_ns - 1 + ms(20) for r in recv)
        # One tap, one capture per delivery: no duplicate timestamps.
        times = [r.when for r in recv]
        assert len(times) == len(set(times))
        assert report.crash_timeline and report.crash_timeline[0].node == "node2"
