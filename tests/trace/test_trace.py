"""Tests for the packet capture subsystem."""

from repro.sim import seconds
from repro.stack import FREE
from repro.trace import TapLayer, TraceRecorder
from tests.conftest import make_two_hosts


def rig(sim):
    _, h1, h2 = make_two_hosts(sim, costs=FREE)
    recorder = TraceRecorder(sim)
    h1.chain.splice_below_ip(TapLayer(recorder, "node1"))
    h2.chain.splice_below_ip(TapLayer(recorder, "node2"))
    return recorder, h1, h2


class TestCapture:
    def test_both_directions_recorded(self, sim):
        recorder, h1, h2 = rig(sim)
        h2.udp.bind(9)
        h1.udp.bind(0).sendto(b"ping", h2.ip, 9)
        sim.run()
        assert len(recorder.select(where="node1", direction="send")) == 1
        assert len(recorder.select(where="node2", direction="recv")) == 1

    def test_predicate_select(self, sim):
        recorder, h1, h2 = rig(sim)
        h2.udp.bind(9)
        sender = h1.udp.bind(0)
        sender.sendto(b"short", h2.ip, 9)
        sender.sendto(b"a much longer payload indeed", h2.ip, 9)
        sim.run()
        big = recorder.select(
            where="node1", predicate=lambda r: len(r.data) > 60
        )
        assert len(big) == 1

    def test_tcp_records_helper(self, sim):
        recorder, h1, h2 = rig(sim)
        h2.tcp.listen(80)
        conn = h1.tcp.connect(h2.ip, 80)
        sim.run_until(seconds(2))
        assert len(recorder.tcp_records()) >= 3  # SYN, SYNACK, ACK, both taps

    def test_render_contains_summaries(self, sim):
        recorder, h1, h2 = rig(sim)
        h2.udp.bind(9)
        h1.udp.bind(0).sendto(b"x", h2.ip, 9)
        sim.run()
        text = recorder.render()
        assert "UDP" in text and "node1" in text and "send" in text

    def test_bounded_capture(self, sim):
        recorder, h1, h2 = rig(sim)
        recorder.max_records = 3
        h2.udp.bind(9)
        sender = h1.udp.bind(0)
        for _ in range(10):
            sender.sendto(b"x", h2.ip, 9)
        sim.run()
        assert len(recorder) == 3
        assert recorder.dropped_records > 0
        # A saturated capture must say so instead of posing as complete.
        text = recorder.render()
        assert text.endswith(
            f"... {recorder.dropped_records} records dropped "
            f"(capture saturated at 3)"
        )
        # Explicit record selections are partial by construction: no trailer.
        assert "dropped" not in recorder.render(recorder.records)

    def test_clear(self, sim):
        recorder, h1, h2 = rig(sim)
        h2.udp.bind(9)
        h1.udp.bind(0).sendto(b"x", h2.ip, 9)
        sim.run()
        recorder.clear()
        assert len(recorder) == 0
