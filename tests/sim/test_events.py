"""Tests for the deterministic event queue."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import COMPACT_MIN_DEAD, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(30, lambda: fired.append(30))
        q.push(10, lambda: fired.append(10))
        q.push(20, lambda: fired.append(20))
        while q:
            handle = q.pop()
            handle.callback()
        assert fired == [10, 20, 30]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        order = []
        for tag in range(5):
            q.push(100, lambda t=tag: order.append(t))
        while q:
            q.pop().callback()
        assert order == [0, 1, 2, 3, 4]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(50, lambda: None)
        q.push(40, lambda: None)
        assert q.peek_time() == 40


class TestCancellation:
    def test_cancelled_event_never_pops(self):
        q = EventQueue()
        keep = q.push(10, lambda: None, "keep")
        drop = q.push(5, lambda: None, "drop")
        q.cancel(drop)
        assert len(q) == 1
        assert q.pop() is keep

    def test_double_cancel_is_safe(self):
        q = EventQueue()
        handle = q.push(10, lambda: None)
        q.cancel(handle)
        q.cancel(handle)
        assert len(q) == 0

    def test_cancel_clears_callback_reference(self):
        q = EventQueue()
        handle = q.push(10, lambda: None)
        handle.cancel()
        assert handle.callback is None
        assert not handle.pending

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SchedulingError):
            q.pop()

    def test_pop_skips_leading_cancelled(self):
        q = EventQueue()
        first = q.push(1, lambda: None)
        second = q.push(2, lambda: None)
        q.cancel(first)
        assert q.pop() is second


class TestHousekeeping:
    def test_clear(self):
        q = EventQueue()
        for t in range(10):
            q.push(t, lambda: None)
        q.clear()
        assert len(q) == 0
        assert not q

    def test_none_callback_rejected(self):
        q = EventQueue()
        with pytest.raises(SchedulingError):
            q.push(1, None)

    def test_snapshot_sorted_and_labelled(self):
        q = EventQueue()
        q.push(30, lambda: None, "c")
        q.push(10, lambda: None, "a")
        b = q.push(20, lambda: None, "b")
        q.cancel(b)
        assert q.snapshot() == [(10, "a"), (30, "c")]


class TestCompaction:
    """Mass cancellation must not leave the heap full of dead entries."""

    def test_mass_cancellation_compacts_heap(self):
        q = EventQueue()
        handles = [q.push(t, lambda: None) for t in range(4000)]
        # Cancel all but every 8th event — the RTO-timer churn pattern.
        survivors = []
        for i, handle in enumerate(handles):
            if i % 8:
                handle.cancel()
            else:
                survivors.append(handle)
        assert len(q) == len(survivors)
        # Dead entries beyond the floor and >50% of the heap are swept.
        assert q.heap_size - len(q) <= COMPACT_MIN_DEAD
        assert q.heap_size < len(handles) // 2

    def test_small_queues_stay_lazy(self):
        q = EventQueue()
        handles = [q.push(t, lambda: None) for t in range(100)]
        for handle in handles[:-1]:
            handle.cancel()
        # Below the floor nothing compacts: lazy discard is cheaper.
        assert q.heap_size == 100
        assert len(q) == 1

    def test_firing_order_preserved_across_compaction(self):
        q = EventQueue()
        fired = []
        keep = []
        for t in range(3000):
            handle = q.push(t // 3, lambda t=t: fired.append(t))
            if t % 2:
                keep.append(t)
            else:
                handle.cancel()
        while q:
            q.pop().callback()
        assert fired == keep  # (when, seq) order survives the heapify

    def test_direct_handle_cancel_updates_live_count(self):
        """TCP timers cancel through the handle, not the queue: the live
        count (and thus ``while queue:`` loops) must stay exact."""
        q = EventQueue()
        a = q.push(1, lambda: None)
        q.push(2, lambda: None)
        a.cancel()
        assert len(q) == 1
        q.pop()
        assert len(q) == 0
        assert not q

    def test_cancel_after_fire_is_a_noop(self):
        q = EventQueue()
        handle = q.push(1, lambda: None)
        popped = q.pop()
        assert popped is handle
        handle.callback = None  # the simulator consumes it on step()
        handle.cancel()
        assert not handle.cancelled  # never marked: there was nothing to undo
        assert len(q) == 0
