"""Tests for named seeded random streams."""

from repro.sim.random import RandomRegistry


class TestReproducibility:
    def test_same_seed_same_sequence(self):
        a = RandomRegistry(42).stream("link:errors")
        b = RandomRegistry(42).stream("link:errors")
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RandomRegistry(1).stream("x")
        b = RandomRegistry(2).stream("x")
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_streams_are_isolated(self):
        """Draws from one stream must not perturb another."""
        reg1 = RandomRegistry(7)
        reg2 = RandomRegistry(7)
        s1 = reg1.stream("alpha")
        # In reg1, interleave heavy use of another stream.
        noise = reg1.stream("beta")
        for _ in range(100):
            noise.uniform(0, 1)
        s2 = reg2.stream("alpha")
        assert [s1.randint(0, 10**6) for _ in range(10)] == [
            s2.randint(0, 10**6) for _ in range(10)
        ]

    def test_stream_identity_cached(self):
        reg = RandomRegistry(0)
        assert reg.stream("a") is reg.stream("a")


class TestDistributions:
    def test_chance_extremes(self):
        s = RandomRegistry(3).stream("c")
        assert not any(s.chance(0.0) for _ in range(50))
        assert all(s.chance(1.0) for _ in range(50))

    def test_uniform_bounds(self):
        s = RandomRegistry(3).stream("u")
        for _ in range(100):
            value = s.uniform(5.0, 6.0)
            assert 5.0 <= value <= 6.0

    def test_randint_bounds(self):
        s = RandomRegistry(3).stream("i")
        values = {s.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_random_bytes_length(self):
        s = RandomRegistry(3).stream("b")
        assert len(s.random_bytes(17)) == 17

    def test_exponential_mean_reasonable(self):
        s = RandomRegistry(3).stream("e")
        samples = [s.exponential(100.0) for _ in range(2000)]
        mean = sum(samples) / len(samples)
        assert 80.0 < mean < 120.0

    def test_exponential_zero_mean(self):
        s = RandomRegistry(3).stream("e0")
        assert s.exponential(0.0) == 0.0

    def test_choice_and_shuffle(self):
        s = RandomRegistry(3).stream("cs")
        assert s.choice([1, 2, 3]) in (1, 2, 3)
        items = list(range(10))
        s.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_draw_count(self):
        s = RandomRegistry(3).stream("n")
        s.randint(0, 1)
        s.uniform(0, 1)
        assert s.draws == 2
