"""Tests for virtual time: units, jiffy quantisation, duration parsing."""

import pytest

from repro.errors import SimulationError
from repro.sim import clock
from repro.sim.clock import (
    Clock,
    format_time,
    ms,
    parse_duration,
    quantize_to_jiffies,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)


class TestUnits:
    def test_us(self):
        assert us(1) == 1_000

    def test_ms(self):
        assert ms(1) == 1_000_000

    def test_seconds(self):
        assert seconds(1) == 1_000_000_000

    def test_fractional_values_round(self):
        assert us(1.5) == 1_500
        assert ms(0.25) == 250_000

    def test_round_trips(self):
        assert to_us(us(123.0)) == 123.0
        assert to_ms(ms(5.5)) == 5.5
        assert to_seconds(seconds(2)) == 2.0

    def test_jiffy_constant_is_10ms(self):
        # Paper §5.2: Linux 2.4 software timers tick every 10 ms.
        assert clock.JIFFY_NS == ms(10)


class TestJiffyQuantisation:
    def test_exact_multiple_unchanged(self):
        assert quantize_to_jiffies(ms(20)) == ms(20)

    def test_rounds_up(self):
        assert quantize_to_jiffies(ms(11)) == ms(20)
        assert quantize_to_jiffies(ms(35)) == ms(40)

    def test_minimum_is_one_jiffy(self):
        # "the granularity of delay can be no less than a jiffy".
        assert quantize_to_jiffies(0) == ms(10)
        assert quantize_to_jiffies(1) == ms(10)
        assert quantize_to_jiffies(-5) == ms(10)


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1sec", seconds(1)),
            ("2s", seconds(2)),
            ("250ms", ms(250)),
            ("250msec", ms(250)),
            ("40us", us(40)),
            ("40usec", us(40)),
            ("100ns", 100),
            ("1.5ms", 1_500_000),
            ("7", ms(7)),  # bare number defaults to milliseconds
        ],
    )
    def test_accepts(self, text, expected):
        assert parse_duration(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(SimulationError):
            parse_duration("fastish")

    def test_rejects_bad_number(self):
        with pytest.raises(SimulationError):
            parse_duration("1.2.3ms")


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_advances(self):
        c = Clock()
        c.advance_to(500)
        assert c.now == 500

    def test_same_instant_is_fine(self):
        c = Clock(100)
        c.advance_to(100)
        assert c.now == 100

    def test_refuses_to_run_backwards(self):
        c = Clock(100)
        with pytest.raises(SimulationError):
            c.advance_to(99)


class TestFormatTime:
    def test_scales(self):
        assert format_time(5) == "5ns"
        assert format_time(us(3)) == "3.000us"
        assert format_time(ms(3)) == "3.000ms"
        assert format_time(seconds(3)) == "3.000000s"
