"""Tests for the simulator facade: scheduling, run loops, periodic tasks."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_after_fires_at_right_time(self, sim):
        seen = []
        sim.after(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]

    def test_at_absolute(self, sim):
        seen = []
        sim.at(250, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [250]

    def test_past_scheduling_rejected(self, sim):
        sim.after(100, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.at(50, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.after(-1, lambda: None)

    def test_cancel(self, sim):
        seen = []
        handle = sim.after(10, lambda: seen.append(1))
        sim.cancel(handle)
        sim.run()
        assert seen == []

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.after(5, lambda: seen.append(("inner", sim.now)))

        sim.after(10, outer)
        sim.run()
        assert seen == [("outer", 10), ("inner", 15)]


class TestRunLoops:
    def test_run_until_stops_clock_at_deadline(self, sim):
        sim.after(10, lambda: None)
        sim.run_until(500)
        assert sim.now == 500

    def test_run_until_leaves_future_events(self, sim):
        seen = []
        sim.after(1000, lambda: seen.append(1))
        sim.run_until(500)
        assert seen == []
        sim.run_until(1500)
        assert seen == [1]

    def test_run_until_past_deadline_rejected(self, sim):
        sim.run_until(100)
        with pytest.raises(SchedulingError):
            sim.run_until(50)

    def test_run_for(self, sim):
        sim.run_for(300)
        sim.run_for(200)
        assert sim.now == 500

    def test_event_cap_trips(self, sim):
        def respawn():
            sim.after(1, respawn)

        sim.after(1, respawn)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_stop_exits_loop(self, sim):
        seen = []

        def first():
            seen.append(1)
            sim.stop()

        sim.after(1, first)
        sim.after(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()  # the second event is still queued
        assert seen == [1, 2]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_run_not_reentrant(self, sim):
        def evil():
            sim.run()

        sim.after(1, evil)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_processed_counter(self, sim):
        for t in range(5):
            sim.after(t + 1, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestPeriodic:
    def test_every_fires_repeatedly(self, sim):
        ticks = []
        sim.every(10, lambda: ticks.append(sim.now))
        sim.run_until(55)
        assert ticks == [10, 20, 30, 40, 50]

    def test_stop_halts(self, sim):
        ticks = []
        handle = sim.every(10, lambda: ticks.append(sim.now))
        sim.at(25, handle.stop)
        sim.run_until(100)
        assert ticks == [10, 20]
        assert handle.stopped

    def test_stop_inside_callback(self, sim):
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                holder["h"].stop()

        holder["h"] = sim.every(5, tick)
        sim.run_until(100)
        assert ticks == [5, 10, 15]

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.every(0, lambda: None)

    def test_fire_count(self, sim):
        handle = sim.every(7, lambda: None)
        sim.run_until(70)
        assert handle.fires == 10


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def run_once():
            sim = Simulator(seed=99)
            trace = []
            rng = sim.random.stream("jitter")

            def emit(tag):
                trace.append((sim.now, tag))
                sim.after(rng.randint(1, 50), lambda: emit(tag))

            for tag in range(3):
                sim.after(1, lambda t=tag: emit(t))
            sim.run_until(2000)
            return trace

        assert run_once() == run_once()
